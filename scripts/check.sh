#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then
# smoke-test the bounded model checker with small budgets, diff the
# px86 conformance report against its golden copy, run the analysis
# stage (PersistRace detector + crash-state pruner tests and the
# explore-scaling acceptance gate), run the kvstore stage (recovery
# ladder + corruption fuzzer + load-driver gate), run the
# compiled-trace stage (bit-identity + corrupt-artifact suite and the
# trace_pack round-trip battery, instrumented), fuzz the timing
# engine differentially (--fuzz-iters=N, default 500), and run the
# perf-labeled replay-throughput regression.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZ_ITERS=500
for arg in "$@"; do
    case "$arg" in
        --fuzz-iters=*) FUZZ_ITERS="${arg#--fuzz-iters=}" ;;
        *) echo "usage: $0 [--fuzz-iters=N]" >&2; exit 2 ;;
    esac
done

cmake -B build -S . && cmake --build build -j && \
    ctest --test-dir build --output-on-failure -j

# Explorer smoke: the litmus must verify exhaustively with the
# consumer barrier and produce a counterexample (exit 1) without it.
./build/bench/explore_litmus --model=epoch --threads=2
if ./build/bench/explore_litmus --no-consumer-barrier; then
    echo "check.sh: expected a counterexample without the barrier" >&2
    exit 1
fi
./build/bench/explore_litmus --program=queue --max-executions=256 \
    --samples=32

# Conformance stage: the labeled tests assert the px86-vs-epoch
# divergences by name, and the full runner must reproduce the
# committed golden report byte-for-byte even when run in parallel.
ctest --test-dir build -L conformance --output-on-failure
CONF_OUT=$(mktemp)
./build/bench/conformance_report --jobs=4 --out="$CONF_OUT" >/dev/null
cmp "$CONF_OUT" tests/conformance/golden/conformance_report.txt
rm -f "$CONF_OUT"

# Analysis stage: the plugin-based analyses (PersistRace detector,
# constraint-guided crash-state pruner) by label, then the explore-
# scaling acceptance gate — pruning must complete a program >=5x
# larger than blind cut enumeration under one cut budget. The JSON
# goes to a scratch path; the committed BENCH_explore.json baseline
# is refreshed deliberately, like BENCH_replay.json.
ctest --test-dir build -L analysis --output-on-failure
EXPLORE_JSON=$(mktemp)
./build/bench/explore_scaling --check --json="$EXPLORE_JSON"
rm -f "$EXPLORE_JSON"

# KV-store stage: the recovery-ladder and cross-shard service tests
# by label (functional, bit-flip fuzzers, fault campaigns, the txn
# atomicity battery), then the load driver's smoke gate — zero audit
# violations across every strategy x model pair on both the
# single-shard Repair audit and the cross-shard TxnResolve audit —
# and the emitted report must carry the per-model txn replay rows the
# committed BENCH_kvstore.json baseline is built from.
ctest --test-dir build -L kvstore --output-on-failure
KV_JSON=$(mktemp)
./build/bench/kvstore_perf --check --json="$KV_JSON" >/dev/null
for row in 'kvstore/txn_in_place/strict/replay' \
           'kvstore/txn_cow/strand/replay' \
           'kvstore/txn_log_structured/px86/replay'; do
    if ! grep -q "$row" "$KV_JSON"; then
        echo "check.sh: $row missing from kvstore_perf report" >&2
        exit 1
    fi
done
rm -f "$KV_JSON"

# ThreadSanitizer pass: the task pool, the pool-driven parallel sweep,
# the segment-parallel replay path (prep fan-out + deferred log
# materialization), and the sharded explorer must be race-free.
# Separate build tree so the instrumented objects never mix with the
# tier-1 build. The segment-replay test trace is shrunk to 150k events
# because TSan's ~10x slowdown would otherwise dominate the stage.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j \
    --target task_pool_test sweep_test segment_replay_test \
    explore_test explore_litmus tso_test conformance_test \
    kv_txn_test kvstore_perf
./build-tsan/tests/task_pool_test
./build-tsan/tests/sweep_test
PERSIM_SYNTH_EVENTS=150000 PERSIM_GOLDEN_DIR=tests/persistency/golden \
    ./build-tsan/tests/segment_replay_test
./build-tsan/tests/explore_test
./build-tsan/bench/explore_litmus --model=epoch --threads=2
./build-tsan/bench/explore_litmus --program=queue --shards=4 \
    --max-executions=256 --samples=32
# The TSO store-buffer scheduler and the parallel (--jobs) conformance
# harness are new concurrency surfaces: run both instrumented.
./build-tsan/tests/tso_test
PERSIM_CONFORMANCE_GOLDEN=tests/conformance/golden/conformance_report.txt \
    ./build-tsan/tests/conformance_test
# The router's global sequence counter is polled by real threads in
# kv_txn_test's snapshot regression (acquire/release, no data race),
# and the KV load driver fans shard generation, per-model replay of
# the cross-shard txn mix, and both audit campaigns out over the
# shared pool: run both instrumented.
./build-tsan/tests/kv_txn_test
./build-tsan/bench/kvstore_perf --check >/dev/null

# AddressSanitizer + UBSan pass: the fault-injection machinery does a
# lot of raw byte slicing (torn persists, checksummed record parsing,
# degraded queue scans) — run it and the structure tests instrumented.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j \
    --target faults_test fault_campaign_test recovery_test \
    log_test queue_test queue_negative_test differential_fuzz_test \
    persist_race_test pruned_cuts_test \
    kvstore_test kv_recovery_test kv_campaign_test \
    kv_txn_test kv_router_fuzz_test kv_txn_campaign_test \
    compiled_trace_test trace_pack
./build-asan/tests/faults_test
./build-asan/tests/fault_campaign_test
./build-asan/tests/recovery_test
./build-asan/tests/log_test
./build-asan/tests/queue_test
./build-asan/tests/queue_negative_test
# The race detector and crash-state pruner index raw addresses into
# flat maps and arena spans on the hook hot path: run both
# instrumented too.
PERSIM_GOLDEN_DIR=tests/persistency/golden \
    ./build-asan/tests/persist_race_test
./build-asan/tests/pruned_cuts_test
# The KV recovery ladder parses checksummed buckets, journal records,
# and deliberately bit-flipped images (the corruption fuzzer lives in
# kv_recovery_test): run all three KV suites instrumented.
./build-asan/tests/kvstore_test
./build-asan/tests/kv_recovery_test
./build-asan/tests/kv_campaign_test
# The cross-shard service layer slices commit and migration records
# out of the group journal and takes seeded bit flips straight to
# those parsers (kv_router_fuzz_test): run the txn/router suites
# instrumented too. The exhaustive atomicity battery stays in the
# tier-1 run only — its cut enumeration is wall-clock heavy and
# touches no byte-slicing the fuzz and campaign suites don't.
./build-asan/tests/kv_txn_test
./build-asan/tests/kv_router_fuzz_test
./build-asan/tests/kv_txn_campaign_test

# Compiled-trace stage: the artifact format does raw mmap'd column
# slicing and varint decoding — run the full bit-identity +
# corrupt-artifact suite instrumented (shrunken synthetic trace, the
# identity must hold at any size), then the trace_pack round-trip
# battery (compile -> pack -> unpack -> replay == interpreted on the
# four goldens plus a 1M synthetic trace).
PERSIM_SYNTH_EVENTS=150000 PERSIM_GOLDEN_DIR=tests/persistency/golden \
    ./build-asan/tests/compiled_trace_test
./build-asan/bench/trace_pack verify >/dev/null

# Fuzz stage: the differential fuzzer at full depth, instrumented —
# 500 seeded random programs (default) replayed under all three
# models with the refinement invariants checked on every one.
PERSIM_FUZZ_ITERS="$FUZZ_ITERS" ./build-asan/tests/differential_fuzz_test

# Perf stage: replay-throughput regression against the committed
# BENCH_replay.json, in the uninstrumented release-config build
# (wall-clock sensitive, hence outside the default ctest run).
ctest --test-dir build -C perf -L perf --output-on-failure
echo "check.sh: all checks passed"
