#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then
# smoke-test the bounded model checker with small budgets.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . && cmake --build build -j && \
    ctest --test-dir build --output-on-failure -j

# Explorer smoke: the litmus must verify exhaustively with the
# consumer barrier and produce a counterexample (exit 1) without it.
./build/bench/explore_litmus --model=epoch --threads=2
if ./build/bench/explore_litmus --no-consumer-barrier; then
    echo "check.sh: expected a counterexample without the barrier" >&2
    exit 1
fi
./build/bench/explore_litmus --program=queue --max-executions=256 \
    --samples=32
echo "check.sh: all checks passed"
