/**
 * @file
 * Persistent key-value store example: a fixed-size open-addressing
 * hash table in NVRAM, with the publish-after-data discipline and
 * strand annotations.
 *
 * Bucket layout (24 bytes): [key][value][state], state 0 = empty,
 * 1 = live. Inserting a new key writes key+value, persist-barriers,
 * then publishes state=1; updating an existing key is a single
 * atomic 8-byte persist of the value (strong persist atomicity makes
 * versions of one cell well-ordered with no barrier at all).
 *
 * The demo runs concurrent writers, reports persist concurrency under
 * the three models, and crash-tests the invariant that every live
 * bucket always holds a (key, value) pair some writer actually wrote.
 */

#include <iostream>

#include "persistency/timing_engine.hh"
#include "recovery/recovery.hh"
#include "sim/engine.hh"
#include "sync/locks.hh"

using namespace persim;

namespace {

constexpr std::uint64_t bucket_count = 256; // Power of two.
constexpr std::uint64_t bucket_bytes = 24;
constexpr std::uint64_t key_off = 0;
constexpr std::uint64_t value_off = 8;
constexpr std::uint64_t state_off = 16;

/** The canonical value any writer stores for (key, version). */
std::uint64_t
valueFor(std::uint64_t key, std::uint64_t version)
{
    return key * 1000003 + version;
}

std::uint64_t
hashKey(std::uint64_t key)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return key;
}

/** A persistent hash table bound to one simulated memory region. */
class PersistentKv
{
  public:
    static PersistentKv
    create(ThreadCtx &ctx, std::size_t threads)
    {
        PersistentKv kv;
        kv.table_ = ctx.pmalloc(bucket_count * bucket_bytes, 64);
        // Zero-fill is implicit (fresh simulated memory); publish the
        // empty table before first use.
        ctx.persistBarrier();
        kv.lock_ = McsLock::create(ctx);
        for (std::size_t i = 0; i < threads; ++i)
            kv.qnodes_.push_back(McsLock::createQnode(ctx));
        return kv;
    }

    /**
     * Insert or update. The bucket array is guarded by one lock (the
     * interesting concurrency here is between persists, not probes).
     */
    void
    put(ThreadCtx &ctx, std::size_t slot, std::uint64_t key,
        std::uint64_t value)
    {
        McsGuard guard(ctx, lock_, qnodes_[slot]);
        // Independent of whatever this thread persisted before.
        ctx.newStrand();
        std::uint64_t index = hashKey(key) % bucket_count;
        for (std::uint64_t probe = 0; probe < bucket_count; ++probe) {
            const Addr bucket = table_ + index * bucket_bytes;
            const std::uint64_t state = ctx.load(bucket + state_off);
            if (state == 0) {
                // Fresh bucket: write data, barrier, publish.
                ctx.store(bucket + key_off, key);
                ctx.store(bucket + value_off, value);
                ctx.persistBarrier();
                ctx.store(bucket + state_off, 1);
                return;
            }
            if (ctx.load(bucket + key_off) == key) {
                // Update in place: one atomic persist, ordered against
                // other versions of this cell by strong persist
                // atomicity alone.
                ctx.store(bucket + value_off, value);
                return;
            }
            index = (index + 1) % bucket_count;
        }
        PERSIM_FATAL("kv table full");
    }

    /** Lock-free read (for the demo's final verification). */
    bool
    get(ThreadCtx &ctx, std::uint64_t key, std::uint64_t &value)
    {
        std::uint64_t index = hashKey(key) % bucket_count;
        for (std::uint64_t probe = 0; probe < bucket_count; ++probe) {
            const Addr bucket = table_ + index * bucket_bytes;
            if (ctx.load(bucket + state_off) == 0)
                return false;
            if (ctx.load(bucket + key_off) == key) {
                value = ctx.load(bucket + value_off);
                return true;
            }
            index = (index + 1) % bucket_count;
        }
        return false;
    }

    Addr table() const { return table_; }

  private:
    Addr table_ = 0;
    McsLock lock_;
    std::vector<Addr> qnodes_;
};

/** Crash invariant: every live bucket holds a plausible version. */
std::string
checkImage(const MemoryImage &image, Addr table,
           std::uint64_t max_version)
{
    for (std::uint64_t i = 0; i < bucket_count; ++i) {
        const Addr bucket = table + i * bucket_bytes;
        if (image.load(bucket + state_off, 8) != 1)
            continue;
        const std::uint64_t key = image.load(bucket + key_off, 8);
        const std::uint64_t value = image.load(bucket + value_off, 8);
        const std::uint64_t version = value - key * 1000003;
        if (version < 1 || version > max_version)
            return "live bucket " + std::to_string(i) +
                " holds a value no writer wrote";
    }
    return "";
}

} // namespace

int
main()
{
    std::cout << "persim example: persistent key-value store\n\n";

    constexpr std::uint32_t threads = 4;
    constexpr std::uint64_t puts_per_thread = 60;
    constexpr std::uint64_t key_space = 48;
    constexpr std::uint64_t max_version = 4; // Updates per key bound.

    PersistTimingEngine strict({.model = ModelConfig::strict()});
    PersistTimingEngine epoch({.model = ModelConfig::epoch()});
    PersistTimingEngine strand({.model = ModelConfig::strand()});
    InMemoryTrace trace;
    FanoutSink fanout;
    for (TraceSink *sink : std::vector<TraceSink *>{&strict, &epoch,
                                                    &strand, &trace})
        fanout.addSink(sink);

    EngineConfig config;
    config.seed = 7;
    config.quantum = 5;
    ExecutionEngine engine(config, &fanout);

    PersistentKv kv;
    engine.runSetup([&kv](ThreadCtx &ctx) {
        kv = PersistentKv::create(ctx, threads);
    });

    std::vector<ExecutionEngine::WorkerFn> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.push_back([&kv, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 0; i < puts_per_thread; ++i) {
                const std::uint64_t key = (t * 17 + i * 5) % key_space;
                const std::uint64_t version = 1 + (i % max_version);
                kv.put(ctx, t, key, valueFor(key, version));
            }
            // Read back a few keys through the public API.
            std::uint64_t value = 0;
            if (!kv.get(ctx, (t * 17) % key_space, value))
                PERSIM_FATAL("lost a key this thread inserted");
        });
    }
    engine.run(workers);

    std::cout << "applied " << threads * puts_per_thread
              << " puts over " << key_space << " keys\n\n"
              << "persist concurrency (critical path, levels):\n";
    for (const auto *analysis : {&strict, &epoch, &strand}) {
        std::cout << "  " << analysis->config().model.name() << ": "
                  << analysis->result().critical_path << " total ("
                  << analysis->result().coalesced << "/"
                  << analysis->result().persists << " coalesced)\n";
    }

    std::cout << "\ncrash-recovery check (strand persistency):\n";
    InjectionConfig injection;
    injection.model = ModelConfig::strand();
    injection.realizations = 10;
    injection.crashes_per_realization = 50;
    const Addr table = kv.table();
    const auto result = injectFailures(
        trace, injection, [table](const MemoryImage &image) {
            return checkImage(image, table, max_version);
        });
    std::cout << "  " << result.samples << " crash states, "
              << result.violations << " violations\n";
    if (!result.ok())
        std::cout << "  first: " << result.first_violation << "\n";

    std::cout << (result.ok()
                  ? "\nPublish-after-barrier plus strong persist "
                    "atomicity for in-place\nupdates keeps every crash "
                    "state consistent, even under the most\nrelaxed "
                    "model.\n"
                  : "\nBUG in the kv annotations.\n");
    return result.ok() ? 0 : 1;
}
