/**
 * @file
 * Quickstart: write a tiny recoverable structure against the traced
 * memory API, annotate it with persist barriers, and compare what the
 * three persistency models say about it.
 *
 * The structure is the classic "update then publish" pattern: write a
 * record into persistent memory, persist-barrier, then set a valid
 * flag. We (1) measure the persist ordering critical path under
 * strict / epoch / strand persistency, and (2) fire the recovery
 * observer to confirm the flag is never durable before the record.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "persistency/timing_engine.hh"
#include "recovery/recovery.hh"
#include "sim/engine.hh"

using namespace persim;

namespace {

/** Number of records the workload publishes. */
constexpr std::uint64_t record_count = 1000;
constexpr std::uint64_t record_bytes = 48;

struct Workload
{
    Addr records = 0; //!< record_count records of record_bytes.
    Addr flags = 0;   //!< one 8-byte valid flag per record.
};

/** Run the publish workload, streaming events into @p sinks. */
Workload
runPublishWorkload(std::vector<TraceSink *> sinks)
{
    FanoutSink fanout;
    for (auto *sink : sinks)
        fanout.addSink(sink);

    EngineConfig config;
    ExecutionEngine engine(config, &fanout);

    Workload workload;
    engine.runSetup([&workload](ThreadCtx &ctx) {
        workload.records = ctx.pmalloc(record_count * record_bytes, 64);
        workload.flags = ctx.pmalloc(record_count * 8, 64);
    });
    engine.run({[&workload](ThreadCtx &ctx) {
        std::uint8_t payload[record_bytes];
        for (std::uint64_t i = 0; i < record_count; ++i) {
            ctx.marker(MarkerCode::OpBegin, i + 1);
            for (std::uint64_t b = 0; b < record_bytes; ++b)
                payload[b] = static_cast<std::uint8_t>(i + b);

            // A new record is logically independent of the previous
            // ones: tell strand persistency so.
            ctx.newStrand();

            // 1. Write the record (six 8-byte persists).
            ctx.marker(MarkerCode::RoleData);
            ctx.copyIn(workload.records + i * record_bytes, payload,
                       record_bytes);
            // 2. Order the record before the flag.
            ctx.persistBarrier();
            // 3. Publish.
            ctx.marker(MarkerCode::RoleHead);
            ctx.store(workload.flags + i * 8, 1);
            ctx.marker(MarkerCode::OpEnd, i + 1);
        }
    }});
    return workload;
}

} // namespace

int
main()
{
    std::cout << "persim quickstart: the update-then-publish pattern\n\n";

    // --- Part 1: how concurrent are the persists under each model? --
    PersistTimingEngine strict({.model = ModelConfig::strict()});
    PersistTimingEngine epoch({.model = ModelConfig::epoch()});
    PersistTimingEngine strand({.model = ModelConfig::strand()});
    InMemoryTrace trace;
    const Workload workload =
        runPublishWorkload({&strict, &epoch, &strand, &trace});

    std::cout << "persist critical path for " << record_count
              << " published records (7 persists each):\n";
    for (const auto *engine : {&strict, &epoch, &strand}) {
        std::cout << "  " << engine->config().model.name() << ": "
                  << engine->result().critical_path << " levels ("
                  << engine->result().criticalPathPerOp()
                  << " per record, "
                  << engine->result().coalesced << " coalesced)\n";
    }
    std::cout <<
        "\nStrict persistency serializes all 7 persists of every record\n"
        "(and the records with each other); epoch persistency costs\n"
        "about one level per record (one record's flag overlaps the\n"
        "next record's data); strand persistency overlaps the records\n"
        "entirely, so the whole run costs two levels.\n\n";

    // --- Part 2: the recovery observer ---------------------------
    InjectionConfig injection;
    injection.model = ModelConfig::strand();
    injection.realizations = 8;
    injection.crashes_per_realization = 64;
    const auto result = injectFailures(
        trace, injection, [&workload](const MemoryImage &image) {
            for (std::uint64_t i = 0; i < record_count; ++i) {
                if (image.load(workload.flags + i * 8, 8) != 1)
                    continue; // Not published: contents irrelevant.
                for (std::uint64_t b = 0; b < record_bytes; ++b) {
                    const auto byte = image.load(
                        workload.records + i * record_bytes + b, 1);
                    if (byte != ((i + b) & 0xff))
                        return std::string("published record ") +
                            std::to_string(i) + " is incomplete";
                }
            }
            return std::string();
        });
    std::cout << "recovery observer: " << result.samples
              << " crash states under strand persistency, "
              << result.violations << " violations\n";
    std::cout << (result.ok()
                  ? "every published record was fully durable. The one\n"
                    "barrier between data and flag is all the ordering\n"
                    "this structure needs — everything else overlaps.\n"
                  : "BUG: " + result.first_violation + "\n");
    return result.ok() ? 0 : 1;
}
