/**
 * @file
 * Durable key-value service: the classic WAL + checkpoint design,
 * composed from the persim structure library.
 *
 * Writes go to a checksummed PersistentLog first (cheap, one ordering
 * annotation per append) and are then applied to a PersistentHashMap
 * (the "checkpoint": richer structure, publish-flag durability).
 * Recovery loads the map and replays any log suffix past the map's
 * applied watermark — the standard ARIES-flavored recipe, here with
 * every persist-ordering obligation explicit and machine-checked.
 *
 * The demo runs concurrent writers, shows each component's persist
 * concurrency under the three models, and crash-tests the end-to-end
 * invariant: after recovery (map + log replay), the service state is
 * a prefix-consistent view of the committed updates.
 */

#include <cstring>
#include <iostream>
#include <map>

#include "common/error.hh"
#include "persistency/timing_engine.hh"
#include "pstruct/hash_map.hh"
#include "pstruct/log.hh"
#include "recovery/recovery.hh"
#include "sim/engine.hh"

using namespace persim;

namespace {

constexpr std::uint32_t threads = 3;
constexpr std::uint64_t updates_per_thread = 40;
constexpr std::uint64_t key_space = 24;

/** A WAL record: set key -> value (value encodes key and a serial). */
struct Update
{
    std::uint64_t key = 0;
    std::uint64_t value = 0;
};

std::uint64_t
valueFor(std::uint64_t key, std::uint64_t serial)
{
    return serial * 1000 + key;
}

/** The durable service: WAL in front of a checkpoint map. */
class DurableKv
{
  public:
    static DurableKv
    create(ThreadCtx &ctx, std::size_t writer_slots)
    {
        DurableKv kv;
        LogOptions log_options;
        log_options.capacity = 1 << 16;
        log_options.use_strands = true;
        kv.wal_ = PersistentLog::create(ctx, log_options, writer_slots);
        HashMapOptions map_options;
        map_options.buckets = 256;
        map_options.use_strands = true;
        kv.map_ = PersistentHashMap::create(ctx, map_options,
                                            writer_slots);
        return kv;
    }

    void
    set(ThreadCtx &ctx, std::size_t slot, std::uint64_t key,
        std::uint64_t value)
    {
        // 1. WAL append (commit point).
        Update update{key, value};
        wal_.append(ctx, slot, &update, sizeof(update));
        // 2. Apply to the checkpoint structure. The map is sized for
        // the key space, so a full table here is a setup bug.
        const PutStatus status = map_.put(ctx, slot, key, value);
        PERSIM_REQUIRE(status != PutStatus::TableFull,
                       "checkpoint map sized too small");
    }

    const PersistentLog &wal() const { return wal_; }
    const PersistentHashMap &map() const { return map_; }

    /** Recover the full service state from a crashed image. */
    static std::map<std::uint64_t, std::uint64_t>
    recover(const MemoryImage &image, const LogLayout &wal_layout,
            const HashMapLayout &map_layout, std::string &error)
    {
        const auto checkpoint =
            PersistentHashMap::recover(image, map_layout);
        if (!checkpoint.ok) {
            error = "checkpoint: " + checkpoint.error;
            return {};
        }
        auto state = checkpoint.entries;
        // Replay the WAL over the checkpoint. (Replaying records the
        // map already applied is idempotent: same key -> same value.)
        const auto wal = PersistentLog::recover(image, wal_layout);
        for (const auto &record : wal.records) {
            if (record.payload.size() != sizeof(Update)) {
                error = "wal: malformed record";
                return {};
            }
            Update update;
            std::memcpy(&update, record.payload.data(), sizeof(update));
            state[update.key] = update.value;
        }
        return state;
    }

  private:
    PersistentLog wal_;
    PersistentHashMap map_;
};

} // namespace

int
main()
{
    std::cout << "persim example: durable KV service "
              << "(WAL + checkpoint)\n\n";

    PersistTimingEngine strict({.model = ModelConfig::strict()});
    PersistTimingEngine epoch({.model = ModelConfig::epoch()});
    PersistTimingEngine strand({.model = ModelConfig::strand()});
    InMemoryTrace trace;
    FanoutSink fanout;
    for (TraceSink *sink : std::vector<TraceSink *>{&strict, &epoch,
                                                    &strand, &trace})
        fanout.addSink(sink);

    EngineConfig config;
    config.seed = 12;
    config.quantum = 5;
    ExecutionEngine engine(config, &fanout);

    auto kv = std::make_shared<DurableKv>();
    engine.runSetup([&kv](ThreadCtx &ctx) {
        *kv = DurableKv::create(ctx, threads);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.push_back([kv, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= updates_per_thread; ++i) {
                const std::uint64_t key = 1 + (t * 11 + i * 7) % key_space;
                const std::uint64_t serial = t * 1000 + i;
                kv->set(ctx, t, key, valueFor(key, serial));
            }
        });
    }
    engine.run(workers);

    std::cout << "applied " << threads * updates_per_thread
              << " updates over " << key_space << " keys\n\n"
              << "service persist concurrency (critical path levels):\n";
    for (const auto *analysis : {&strict, &epoch, &strand}) {
        std::cout << "  " << analysis->config().model.name() << ": "
                  << analysis->result().critical_path << "\n";
    }

    const LogLayout wal_layout = kv->wal().layout();
    const HashMapLayout map_layout = kv->map().layout();

    std::cout << "\ncrash-recovery check (strand persistency):\n";
    InjectionConfig injection;
    injection.model = ModelConfig::strand();
    injection.realizations = 8;
    injection.crashes_per_realization = 40;
    const auto result = injectFailures(
        trace, injection,
        [&wal_layout, &map_layout](const MemoryImage &image) {
            std::string error;
            const auto state = DurableKv::recover(image, wal_layout,
                                                  map_layout, error);
            if (!error.empty())
                return error;
            for (const auto &[key, value] : state) {
                if (key == 0 || key > key_space || value % 1000 != key)
                    return std::string("recovered value no writer "
                                       "wrote for key ") +
                        std::to_string(key);
            }
            return std::string();
        });
    std::cout << "  " << result.samples << " crash states, "
              << result.violations << " corrupt recoveries\n";
    if (!result.ok())
        std::cout << "  first: " << result.first_violation << "\n";

    std::cout << (result.ok()
                  ? "\nThe WAL's one ordering annotation per append "
                    "plus the map's\npublish barrier are the only "
                    "ordering the whole service needs;\nunder strand "
                    "persistency everything else overlaps.\n"
                  : "\nBUG in the service's durability protocol.\n");
    return result.ok() ? 0 : 1;
}
