/**
 * @file
 * Trace tooling example: record an execution to a trace file, then
 * analyze the file offline — statistics, per-model critical paths,
 * persist-epoch race detection, and an event dump.
 *
 * This mirrors the paper's methodology split: tracing happens once
 * (their PIN tool), analyses run separately over the trace. It also
 * demonstrates that persim's offline analysis is identical to the
 * online (streaming) one.
 *
 * Usage: trace_inspect [path]   (default: a temp file)
 */

#include <cstdio>
#include <iostream>

#include "bench_util/queue_workload.hh"
#include "memtrace/trace_io.hh"
#include "memtrace/trace_stats.hh"
#include "persistency/timing_engine.hh"

using namespace persim;

int
main(int argc, char **argv)
{
    const std::string path =
        argc > 1 ? argv[1] : "/tmp/persim_example_trace.trc";

    std::cout << "persim example: trace recording and offline analysis\n\n";

    // ---- Record: run a queue workload straight into a trace file,
    // with an online analysis attached for cross-checking. ----
    QueueWorkloadConfig config;
    config.kind = QueueKind::TwoLockConcurrent;
    config.variant = AnnotationVariant::Racing;
    config.threads = 4;
    config.inserts_per_thread = 200;
    config.seed = 31;

    double online_critical_path = 0.0;
    {
        TraceFileWriter writer(path);
        TimingConfig timing;
        timing.model = ModelConfig::epoch();
        PersistTimingEngine online(timing);
        std::vector<TraceSink *> sinks{&writer, &online};
        runQueueWorkload(config, sinks);
        online_critical_path = online.result().critical_path;
        std::cout << "recorded " << writer.eventsWritten()
                  << " events to " << path << "\n";
    }

    // ---- Inspect: header, stats, first events. ----
    TraceFileReader reader(path);
    std::cout << "header: " << reader.eventCount() << " events, "
              << reader.threadCount() << " threads\n\nfirst events:\n";
    TraceEvent event;
    for (int i = 0; i < 8 && reader.readNext(event); ++i)
        std::cout << "  " << formatEvent(event) << "\n";

    const InMemoryTrace trace = readTraceFile(path);
    TraceStats stats;
    trace.replay(stats);
    std::cout << "\n" << stats.render();

    // ---- Analyze offline under every model. ----
    std::cout << "\noffline persist-timing analysis:\n";
    for (const auto &model :
         {ModelConfig::strict(), ModelConfig::epoch(),
          ModelConfig::strand(), ModelConfig::bpfs()}) {
        TimingConfig timing;
        timing.model = model;
        timing.detect_races = true;
        PersistTimingEngine engine(timing);
        trace.replay(engine);
        std::cout << "  " << model.name() << ": critical path "
                  << engine.result().critical_path << " ("
                  << engine.result().criticalPathPerOp() << "/insert), "
                  << engine.result().coalesced << " coalesced, "
                  << engine.result().races << " persist-epoch races\n";
        if (model.kind == ModelKind::Epoch &&
            model.conflict_scope == ConflictScope::AllAddresses &&
            engine.result().critical_path != online_critical_path) {
            std::cout << "  ERROR: offline != online analysis!\n";
            return 1;
        }
    }

    std::cout << "\nThe racing-epochs annotation races on purpose: "
              << "head updates are\nserialized by strong persist "
              << "atomicity instead of barriers, which\nis what the "
              << "race counts above show. Offline analysis of the\n"
              << "trace file matches the online result exactly.\n";
    std::remove(path.c_str());
    return 0;
}
