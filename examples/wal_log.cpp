/**
 * @file
 * Write-ahead log example (the workload the paper's Section 6
 * motivates: "several workloads require high-performance persistent
 * queues, such as write ahead logs (WAL) in databases").
 *
 * A toy storage engine applies transactions to a volatile table but
 * first appends a redo record to a persistent queue (the WAL). After
 * a crash, the table is rebuilt by replaying the WAL. The demo:
 *
 *  1. runs concurrent transaction threads appending to the WAL
 *     (Two-Lock Concurrent queue, racing epochs + strands),
 *  2. measures how well each persistency model overlaps the WAL's
 *     persists,
 *  3. crashes at random points (recovery observer) and replays the
 *     recovered WAL, checking that the rebuilt table is a prefix-
 *     consistent version of the committed state.
 */

#include <cstring>
#include <iostream>
#include <map>

#include "persistency/timing_engine.hh"
#include "queue/queue.hh"
#include "recovery/recovery.hh"
#include "sim/engine.hh"

using namespace persim;

namespace {

constexpr std::uint32_t thread_count = 4;
constexpr std::uint64_t txns_per_thread = 40;
constexpr std::uint64_t keys = 16;

/** Redo record: fixed-size update "set key -> value by txn". */
struct RedoRecord
{
    std::uint64_t txn = 0;
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    std::uint64_t checksum = 0;

    void
    seal()
    {
        checksum = txn ^ (key * 0x9e3779b97f4a7c15ULL) ^ value;
    }

    bool
    valid() const
    {
        return checksum == (txn ^ (key * 0x9e3779b97f4a7c15ULL) ^ value);
    }
};

/** Deterministic transaction stream per thread. */
RedoRecord
makeTxn(std::uint32_t thread, std::uint64_t index)
{
    RedoRecord record;
    record.txn = thread * 1000 + index + 1;
    record.key = (thread * 7 + index * 13) % keys;
    record.value = record.txn * 100 + record.key;
    record.seal();
    return record;
}

/** Replay a recovered WAL into a table image. */
std::map<std::uint64_t, std::uint64_t>
replay(const MemoryImage &image, const QueueLayout &layout,
       std::string &error)
{
    std::map<std::uint64_t, std::uint64_t> table;
    const auto report = recoverQueue(image, layout,
                                     /*verify_content=*/false);
    if (!report.ok) {
        error = report.error;
        return table;
    }
    // Parse each recovered entry back into a RedoRecord. The entry
    // payload embeds the record after the 8-byte op id.
    std::uint64_t pos = report.tail;
    for (const auto &entry : report.entries) {
        std::uint8_t buffer[8 + sizeof(RedoRecord)];
        const std::uint64_t off =
            (entry.offset + 8) % layout.capacity; // Skip length word.
        image.readBytes(buffer, layout.data + off, sizeof(buffer));
        RedoRecord record;
        std::memcpy(&record, buffer + 8, sizeof(record));
        if (!record.valid()) {
            error = "corrupt redo record in recovered WAL";
            return table;
        }
        table[record.key] = record.value;
        pos += layout.slotBytes(entry.len);
    }
    return table;
}

} // namespace

int
main()
{
    std::cout << "persim example: write-ahead logging on NVRAM\n\n";

    // ---- Run the transaction workload over the persistent WAL. ----
    QueueOptions options;
    options.pad = 64;
    options.capacity = 64 * 2048;
    options.conservative_barriers = false; // Racing epochs + SPA.
    options.use_strands = true;            // Txns are independent.

    EngineConfig engine_config;
    engine_config.seed = 2026;
    engine_config.quantum = 6;

    PersistTimingEngine strict({.model = ModelConfig::strict()});
    PersistTimingEngine epoch({.model = ModelConfig::epoch()});
    PersistTimingEngine strand({.model = ModelConfig::strand()});
    InMemoryTrace trace;
    FanoutSink fanout;
    for (TraceSink *sink : std::vector<TraceSink *>{&strict, &epoch,
                                                    &strand, &trace})
        fanout.addSink(sink);

    ExecutionEngine engine(engine_config, &fanout);
    std::unique_ptr<PersistentQueue> wal;
    engine.runSetup([&](ThreadCtx &ctx) {
        wal = TlcQueue::create(ctx, options, thread_count);
    });

    std::vector<ExecutionEngine::WorkerFn> workers;
    for (std::uint32_t t = 0; t < thread_count; ++t) {
        workers.push_back([&wal, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 0; i < txns_per_thread; ++i) {
                const RedoRecord record = makeTxn(t, i);
                // WAL entry payload: [8B op id][redo record].
                std::uint8_t payload[8 + sizeof(RedoRecord)];
                std::memcpy(payload, &record.txn, 8);
                std::memcpy(payload + 8, &record, sizeof(record));
                wal->insert(ctx, t, payload, sizeof(payload), record.txn);
                // The volatile table update would go here; volatile
                // state is lost on crash, so the demo only tracks the
                // durable WAL.
            }
        });
    }
    engine.run(workers);

    const std::uint64_t total_txns = thread_count * txns_per_thread;
    std::cout << "committed " << total_txns
              << " transactions from " << thread_count << " threads ("
              << engine.eventCount() << " memory events)\n\n";

    std::cout << "WAL persist concurrency (critical path, levels):\n";
    for (const auto *analysis : {&strict, &epoch, &strand}) {
        std::cout << "  " << analysis->config().model.name() << ": "
                  << analysis->result().critical_path << " total, "
                  << analysis->result().criticalPathPerOp()
                  << " per commit\n";
    }

    // ---- Crash and recover. ----
    std::cout << "\ncrash-recovery check (epoch persistency, random "
              << "crash points):\n";
    InjectionConfig injection;
    injection.model = ModelConfig::epoch();
    injection.realizations = 10;
    injection.crashes_per_realization = 40;

    const QueueLayout layout = wal->layout();
    std::uint64_t best_recovered = 0;
    const auto result = injectFailures(
        trace, injection,
        [&layout, &best_recovered](const MemoryImage &image) {
            std::string error;
            const auto table = replay(image, layout, error);
            if (!error.empty())
                return error;
            // Prefix consistency: every recovered value must be one a
            // committed transaction wrote for that key.
            for (const auto &[key, value] : table) {
                if (value % 100 != key)
                    return std::string("impossible value recovered");
            }
            best_recovered = std::max<std::uint64_t>(best_recovered,
                                                     table.size());
            return std::string();
        });
    std::cout << "  " << result.samples << " crash states, "
              << result.violations << " corrupt recoveries";
    if (!result.ok())
        std::cout << " — " << result.first_violation;
    std::cout << "\n  largest recovered table: " << best_recovered
              << "/" << keys << " keys\n";

    std::cout << (result.ok()
                  ? "\nThe WAL is the only durable state the engine "
                    "needs: every crash\nstate replays to a consistent "
                    "table.\n"
                  : "\nBUG in the WAL annotations.\n");
    return result.ok() ? 0 : 1;
}
