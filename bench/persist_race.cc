/**
 * @file
 * PersistRace runner: replay any trace file with the streaming
 * persistency-race detector (src/persistency/persist_race.hh,
 * DESIGN.md §14) attached and report what it found.
 *
 * Usage:
 *
 *   persist_race --trace=FILE [--model=NAME]... [--jobs=N]
 *
 * The trace is replayed once per requested persistency model (default
 * set: epoch and px86 — the SC-shadow rule and the dirty-read rule
 * respectively). For each replay the runner prints a summary row plus
 * the detector's sample races, and cross-checks the plugin's
 * UnorderedPersist count against the engine's own detect_races ground
 * truth: a divergence is a bug in one of them and fails the run.
 *
 * Exit status: 0 when every replay is race-free, 1 when any race was
 * reported (so the binary doubles as a CI gate over recorded traces),
 * 2 on usage or I/O errors.
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench_util/table.hh"
#include "common/error.hh"
#include "memtrace/trace_io.hh"
#include "persistency/persist_race.hh"
#include "persistency/segment_replay.hh"

using namespace persim;
using namespace persim::bench;

namespace {

struct Options
{
    std::string trace_path;
    std::vector<std::string> models;
    std::uint32_t jobs = 1;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " --trace=FILE [--model=NAME]... [--jobs=N]\n"
        << "  --trace=FILE  .trc trace to scan (memtrace/trace_io.hh)\n"
        << "  --model=NAME  persistency model "
           "(strict|epoch|strand|bpfs|px86); repeatable,\n"
        << "                default: epoch and px86\n"
        << "  --jobs=N      replay segment-parallel on N workers "
           "(default serial)\n";
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&arg](const char *name) -> std::string {
            const std::string prefix = std::string(name) + "=";
            return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                             : std::string();
        };
        if (!value("--trace").empty())
            options.trace_path = value("--trace");
        else if (!value("--model").empty())
            options.models.push_back(value("--model"));
        else if (!value("--jobs").empty())
            options.jobs = static_cast<std::uint32_t>(
                std::stoul(value("--jobs")));
        else
            usage(argv[0]);
    }
    if (options.trace_path.empty())
        usage(argv[0]);
    if (options.models.empty())
        options.models = {"epoch", "px86"};
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parse(argc, argv);
    try {
        const InMemoryTrace trace = readTraceFile(options.trace_path);
        std::cout << "trace: " << options.trace_path << " ("
                  << trace.size() << " events)\n\n";

        TextTable table;
        table.header({"model", "persists", "races", "unordered",
                      "dirty-reads"});
        std::uint64_t total_races = 0;
        bool diverged = false;
        std::vector<std::string> reports;
        for (const std::string &name : options.models) {
            PersistRaceDetector detector;
            TimingConfig config;
            config.model = modelByName(name);
            config.detect_races = true;
            config.plugins.push_back(&detector);

            TimingResult result;
            if (options.jobs > 1) {
                SegmentReplayOptions sopts;
                sopts.jobs = options.jobs;
                result = segmentReplay(trace, config, sopts, nullptr);
            } else {
                PersistTimingEngine engine(config);
                trace.replay(engine);
                result = engine.result();
            }

            table.row({name, std::to_string(result.persists),
                       std::to_string(detector.total()),
                       std::to_string(detector.unorderedPersists()),
                       std::to_string(detector.dirtyReads())});
            total_races += detector.total();
            if (detector.total() > 0)
                reports.push_back("[" + name + "]\n" + detector.format());
            if (detector.unorderedPersists() != result.races) {
                diverged = true;
                std::cerr << "INTERNAL: plugin reported "
                          << detector.unorderedPersists()
                          << " unordered persists under " << name
                          << " but the engine counted " << result.races
                          << "\n";
            }
        }
        std::cout << table.render();
        for (const std::string &report : reports)
            std::cout << "\n" << report;
        if (diverged)
            return 2;
        if (total_races > 0) {
            std::cout << "\n" << total_races
                      << " persistency race(s) reported\n";
            return 1;
        }
        std::cout << "\nno persistency races\n";
        return 0;
    } catch (const Error &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 2;
    }
}
