/**
 * @file
 * Figure 4: persist ordering critical path per insert vs. atomic
 * persist granularity (8..256 bytes), Copy While Locked, one thread.
 *
 * Paper shape: at 8-byte persists, strict persistency's path is far
 * above epoch persistency's; as atomic persists grow, adjacent data
 * persists coalesce and strict steadily falls until it matches epoch
 * at 256 bytes. Epoch persistency is flat (its data persists are
 * already concurrent).
 */

#include "bench/bench_common.hh"
#include "bench_util/table.hh"

using namespace persim;
using namespace persim::bench;

int
main()
{
    banner("Figure 4: critical path per insert vs. atomic persist "
           "granularity (Copy While Locked, 1 thread)",
           "strict falls with larger atomic persists and meets epoch "
           "at 256 B; epoch is unchanged");

    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Conservative;
    config.threads = 1;
    config.inserts_per_thread = 20000;

    // One trace, all engines attached (12 analyses in one pass).
    std::vector<std::unique_ptr<PersistTimingEngine>> engines;
    std::vector<PersistTimingEngine *> sinks;
    const std::vector<std::uint64_t> grans{8, 16, 32, 64, 128, 256};
    for (const auto gran : grans) {
        for (auto model : {ModelConfig::strict(), ModelConfig::epoch()}) {
            model.atomic_granularity = gran;
            engines.push_back(
                std::make_unique<PersistTimingEngine>(levels(model)));
            sinks.push_back(engines.back().get());
        }
    }
    runInto(config, sinks);

    TextTable table;
    table.header({"atomic persist (B)", "strict cp/insert",
                  "epoch cp/insert", "strict coalesced%",
                  "epoch coalesced%"});
    for (std::size_t i = 0; i < grans.size(); ++i) {
        const auto &strict = engines[2 * i]->result();
        const auto &epoch = engines[2 * i + 1]->result();
        table.row({
            std::to_string(grans[i]),
            formatDouble(strict.criticalPathPerOp(), 3),
            formatDouble(epoch.criticalPathPerOp(), 3),
            formatDouble(100.0 * static_cast<double>(strict.coalesced) /
                         static_cast<double>(strict.persists), 1),
            formatDouble(100.0 * static_cast<double>(epoch.coalesced) /
                         static_cast<double>(epoch.persists), 1),
        });
    }
    std::cout << "\n" << table.render();
    return 0;
}
