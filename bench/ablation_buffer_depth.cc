/**
 * @file
 * Ablation: buffered strict persistency (paper Section 4.1/5.1).
 * Buffered strict persistency queues persists in a totally ordered
 * buffer and lets execution run ahead; this sweep shows throughput
 * vs. buffer depth, and the cost of frequent persist syncs.
 */

#include <iostream>

#include "bench_util/table.hh"
#include "nvram/drain_sim.hh"

using namespace persim;

int
main()
{
    std::cout <<
        "================================================================\n"
        "Ablation: buffered strict persistency — persist buffer depth\n"
        "================================================================\n"
        "Strict persistency serializes persists; buffering hides their\n"
        "latency until the buffer fills. 500 ns persists, one persist\n"
        "per 50 ns of execution (a persist-heavy workload).\n\n";

    TextTable table;
    table.header({"buffer depth", "persists/s", "stall fraction"});
    DrainConfig config;
    config.persist_latency_ns = 500.0;
    config.ns_between_persists = 50.0;
    for (const std::uint64_t depth : {0u, 1u, 2u, 4u, 8u, 16u, 64u,
                                      256u, 4096u}) {
        config.buffer_depth = depth;
        const auto result = simulateDrain(config, 200000);
        table.row({std::to_string(depth),
                   formatRate(result.persistsPerSecond()),
                   formatDouble(result.stallFraction(), 3)});
    }
    std::cout << table.render();

    std::cout << "\nWith persist sync every N persists (depth 4096):\n";
    TextTable sync_table;
    sync_table.header({"persists/sync", "persists/s", "stall fraction"});
    config.buffer_depth = 4096;
    for (const std::uint64_t per_sync : {1u, 4u, 16u, 64u, 256u, 0u}) {
        config.persists_per_sync = per_sync;
        const auto result = simulateDrain(config, 200000);
        sync_table.row({per_sync == 0 ? "never" : std::to_string(per_sync),
                        formatRate(result.persistsPerSecond()),
                        formatDouble(result.stallFraction(), 3)});
    }
    std::cout << sync_table.render();
    return 0;
}
