/**
 * @file
 * Px86 conformance runner: executes the litmus suite, cross-checks
 * reachable post-crash states across persistency models, and prints
 * (or writes) the divergence report.
 *
 * The report is deterministic — byte-identical for every --jobs
 * value — and its committed copy lives at
 * tests/conformance/golden/conformance_report.txt (golden-checked by
 * tests/conformance/conformance_test.cc). Regenerate it after an
 * intentional semantic change with:
 *
 *   conformance_report --out=tests/conformance/golden/conformance_report.txt
 *
 * Examples:
 *
 *   conformance_report                  # full suite to stdout
 *   conformance_report --jobs=8         # same bytes, faster
 *   conformance_report --handwritten    # skip the generated tests
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/error.hh"
#include "conformance/litmus.hh"

using namespace persim;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0 << " [options]\n"
              << "  --jobs=N         worker threads (default 1)\n"
              << "  --generated=N    generated random tests "
                 "(default 20)\n"
              << "  --handwritten    hand-written suite only\n"
              << "  --out=PATH       write the report to PATH\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    ConformanceOptions options;
    std::size_t generated = 20;
    bool handwritten_only = false;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0)
            options.jobs = static_cast<std::uint32_t>(
                std::stoul(arg.substr(7)));
        else if (arg.rfind("--generated=", 0) == 0)
            generated = std::stoul(arg.substr(12));
        else if (arg == "--handwritten")
            handwritten_only = true;
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else
            usage(argv[0]);
    }

    std::vector<LitmusTest> tests = handwrittenLitmusTests();
    if (!handwritten_only) {
        std::vector<LitmusTest> random = generatedLitmusTests(generated);
        for (LitmusTest &test : random)
            tests.push_back(std::move(test));
    }

    const std::vector<LitmusResult> results =
        runConformanceSuite(tests, options);
    const std::string report = formatDivergenceReport(results);

    if (out_path.empty()) {
        std::cout << report;
    } else {
        std::ofstream out(out_path, std::ios::binary);
        PERSIM_REQUIRE(out.good(), "cannot open --out path");
        out << report;
        PERSIM_REQUIRE(out.good(), "short write to --out path");
        std::cout << "wrote " << report.size() << " bytes to "
                  << out_path << "\n";
    }
    return 0;
}
