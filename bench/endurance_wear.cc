/**
 * @file
 * Ablation: NVRAM write traffic and wear (paper Sections 2.1 and 3).
 * Coalescing "reduces the total number of NVRAM writes, which may be
 * important for NVRAM devices that are subject to wear": this bench
 * counts raw persist traffic vs. post-coalescing device writes per
 * model and atomic persist granularity, and reports wear imbalance.
 */

#include "bench/bench_common.hh"
#include "bench_util/table.hh"
#include "nvram/endurance.hh"

using namespace persim;
using namespace persim::bench;

int
main()
{
    banner("Ablation: write traffic, coalescing, and wear "
           "(Copy While Locked, 1 thread)",
           "coalescing cuts device writes; the head pointer is the "
           "hottest cell and dominates wear imbalance");

    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Conservative;
    config.threads = 1;
    config.inserts_per_thread = 8000;

    EnduranceTracker tracker(64);
    std::vector<std::unique_ptr<PersistTimingEngine>> engines;
    std::vector<TraceSink *> sinks{&tracker};
    const std::vector<std::uint64_t> grans{8, 64, 256};
    for (const auto gran : grans) {
        for (auto model : {ModelConfig::strict(), ModelConfig::epoch()}) {
            model.atomic_granularity = gran;
            TimingConfig timing = levels(model);
            timing.record_log = true;
            engines.push_back(
                std::make_unique<PersistTimingEngine>(timing));
            sinks.push_back(engines.back().get());
        }
    }
    runQueueWorkload(config, sinks);

    std::cout << "\nRaw persistent write traffic: "
              << tracker.totalWrites() << " word writes, "
              << tracker.blocksTouched() << " 64B blocks touched\n"
              << "hottest block: " << tracker.maxBlockWrites()
              << " writes (wear imbalance "
              << formatDouble(tracker.imbalance(), 1) << "x mean)\n\n";

    TextTable table;
    table.header({"model", "atomic(B)", "device writes",
                  "writes/insert", "reduction"});
    const double raw = static_cast<double>(tracker.totalWrites());
    for (std::size_t i = 0; i < engines.size(); ++i) {
        const auto writes = countDeviceWrites(engines[i]->log());
        table.row({
            engines[i]->config().model.name(),
            std::to_string(engines[i]->config().model.atomic_granularity),
            std::to_string(writes),
            formatDouble(static_cast<double>(writes) / 8000.0, 2),
            formatDouble(raw / static_cast<double>(writes), 2) + "x",
        });
    }
    std::cout << table.render();
    return 0;
}
