/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper's evaluation (Section 8) and prints (a) what the paper
 * reports, (b) what this run measured, in a shape that EXPERIMENTS.md
 * can quote directly.
 */

#ifndef PERSIM_BENCH_BENCH_COMMON_HH
#define PERSIM_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <iostream>
#include <string>

#include "bench_util/queue_workload.hh"
#include "persistency/timing_engine.hh"

namespace persim::bench {

/** The paper's headline persist latency (500 ns, Section 8.1). */
constexpr double paper_latency_ns = 500.0;

/** Print a banner naming the experiment. */
inline void
banner(const std::string &title, const std::string &paper_claim)
{
    std::cout << "==========================================================="
              << "=====\n" << title << "\n"
              << "Paper: " << paper_claim << "\n"
              << "==========================================================="
              << "=====\n";
}

/** Run one queue workload into a set of timing engines (fanout). */
inline QueueWorkloadResult
runInto(const QueueWorkloadConfig &config,
        std::vector<PersistTimingEngine *> engines)
{
    std::vector<TraceSink *> sinks;
    for (auto *engine : engines)
        sinks.push_back(engine);
    return runQueueWorkload(config, sinks);
}

/** Level-clock engine for a model. */
inline TimingConfig
levels(const ModelConfig &model)
{
    TimingConfig config;
    config.model = model;
    return config;
}

} // namespace persim::bench

#endif // PERSIM_BENCH_BENCH_COMMON_HH
