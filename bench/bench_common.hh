/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper's evaluation (Section 8) and prints (a) what the paper
 * reports, (b) what this run measured, in a shape that EXPERIMENTS.md
 * can quote directly.
 */

#ifndef PERSIM_BENCH_BENCH_COMMON_HH
#define PERSIM_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/bench_report.hh"
#include "bench_util/queue_workload.hh"
#include "common/task_pool.hh"
#include "persistency/compiled_replay.hh"
#include "persistency/segment_replay.hh"
#include "persistency/timing_engine.hh"

namespace persim::bench {

/** The paper's headline persist latency (500 ns, Section 8.1). */
constexpr double paper_latency_ns = 500.0;

/** Flags common to the sweep/analysis benches. */
struct BenchOptions
{
    /** Analysis parallelism: 1 = serial baseline, 0 = hardware. */
    std::uint32_t jobs = 1;

    /** Replay analyses from a trace file in streaming chunks. */
    bool stream = false;

    /** Streaming chunk size in events. */
    std::uint64_t chunk_events = 1ULL << 16;

    /**
     * Replay file-backed traces through the zero-copy mmap reader
     * (MmapTraceReader) instead of the streaming decoder.
     */
    bool mmap = false;

    /** Write machine-readable replay samples here (empty = don't). */
    std::string json_path;

    /**
     * Extra persistency models (--model=NAME, repeatable) to analyze
     * on top of the bench's built-in set; see modelByName() for the
     * accepted names. Duplicates of built-in rows are skipped by the
     * benches.
     */
    std::vector<std::string> models;

    /**
     * Replay through the compiled-trace path: compile each trace once
     * per compile spec (persistency/compiled_replay.hh) and execute
     * the micro-op columns directly, skipping decode/split/intern on
     * every replay. Bit-identical to interpreted replay.
     */
    bool compiled = false;

    /**
     * Cache compiled artifacts here (.ctc files keyed by source hash
     * and spec fingerprint); empty compiles in memory per run.
     * Implies --compiled.
     */
    std::string compile_cache;
};

/**
 * Parse the shared bench flags (--jobs=N, --stream,
 * --chunk-events=N); exits with usage on anything unrecognized.
 */
inline BenchOptions
parseBenchOptions(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&arg](const char *name) -> std::string {
            const std::string prefix = std::string(name) + "=";
            return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                             : std::string();
        };
        if (arg == "--stream") {
            options.stream = true;
        } else if (arg == "--mmap") {
            options.mmap = true;
        } else if (!value("--jobs").empty()) {
            options.jobs =
                static_cast<std::uint32_t>(std::stoul(value("--jobs")));
        } else if (!value("--chunk-events").empty()) {
            options.chunk_events = std::stoull(value("--chunk-events"));
        } else if (!value("--json").empty()) {
            options.json_path = value("--json");
        } else if (!value("--model").empty()) {
            options.models.push_back(value("--model"));
        } else if (arg == "--compiled") {
            options.compiled = true;
        } else if (!value("--compile-cache").empty()) {
            options.compiled = true;
            options.compile_cache = value("--compile-cache");
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--jobs=N] [--stream] [--mmap]"
                         " [--chunk-events=N] [--json=PATH]"
                         " [--model=NAME]... [--compiled]"
                         " [--compile-cache=DIR]\n"
                      << "  --jobs=N    analysis worker threads "
                         "(1 = serial baseline, 0 = hardware)\n"
                      << "  --stream    replay analyses from a trace "
                         "file in chunks\n"
                      << "  --mmap      replay file-backed traces via "
                         "the zero-copy mmap reader\n"
                      << "  --json=PATH write BENCH_replay.json-style "
                         "replay samples\n"
                      << "  --model=NAME add a persistency model "
                         "(strict|epoch|strand|bpfs|px86) to the "
                         "analysis set; repeatable\n"
                      << "  --compiled  replay through the "
                         "compiled-trace executor (bit-identical)\n"
                      << "  --compile-cache=DIR cache compiled "
                         "artifacts as .ctc files in DIR (implies "
                         "--compiled)\n";
            std::exit(2);
        }
    }
    return options;
}

/** Look up a ModelConfig preset by its CLI name; exits on unknown. */
inline ModelConfig
modelByName(const std::string &name)
{
    if (name == "strict")
        return ModelConfig::strict();
    if (name == "epoch")
        return ModelConfig::epoch();
    if (name == "strand")
        return ModelConfig::strand();
    if (name == "bpfs")
        return ModelConfig::bpfs();
    if (name == "px86")
        return ModelConfig::px86();
    std::cerr << "unknown --model: " << name
              << " (expected strict|epoch|strand|bpfs|px86)\n";
    std::exit(2);
}

/**
 * The ModelConfigs the --model flags name, minus any whose name() is
 * already in the bench's built-in set @p have.
 */
inline std::vector<ModelConfig>
extraModels(const BenchOptions &options,
            const std::vector<std::string> &have = {})
{
    std::vector<ModelConfig> extra;
    for (const std::string &name : options.models) {
        const ModelConfig model = modelByName(name);
        bool known = false;
        for (const std::string &existing : have)
            known = known || existing == model.name();
        for (const ModelConfig &picked : extra)
            known = known || picked.name() == model.name();
        if (!known)
            extra.push_back(model);
    }
    return extra;
}

/** Effective worker count a jobs flag resolves to. */
inline std::uint32_t
effectiveJobs(std::uint32_t jobs)
{
    return jobs == 0 ? TaskPool::defaultWorkers() : jobs;
}

/**
 * Replay @p trace under @p config the way the bench's --jobs flag
 * asks: serial through one engine at jobs <= 1, segment-parallel
 * (persistency/segment_replay.hh, bit-identical to serial) on the
 * shared @p pool otherwise. Benches that fan out per-config on the
 * same pool stay deadlock-free because parallelFor help-executes
 * nested batches.
 */
inline TimingResult
replayForOptions(const InMemoryTrace &trace, const TimingConfig &config,
                 const BenchOptions &options, TaskPool &pool)
{
    const std::uint32_t jobs = effectiveJobs(options.jobs);
    if (options.compiled) {
        // Compiled path: segment-prep once (cached across runs and
        // across same-spec models when --compile-cache is set), then
        // execute the micro-op columns directly.
        CompiledReplayOptions copts;
        copts.jobs = jobs;
        copts.pool = &pool;
        if (!options.compile_cache.empty()) {
            const CompiledTraceHandle handle = loadOrCompileTrace(
                trace.events().data(), trace.events().size(), config,
                options.compile_cache, {}, jobs, &pool);
            return compiledReplay(handle.view(), config, copts);
        }
        const CompiledTrace compiled =
            compileTrace(trace.events().data(), trace.events().size(),
                         config, jobs, &pool);
        return compiledReplay(compiled.view(), config, copts);
    }
    if (jobs <= 1) {
        PersistTimingEngine engine(config);
        trace.replay(engine);
        return engine.result();
    }
    SegmentReplayOptions segment;
    segment.jobs = jobs;
    segment.pool = &pool;
    return segmentReplay(trace, config, segment);
}

/** Wall-clock stopwatch for per-analysis timing. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** "12.3 M" style count formatting for events/sec reporting. */
inline std::string
formatEventsPerSec(std::uint64_t events, double seconds)
{
    if (seconds <= 0.0)
        return "-";
    const double rate = static_cast<double>(events) / seconds;
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f M/s", rate / 1e6);
    return buffer;
}

/**
 * One-line analysis summary quoted by EXPERIMENTS.md: total configs,
 * events consumed across all analyses, wall time, aggregate events/s,
 * and the parallelism it ran at.
 */
inline void
reportAnalysisWall(std::size_t configs, std::uint64_t events_analyzed,
                   double wall_seconds, std::uint32_t jobs)
{
    std::cout << "analysis: " << configs << " configs, "
              << events_analyzed << " events analyzed in "
              << wall_seconds << " s wall ("
              << formatEventsPerSec(events_analyzed, wall_seconds)
              << ", --jobs=" << effectiveJobs(jobs) << ")\n";
}

/**
 * Write the bench's replay samples if --json=PATH was given; a bench
 * that measured nothing writes nothing.
 */
inline void
writeBenchReport(const BenchReport &report, const BenchOptions &options)
{
    if (options.json_path.empty() || report.empty())
        return;
    report.writeJson(options.json_path);
    std::cout << "bench report: " << report.size() << " samples -> "
              << options.json_path << "\n";
}

/** Print a banner naming the experiment. */
inline void
banner(const std::string &title, const std::string &paper_claim)
{
    std::cout << "==========================================================="
              << "=====\n" << title << "\n"
              << "Paper: " << paper_claim << "\n"
              << "==========================================================="
              << "=====\n";
}

/** Scratch path for --stream trace spills. */
inline std::string
tempTracePath(const std::string &tag)
{
    const char *tmp = std::getenv("TMPDIR");
    return std::string(tmp != nullptr ? tmp : "/tmp") + "/persim_" +
        tag + ".trc";
}

/** Run one queue workload into a set of timing engines (fanout). */
inline QueueWorkloadResult
runInto(const QueueWorkloadConfig &config,
        std::vector<PersistTimingEngine *> engines)
{
    std::vector<TraceSink *> sinks;
    for (auto *engine : engines)
        sinks.push_back(engine);
    return runQueueWorkload(config, sinks);
}

/** Level-clock engine for a model. */
inline TimingConfig
levels(const ModelConfig &model)
{
    TimingConfig config;
    config.model = model;
    return config;
}

} // namespace persim::bench

#endif // PERSIM_BENCH_BENCH_COMMON_HH
