/**
 * @file
 * Ablation: relaxing consistency under the persistency models (paper
 * Section 4.3). The same queue workload executes under SC and under
 * TSO (per-thread store buffers), with and without consistency
 * fences at persist barriers; the table reports the persist critical
 * path and the persist-epoch race count the decoupling introduces.
 *
 * The headline: TSO without fences silently *rearranges* the queue's
 * epoch structure — persists enter epochs in drain order, not program
 * order, so the aggregate critical path looks plausible while the
 * specific data-before-head edges recovery depends on are gone
 * (tests/integration/tso_recovery_test demonstrates the resulting
 * crash corruption). Fencing at persist barriers restores the SC
 * epoch structure exactly.
 */

#include <iostream>

#include "bench_util/table.hh"
#include "persistency/timing_engine.hh"
#include "queue/payload.hh"
#include "queue/queue.hh"

using namespace persim;

namespace {

InMemoryTrace
runQueue(ConsistencyModel consistency, bool fences)
{
    InMemoryTrace trace;
    EngineConfig config;
    config.seed = 17;
    config.quantum = 4;
    config.consistency = consistency;
    config.max_events = 20'000'000;
    ExecutionEngine engine(config, &trace);

    QueueOptions options;
    options.capacity = 128 * 2048;
    options.conservative_barriers = false;
    options.fence_with_barriers = fences;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = CwlQueue::create(ctx, options, 2);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 2; ++t) {
        workers.push_back([&queue, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= 800; ++i) {
                const std::uint64_t op = t * 10000 + i;
                const auto payload = makePayload(op, 100);
                queue->insert(ctx, t, payload.data(), 100, op);
            }
        });
    }
    engine.run(workers);
    return trace;
}

} // namespace

int
main()
{
    std::cout <<
        "================================================================\n"
        "Ablation: consistency relaxation vs. persistency "
        "(CWL, 2 threads,\nracing epochs, epoch persistency analysis)\n"
        "================================================================\n\n";

    TextTable table;
    table.header({"execution", "fences", "cp/insert", "races",
                  "events"});
    struct Case
    {
        const char *name;
        ConsistencyModel consistency;
        bool fences;
    };
    for (const Case &c : {Case{"SC", ConsistencyModel::SC, false},
                          Case{"TSO", ConsistencyModel::TSO, false},
                          Case{"TSO", ConsistencyModel::TSO, true}}) {
        const auto trace = runQueue(c.consistency, c.fences);
        TimingConfig config;
        config.model = ModelConfig::epoch();
        config.detect_races = true;
        PersistTimingEngine engine(config);
        trace.replay(engine);
        table.row({
            c.name,
            c.fences ? "yes" : "no",
            formatDouble(engine.result().criticalPathPerOp(), 3),
            std::to_string(engine.result().races),
            std::to_string(engine.result().events),
        });
    }
    std::cout << table.render()
              << "\nUnder unfenced TSO, persists enter epochs in drain "
              << "order rather than\nprogram order: the aggregate path "
              << "shifts while the data-before-head\nedges recovery "
              << "needs are silently lost (failure injection shows "
              << "real\ncorruption). Fencing at persist barriers "
              << "restores the SC structure\nat a small event-count "
              << "cost.\n";
    return 0;
}
