/**
 * @file
 * Explore-scaling bench: how much larger a program the constraint-
 * guided crash-state pruner (ExploreConfig::prune_cuts, DESIGN.md
 * §14) lets the explorer finish, under one fixed cut budget.
 *
 * The program family is a single-thread worst case for blind cut
 * enumeration: K independent scratch persists (one epoch, mutually
 * unordered — an antichain) followed by a barrier-separated chain of
 * C observed cells. Exhaustive enumeration must walk every order
 * ideal, 2^K + C cuts, so it exhausts any fixed budget once K
 * crosses log2(budget); the pruned enumeration projects onto the C
 * observed cells and checks C+1 cuts NO MATTER how large K grows.
 *
 * The bench sweeps K upward through both modes, records every run in
 * BENCH_explore.json (key explore/<mode>/K<k>, events = cuts checked
 * — the committed copy at the repo root is refreshed with
 * --json=BENCH_explore.json like BENCH_replay.json), and reports the
 * largest completed (exhaustive-verdict) program per mode. With
 * --check it exits nonzero unless pruning completes a program at
 * least 5x larger than blind enumeration — the acceptance gate
 * scripts/check.sh runs.
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench_util/table.hh"
#include "common/error.hh"
#include "explore/explore.hh"

using namespace persim;
using namespace persim::bench;

namespace {

/** Observed chain length (fixed; the sweep varies K). */
constexpr std::uint32_t chain_cells = 4;

/** One shared cut budget for both modes: the "wall-clock" proxy. */
constexpr std::uint64_t cut_budget = 1ULL << 15;

/** Scratch-cell counts the sweep tries, in order. */
constexpr std::uint32_t sweep[] = {4,  8,  12, 14, 16,  20,
                                   32, 64, 96, 128, 160};

/**
 * K unobserved scratch persists (antichain) + a C-cell observed
 * chain with barriers between links. Invariant: the chain recovers
 * as a prefix (cell i durable => cell i-1 durable), which the
 * barriers guarantee — every run is clean; the bench measures
 * enumeration, not bug-finding.
 */
ProgramFactory
scalingProgram(std::uint32_t scratch_cells)
{
    return [scratch_cells]() {
        struct State
        {
            Addr chain = invalid_addr;
            Addr scratch = invalid_addr;
        };
        auto state = std::make_shared<State>();

        ExploreProgram program;
        program.observed = std::make_shared<std::vector<ObservedCell>>();
        auto observed = program.observed;
        program.setup = [state, observed, scratch_cells](ThreadCtx &ctx) {
            state->chain = ctx.pmalloc(chain_cells * 8ULL);
            state->scratch = ctx.pmalloc(scratch_cells * 8ULL);
            observed->clear();
            for (std::uint32_t i = 0; i < chain_cells; ++i)
                observed->push_back(ObservedCell{
                    "c" + std::to_string(i), state->chain + i * 8ULL, 8});
        };
        program.workers.push_back([state, scratch_cells](ThreadCtx &ctx) {
            for (std::uint32_t i = 0; i < scratch_cells; ++i)
                ctx.store(state->scratch + i * 8ULL, i + 1);
            for (std::uint32_t i = 0; i < chain_cells; ++i) {
                ctx.persistBarrier();
                ctx.store(state->chain + i * 8ULL, i + 1);
            }
        });
        program.invariant = [state]() -> RecoveryInvariant {
            return [state](const MemoryImage &image) -> std::string {
                for (std::uint32_t i = 1; i < chain_cells; ++i) {
                    if (image.load(state->chain + i * 8ULL, 8) != 0 &&
                        image.load(state->chain + (i - 1) * 8ULL, 8) == 0)
                        return "chain cell " + std::to_string(i) +
                               " durable before its predecessor";
                }
                return "";
            };
        };
        return program;
    };
}

struct ModeOutcome
{
    std::uint32_t max_cells = 0; //!< Largest completed program (K).
    std::uint64_t max_cuts = 0;  //!< Cuts checked at that size.
};

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    std::string json_path = "BENCH_explore.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check") {
            check = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--check] [--json=PATH]\n"
                      << "  --check     exit nonzero unless pruning "
                         "completes a >=5x larger program\n"
                      << "  --json=PATH bench report path (default "
                         "BENCH_explore.json)\n";
            return 2;
        }
    }

    banner("Explore scaling: constraint-guided crash-state pruning "
           "vs blind cut enumeration",
           "pruned exploration must complete a program >=5x larger "
           "than exhaustive enumeration under one cut budget "
           "(ISSUE 7 acceptance gate)");
    std::cout << "observed chain: " << chain_cells
              << " cells; cut budget: " << cut_budget
              << " cuts per analysis\n\n";

    try {
        BenchReport report;
        TextTable table;
        table.header({"mode", "scratch-cells", "cuts", "wall(s)",
                      "completed"});
        ModeOutcome outcome[2];
        for (const bool prune : {false, true}) {
            const char *mode = prune ? "pruned" : "exhaustive";
            for (const std::uint32_t cells : sweep) {
                ExploreConfig config;
                config.model = ModelConfig::epoch();
                config.max_cuts = cut_budget;
                config.prune_cuts = prune;
                Explorer explorer(scalingProgram(cells), config);
                Stopwatch watch;
                const ExploreResult result = explorer.run();
                const double wall = watch.seconds();
                const bool completed =
                    result.exhaustive() && result.violations == 0;
                table.row({mode, std::to_string(cells),
                           std::to_string(result.cuts_checked),
                           formatDouble(wall, 4),
                           completed ? "yes" : "no (budget)"});
                report.add("explore/" + std::string(mode) + "/K" +
                               std::to_string(cells),
                           result.cuts_checked, wall);
                if (result.violations > 0) {
                    std::cerr << "INTERNAL: barrier-ordered chain "
                                 "reported a violation\n"
                              << result.summary() << "\n";
                    return 2;
                }
                if (!completed)
                    break; // Larger programs only enumerate more.
                outcome[prune].max_cells = cells;
                outcome[prune].max_cuts = result.cuts_checked;
            }
        }
        std::cout << table.render() << "\n";

        const ModeOutcome &blind = outcome[0];
        const ModeOutcome &pruned = outcome[1];
        std::cout << "exhaustive completes up to K=" << blind.max_cells
                  << " (" << blind.max_cuts << " cuts); pruned up to K="
                  << pruned.max_cells << " (" << pruned.max_cuts
                  << " cuts)\n";
        const double ratio = blind.max_cells == 0
            ? 0.0
            : static_cast<double>(pruned.max_cells) /
                static_cast<double>(blind.max_cells);
        std::cout << "program-size ratio: " << formatDouble(ratio, 1)
                  << "x\n";
        report.add("explore/exhaustive/max_scratch_cells",
                   blind.max_cells, 0.0);
        report.add("explore/pruned/max_scratch_cells",
                   pruned.max_cells, 0.0);
        if (!json_path.empty()) {
            report.writeJson(json_path);
            std::cout << "bench report: " << report.size()
                      << " samples -> " << json_path << "\n";
        }
        if (check && (blind.max_cells == 0 || ratio < 5.0)) {
            std::cerr << "CHECK FAILED: pruning must complete a >=5x "
                         "larger program (got "
                      << formatDouble(ratio, 1) << "x)\n";
            return 1;
        }
        return 0;
    } catch (const Error &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 2;
    }
}
