/**
 * @file
 * Replay-throughput baseline: the canonical producer of
 * BENCH_replay.json (the committed copy lives at the repo root).
 *
 * Replays two traces through the timing engine and records pure
 * replay throughput per model:
 *
 *  - "synthetic": a seeded random 1M-event mixed trace built directly
 *    (no execution engine), the same trace the ctest `perf` smoke
 *    test replays against the committed baseline;
 *  - "cwl1": the Copy While Locked single-thread queue workload the
 *    fig3/fig4/fig5 sweeps analyze.
 *
 * Each sample is the best of five replays (the minimum wall time is
 * the least noise-polluted estimate of achievable throughput). Run
 * with --json=BENCH_replay.json to refresh the committed baseline;
 * EXPERIMENTS.md documents the procedure.
 */

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench_util/synthetic_trace.hh"
#include "bench_util/table.hh"

using namespace persim;
using namespace persim::bench;

namespace {

constexpr int replay_reps = 5;

/** Best-of-N replay of @p trace under @p timing; returns seconds. */
double
timedReplay(const InMemoryTrace &trace, const TimingConfig &timing)
{
    double best = 0.0;
    for (int rep = 0; rep < replay_reps; ++rep) {
        PersistTimingEngine engine(timing);
        Stopwatch watch;
        trace.replay(engine);
        const double wall = watch.seconds();
        if (rep == 0 || wall < best)
            best = wall;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchOptions(argc, argv);
    if (options.json_path.empty())
        options.json_path = "BENCH_replay.json";
    banner("Replay baseline: pure timing-engine throughput "
           "(best of 5 replays per model)",
           "establishes the BENCH_replay.json perf trajectory the "
           "ctest perf smoke test regresses against");

    struct Model
    {
        const char *name;
        ModelConfig model;
    };
    const std::vector<Model> model_list{
        {"strict", ModelConfig::strict()},
        {"epoch", ModelConfig::epoch()},
        {"strand", ModelConfig::strand()},
    };

    struct TraceEntry
    {
        std::string name;
        InMemoryTrace trace;
    };
    std::vector<TraceEntry> traces;
    {
        SyntheticTraceConfig synth;
        traces.push_back({"synthetic", buildSyntheticTrace(synth)});
        QueueWorkloadConfig queue;
        queue.kind = QueueKind::CopyWhileLocked;
        queue.variant = AnnotationVariant::Conservative;
        queue.threads = 1;
        queue.inserts_per_thread = 20000;
        InMemoryTrace trace;
        runQueueWorkload(queue, {&trace});
        traces.push_back({"cwl1", std::move(trace)});
    }

    BenchReport report;
    TextTable table;
    table.header({"trace", "model", "events", "wall(s)", "events/s"});
    for (const TraceEntry &entry : traces) {
        for (const Model &model : model_list) {
            const double wall =
                timedReplay(entry.trace, levels(model.model));
            const std::uint64_t events = entry.trace.size();
            table.row({entry.name, model.name, std::to_string(events),
                       formatDouble(wall, 4),
                       formatEventsPerSec(events, wall)});
            report.add("replay/" + entry.name + "/" + model.name,
                       events, wall);
        }
    }
    std::cout << "\n" << table.render() << "\n";
    writeBenchReport(report, options);
    return 0;
}
