/**
 * @file
 * Replay-throughput baseline: the canonical producer of
 * BENCH_replay.json (the committed copy lives at the repo root).
 *
 * Replays two traces through the timing engine and records pure
 * replay throughput per model:
 *
 *  - "synthetic": a seeded random 1M-event mixed trace built directly
 *    (no execution engine), the same trace the ctest `perf` smoke
 *    test replays against the committed baseline;
 *  - "cwl1": the Copy While Locked single-thread queue workload the
 *    fig3/fig4/fig5 sweeps analyze.
 *
 * Besides the serial rows ("replay/<trace>/<model>") each model is
 * also executed through the compiled-trace path
 * ("replay/<trace>/<model>/compiled": the artifact is built outside
 * the timer, the row measures pure column execution) and through the
 * segment-parallel path at --jobs levels 1/2/4/8
 * ("replay/<trace>/<model>/jN"), so the committed baseline records
 * the compiled speedup and the scaling curve of segmentReplay() on
 * the baseline machine alongside the serial numbers. With --mmap the file-backed
 * variant is measured instead: the trace is spilled to a .trc file
 * once and replayed from MmapTraceReader's zero-copy span.
 *
 * Each sample is the best of five replays (the minimum wall time is
 * the least noise-polluted estimate of achievable throughput). Run
 * with --json=BENCH_replay.json to refresh the committed baseline;
 * EXPERIMENTS.md documents the procedure.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench_util/synthetic_trace.hh"
#include "bench_util/table.hh"
#include "memtrace/trace_io.hh"
#include "persistency/segment_replay.hh"

using namespace persim;
using namespace persim::bench;

namespace {

constexpr int replay_reps = 5;

/** The --jobs levels the committed scaling curve records. */
constexpr std::uint32_t job_levels[] = {1, 2, 4, 8};

/** Best-of-N serial replay of @p events; returns seconds. */
double
timedReplay(const TraceEvent *events, std::size_t count,
            const TimingConfig &timing)
{
    double best = 0.0;
    for (int rep = 0; rep < replay_reps; ++rep) {
        PersistTimingEngine engine(timing);
        Stopwatch watch;
        engine.onBatch(events, count);
        engine.onFinish();
        const double wall = watch.seconds();
        if (rep == 0 || wall < best)
            best = wall;
    }
    return best;
}

/** Best-of-N segment-parallel replay at @p jobs workers. */
double
timedSegmentReplay(const TraceEvent *events, std::size_t count,
                   const TimingConfig &timing, std::uint32_t jobs,
                   TaskPool &pool)
{
    double best = 0.0;
    for (int rep = 0; rep < replay_reps; ++rep) {
        SegmentReplayOptions options;
        options.jobs = jobs;
        options.pool = &pool;
        Stopwatch watch;
        (void)segmentReplay(events, count, timing, options);
        const double wall = watch.seconds();
        if (rep == 0 || wall < best)
            best = wall;
    }
    return best;
}

/** Best-of-N compiled-path execution (artifact built outside). */
double
timedCompiledReplay(const CompiledTraceView &view,
                    const TimingConfig &timing)
{
    double best = 0.0;
    for (int rep = 0; rep < replay_reps; ++rep) {
        Stopwatch watch;
        (void)compiledReplay(view, timing);
        const double wall = watch.seconds();
        if (rep == 0 || wall < best)
            best = wall;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options = parseBenchOptions(argc, argv);
    if (options.json_path.empty())
        options.json_path = "BENCH_replay.json";
    banner("Replay baseline: pure timing-engine throughput "
           "(best of 5 replays per model and jobs level)",
           "establishes the BENCH_replay.json perf trajectory the "
           "ctest perf smoke test regresses against");

    struct Model
    {
        const char *name;
        ModelConfig model;
    };
    const std::vector<Model> model_list{
        {"strict", ModelConfig::strict()},
        {"epoch", ModelConfig::epoch()},
        {"strand", ModelConfig::strand()},
        // Px86 replays the same barrier-annotated traces through the
        // operational flush/fence model (canonical epoch->x86
        // compilation), so the committed baseline tracks the
        // dirty-line bank's overhead against the SC models.
        {"px86", ModelConfig::px86()},
    };

    struct TraceEntry
    {
        std::string name;
        InMemoryTrace trace;
    };
    std::vector<TraceEntry> traces;
    {
        SyntheticTraceConfig synth;
        traces.push_back({"synthetic", buildSyntheticTrace(synth)});
        QueueWorkloadConfig queue;
        queue.kind = QueueKind::CopyWhileLocked;
        queue.variant = AnnotationVariant::Conservative;
        queue.threads = 1;
        queue.inserts_per_thread = 20000;
        InMemoryTrace trace;
        runQueueWorkload(queue, {&trace});
        traces.push_back({"cwl1", std::move(trace)});
    }

    // --mmap: spill each trace to a .trc file once and replay from
    // the zero-copy mapped span instead of the in-memory vector.
    std::vector<std::unique_ptr<MmapTraceReader>> readers;
    std::vector<std::string> spill_paths;

    BenchReport report;
    TextTable table;
    table.header({"trace", "model", "jobs", "events", "wall(s)",
                  "events/s"});
    for (const TraceEntry &entry : traces) {
        const TraceEvent *events = entry.trace.events().data();
        std::size_t count = entry.trace.size();
        if (options.mmap) {
            const std::string path =
                tempTracePath("replay_baseline_" + entry.name);
            {
                TraceFileWriter writer(path);
                entry.trace.replay(writer);
            }
            readers.push_back(std::make_unique<MmapTraceReader>(path));
            spill_paths.push_back(path);
            events = readers.back()->events().data();
            count = readers.back()->eventCount();
        }
        for (const Model &model : model_list) {
            const TimingConfig timing = levels(model.model);
            const double wall = timedReplay(events, count, timing);
            table.row({entry.name, model.name, "serial",
                       std::to_string(count), formatDouble(wall, 4),
                       formatEventsPerSec(count, wall)});
            report.add("replay/" + entry.name + "/" + model.name,
                       count, wall);
            {
                // Compiled path: the artifact is built once outside
                // the timer (it is cached across runs in real use);
                // the row measures pure execution of the columns.
                const CompiledTrace compiled =
                    compileTrace(events, count, timing);
                const double cwall =
                    timedCompiledReplay(compiled.view(), timing);
                table.row({entry.name, model.name, "compiled",
                           std::to_string(count),
                           formatDouble(cwall, 4),
                           formatEventsPerSec(count, cwall)});
                report.add("replay/" + entry.name + "/" + model.name +
                               "/compiled",
                           count, cwall);
            }
            for (const std::uint32_t jobs : job_levels) {
                TaskPool pool(jobs);
                const double pwall = timedSegmentReplay(
                    events, count, timing, jobs, pool);
                const std::string label =
                    "j" + std::to_string(jobs);
                table.row({entry.name, model.name, label,
                           std::to_string(count),
                           formatDouble(pwall, 4),
                           formatEventsPerSec(count, pwall)});
                report.add("replay/" + entry.name + "/" + model.name +
                               "/" + label,
                           count, pwall);
            }
        }
    }
    std::cout << "\n" << table.render() << "\n";
    writeBenchReport(report, options);
    readers.clear();
    for (const std::string &path : spill_paths)
        std::remove(path.c_str());
    return 0;
}
