/**
 * @file
 * Device-fault injection campaign: violation rates per persistency
 * model x fault mix (src/nvram/faults.hh, src/recovery/
 * fault_campaign.hh).
 *
 * The paper's recovery observer assumes a perfect device; this bench
 * measures what each durability protocol loses when the device
 * misbehaves. Surfaces:
 *
 *  - cwl-queue: Copy-While-Locked queue with a checksummed head and
 *    detect-and-discard recovery (graceful degradation);
 *  - queue-nobar: the same queue with the required data-before-head
 *    barrier elided (the campaign must catch it);
 *  - log: the checksummed append-only log with correct ordering
 *    annotations (torn tail records degrade gracefully);
 *  - log-unordered: the log's barrier-elision mutant (torn persists
 *    expose durable holes);
 *  - kv-inplace / kv-cow / kv-log: the persistent KV store under each
 *    update strategy with Repair-tier recovery (src/kvstore/) — the
 *    quarantined/repaired columns show the graceful-degradation
 *    machinery absorbing the faults instead of violating;
 *  - kv-nobar: the KV store's publish-barrier-elision mutant under
 *    Strict recovery (the campaign must catch it);
 *  - kv-txn-{inplace,cow,log}: the cross-shard router running a
 *    transaction-heavy workload, recovered with the fourth-tier
 *    TxnResolve ladder (commit records roll forward, in-doubt
 *    transactions roll back, uncommitted partials are scrubbed);
 *  - kv-migrate-{inplace,cow,log}: the same router with periodic
 *    partition rebalancing — crash-consistent migration must recover
 *    to exactly one owner under every mix;
 *  - kv-txn-nobar: the commit-barrier-elision mutant under the
 *    Repair-tier invariant (no scrub), where partially visible
 *    uncommitted transactions surface as violations.
 *
 * Every violation prints a one-line repro; re-run with
 * --replay="<line>" to re-evaluate exactly that crash state.
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench_util/kv_workload.hh"
#include "bench_util/table.hh"
#include "kvstore/recovery.hh"
#include "kvstore/router.hh"
#include "pstruct/log.hh"
#include "queue/payload.hh"
#include "recovery/fault_campaign.hh"

using namespace persim;
using namespace persim::bench;

namespace {

/** One trace + recovery invariant the campaign sweeps. */
struct Surface
{
    std::string name;
    ModelConfig model;
    InMemoryTrace trace;
    RecoveryInvariant invariant;

    /** Recovery-ladder accounting (KV surfaces only). */
    std::shared_ptr<KvInvariantStats> stats;

    /** Group-level accounting (router surfaces only). */
    std::shared_ptr<KvRouterInvariantStats> router_stats;
};

std::vector<std::uint8_t>
logBytes(std::uint64_t id, std::uint64_t len)
{
    std::vector<std::uint8_t> out(len);
    for (std::uint64_t i = 0; i < len; ++i)
        out[i] = static_cast<std::uint8_t>(id * 131 + i);
    return out;
}

Surface
queueSurface(const std::string &name, bool omit_data_head_barrier)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Conservative;
    config.threads = 2;
    config.inserts_per_thread = 24;
    config.entry_bytes = 24;
    config.seed = 3;
    config.wrap_slots = 0; // Frontier scans need a non-wrapping run.
    config.checksummed_head = true;

    Surface surface;
    surface.name = name;
    surface.model = ModelConfig::epoch();
    if (!omit_data_head_barrier) {
        const auto result = runQueueWorkload(config, {&surface.trace});
        surface.invariant =
            makeDetectAndDiscardInvariant(result.layout, result.golden);
        return surface;
    }

    // The workload driver has no mutant knob; run the queue directly.
    EngineConfig engine_config;
    engine_config.seed = config.seed;
    engine_config.quantum = config.quantum;
    ExecutionEngine engine(engine_config, &surface.trace);
    QueueOptions options = config.queueOptions();
    options.omit_data_head_barrier = true;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = createQueue(ctx, config.kind, options, config.threads);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (std::uint32_t t = 0; t < config.threads; ++t) {
        workers.push_back([&queue, t, &config](ThreadCtx &ctx) {
            for (std::uint64_t i = 0; i < config.inserts_per_thread;
                 ++i) {
                const std::uint64_t op_id =
                    static_cast<std::uint64_t>(t) *
                        config.inserts_per_thread + i + 1;
                const auto payload =
                    makePayload(op_id, config.entry_bytes);
                queue->insert(ctx, t, payload.data(),
                              config.entry_bytes, op_id);
            }
        });
    }
    engine.run(workers);
    surface.invariant =
        makeDetectAndDiscardInvariant(queue->layout(), queue->golden());
    return surface;
}

Surface
logSurface(const std::string &name, bool omit_order_annotations)
{
    LogOptions options;
    options.capacity = 1 << 16;
    options.use_strands = true;
    options.omit_order_annotations = omit_order_annotations;

    Surface surface;
    surface.name = name;
    surface.model = ModelConfig::strand();

    EngineConfig engine_config;
    engine_config.seed = 11;
    engine_config.quantum = 4;
    ExecutionEngine engine(engine_config, &surface.trace);
    auto log = std::make_shared<PersistentLog>();
    engine.runSetup([&](ThreadCtx &ctx) {
        *log = PersistentLog::create(ctx, options, 2);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 2; ++t) {
        workers.push_back([log, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= 16; ++i) {
                const auto payload = logBytes(t * 100 + i, 20);
                log->append(ctx, t, payload.data(), payload.size());
            }
        });
    }
    engine.run(workers);
    surface.invariant =
        makeLogRecoveryInvariant(log->layout(), log->goldenRecords());
    return surface;
}

Surface
kvSurface(const std::string &name, KvUpdateStrategy strategy,
          bool omit_publish_barrier)
{
    KvWorkloadConfig config;
    config.store.buckets = 128;
    config.store.heap_bytes = 1 << 15;
    config.store.log_capacity = 1 << 17;
    config.store.strategy = strategy;
    config.store.omit_publish_barrier = omit_publish_barrier;
    config.store.use_strands = !omit_publish_barrier;
    config.threads = 2;
    config.ops_per_thread = 48;
    config.key_space = 32;
    config.put_ratio = 0.6;
    config.get_ratio = 0.2;
    config.seed = 27;

    Surface surface;
    surface.name = name;
    surface.model = ModelConfig::epoch();
    surface.stats = std::make_shared<KvInvariantStats>();

    // runKvWorkload owns its engine; move the trace out afterwards.
    KvWorkloadResult result = runKvWorkload(config);
    surface.trace = std::move(result.trace);

    KvRecoveryOptions options;
    if (omit_publish_barrier) {
        // The mutant runs under Strict so the campaign reports its
        // mid-publish crash states as violations.
        options.mode = KvRecoveryMode::Strict;
    } else {
        options.mode = KvRecoveryMode::Repair;
        options.journal = result.journal;
    }
    surface.invariant = makeKvRecoveryInvariant(
        result.layout, result.golden, options, surface.stats);
    return surface;
}

Surface
routerSurface(const std::string &name, KvUpdateStrategy strategy,
              bool migrate, bool mutant)
{
    KvRouterWorkloadConfig config;
    config.router.shards = 2;
    config.router.partitions = 8;
    config.router.max_txns = 512;
    config.router.group_log_capacity = 1 << 16;
    config.router.store.buckets = 128;
    config.router.store.heap_bytes = 1 << 15;
    config.router.store.max_value_bytes = 64;
    config.router.store.log_capacity = 1 << 17;
    config.router.store.strategy = strategy;
    config.router.omit_commit_barrier = mutant;
    config.router.store.omit_publish_barrier = mutant;
    config.threads = 2;
    config.ops_per_thread = 48;
    config.key_space = 32;
    config.txn_ratio = 0.35;
    config.snapshot_ratio = 0.05;
    config.put_ratio = 0.35;
    config.get_ratio = 0.15;
    config.migrate_every = migrate ? 10 : 0;
    config.max_value_bytes = 48;
    config.seed = 27;

    Surface surface;
    surface.name = name;
    // Strand: the widest model — the commit protocol's conflict
    // re-reads and barriers are exactly what must hold it together.
    surface.model = ModelConfig::strand();
    surface.router_stats = std::make_shared<KvRouterInvariantStats>();

    KvRouterWorkloadResult result = runKvRouterWorkload(config);
    surface.trace = std::move(result.trace);

    KvGroupRecoveryOptions options;
    // The mutant runs under Repair (no uncommitted scrub) so its
    // partially visible transactions surface as violations instead
    // of being rolled back.
    options.mode = mutant ? KvRecoveryMode::Repair
                          : KvRecoveryMode::TxnResolve;
    surface.invariant = makeKvRouterInvariant(
        result.layout, result.golden, result.txn_golden, options,
        surface.router_stats);
    return surface;
}

/** Named fault mixes swept against every surface. */
struct FaultMix
{
    std::string name;
    FaultConfig faults;
};

std::vector<FaultMix>
faultMixes()
{
    std::vector<FaultMix> mixes;
    mixes.push_back({"none", {}});

    FaultConfig torn;
    torn.tear_persists = true;
    torn.atomic_write_unit = 4; // 8-byte persists split in two.
    mixes.push_back({"torn", torn});

    FaultConfig media;
    media.media_error_per_write = 2e-4;
    mixes.push_back({"media", media});

    FaultConfig drops;
    drops.drop_drain_p = 0.5;
    drops.drain_latency = 0.5;
    mixes.push_back({"drops", drops});

    FaultConfig all = torn;
    all.media_error_per_write = media.media_error_per_write;
    all.drop_drain_p = drops.drop_drain_p;
    all.drain_latency = drops.drain_latency;
    mixes.push_back({"all", all});
    return mixes;
}

FaultCampaignConfig
campaignFor(const Surface &surface, const FaultMix &mix,
            std::uint32_t jobs)
{
    FaultCampaignConfig config;
    config.injection.model = surface.model;
    config.injection.realizations = 6;
    config.injection.crashes_per_realization = 48;
    config.injection.seed = 17;
    config.injection.jobs = jobs;
    config.injection.max_recorded_violations = 4;
    config.faults = mix.faults;
    return config;
}

int
replay(const std::vector<Surface> &surfaces, const std::string &line,
       std::uint32_t jobs)
{
    FaultRepro repro;
    if (!parseFaultRepro(line, repro)) {
        std::cerr << "no 'seed=... crash=... fault_seed=...' triple "
                  << "in --replay argument\n";
        return 2;
    }
    // The repro line leads with "<surface>/<mix>".
    const std::string tag = line.substr(0, line.find(' '));
    const std::size_t slash = tag.find('/');
    const std::string surface_name = tag.substr(0, slash);
    const std::string mix_name =
        slash == std::string::npos ? "none" : tag.substr(slash + 1);
    for (const Surface &surface : surfaces) {
        if (surface.name != surface_name)
            continue;
        for (const FaultMix &mix : faultMixes()) {
            if (mix.name != mix_name)
                continue;
            const auto config = campaignFor(surface, mix, jobs);
            FaultOutcome outcome;
            const std::string verdict = replayFaultRepro(
                surface.trace, config, repro, surface.invariant,
                &outcome);
            std::cout << "replay " << tag << " "
                      << formatFaultRepro(repro) << "\n  faults: "
                      << outcome.summary() << "\n  verdict: "
                      << (verdict.empty() ? "ok" : verdict) << "\n";
            return verdict.empty() ? 0 : 1;
        }
    }
    std::cerr << "unknown surface/mix tag '" << tag << "'\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t jobs = 1;
    std::string replay_line;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) == 0) {
            jobs = static_cast<std::uint32_t>(
                std::stoul(arg.substr(7)));
        } else if (arg.rfind("--replay=", 0) == 0) {
            replay_line = arg.substr(9);
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--jobs=N] [--replay=\"<repro line>\"]\n";
            return 2;
        }
    }

    std::vector<Surface> surfaces;
    surfaces.push_back(queueSurface("cwl-queue", false));
    surfaces.push_back(queueSurface("queue-nobar", true));
    surfaces.push_back(logSurface("log", false));
    surfaces.push_back(logSurface("log-unordered", true));
    surfaces.push_back(
        kvSurface("kv-inplace", KvUpdateStrategy::InPlace, false));
    surfaces.push_back(kvSurface("kv-cow", KvUpdateStrategy::Cow, false));
    surfaces.push_back(
        kvSurface("kv-log", KvUpdateStrategy::LogStructured, false));
    surfaces.push_back(
        kvSurface("kv-nobar", KvUpdateStrategy::Cow, true));
    surfaces.push_back(routerSurface(
        "kv-txn-inplace", KvUpdateStrategy::InPlace, false, false));
    surfaces.push_back(routerSurface(
        "kv-txn-cow", KvUpdateStrategy::Cow, false, false));
    surfaces.push_back(routerSurface(
        "kv-txn-log", KvUpdateStrategy::LogStructured, false, false));
    surfaces.push_back(routerSurface(
        "kv-migrate-inplace", KvUpdateStrategy::InPlace, true, false));
    surfaces.push_back(routerSurface(
        "kv-migrate-cow", KvUpdateStrategy::Cow, true, false));
    surfaces.push_back(routerSurface(
        "kv-migrate-log", KvUpdateStrategy::LogStructured, true, false));
    surfaces.push_back(routerSurface(
        "kv-txn-nobar", KvUpdateStrategy::Cow, false, true));

    if (!replay_line.empty())
        return replay(surfaces, replay_line, jobs);

    banner("Device-fault injection campaign",
           "recovery code that survives only clean crashes has not "
           "been tested; torn persists, media wear, and lost drain "
           "buffers break the observer's perfect-device assumption");

    Stopwatch watch;
    std::uint64_t total_samples = 0;
    TextTable table;
    table.header({"surface", "model", "faults", "samples",
                  "violations", "rate", "quarantined", "repaired"});
    std::vector<std::string> repro_lines;
    for (const Surface &surface : surfaces) {
        for (const FaultMix &mix : faultMixes()) {
            const auto config = campaignFor(surface, mix, jobs);
            // KV stats accumulate across runs; report per-mix deltas.
            const KvInvariantStats *kv_stats =
                surface.stats ? surface.stats.get()
                              : surface.router_stats
                                    ? &surface.router_stats->shard
                                    : nullptr;
            const std::uint64_t quarantined_before =
                kv_stats ? kv_stats->quarantined.load() : 0;
            const std::uint64_t repaired_before =
                kv_stats ? kv_stats->repaired.load() : 0;
            const InjectionResult result = runFaultCampaign(
                surface.trace, config, surface.invariant);
            total_samples += result.samples;
            char rate[32];
            std::snprintf(rate, sizeof(rate), "%.1f%%",
                          100.0 * static_cast<double>(result.violations) /
                              static_cast<double>(result.samples));
            const std::string quarantined =
                kv_stats
                    ? std::to_string(kv_stats->quarantined.load() -
                                     quarantined_before)
                    : "-";
            const std::string repaired =
                kv_stats
                    ? std::to_string(kv_stats->repaired.load() -
                                     repaired_before)
                    : "-";
            table.row({surface.name, surface.model.name(), mix.name,
                       std::to_string(result.samples),
                       std::to_string(result.violations), rate,
                       quarantined, repaired});
            for (const ViolationRecord &violation :
                 result.violation_list) {
                repro_lines.push_back(surface.name + "/" + mix.name +
                                      " " + violationRepro(violation));
            }
        }
    }
    std::cout << table.render();

    std::cout << "\nExpected shape: the hardened surfaces (cwl-queue, "
              << "log) stay at 0% under 'torn' — tearing is exactly "
              << "what the checksums absorb — while the barrier-"
              << "elision mutants fail under it; media errors and "
              << "dropped drains are unrecoverable data loss for any "
              << "pointer-less protocol and show up as nonzero rates "
              << "everywhere. The kv-* surfaces stay at 0% under every "
              << "mix: the recovery ladder turns device faults into "
              << "quarantined (and, for kv-log, repaired) buckets "
              << "instead of wrong answers, while kv-nobar's Strict "
              << "recovery catches the elided publish barrier. The "
              << "kv-txn-* and kv-migrate-* surfaces stay at 0% under "
              << "every mix too: TxnResolve rolls committed "
              << "transactions forward from their staged records, "
              << "rolls uncommitted ones back, and recovers every "
              << "partition to exactly one owner — whereas "
              << "kv-txn-nobar's missing commit barrier lets applies "
              << "race the commit record, and the Repair-tier "
              << "invariant reports the torn transactions it leaves "
              << "behind.\n";

    if (!repro_lines.empty()) {
        std::cout << "\nviolation repros (re-run with "
                  << "--replay=\"<line>\"):\n";
        for (const std::string &line : repro_lines)
            std::cout << "  " << line << "\n";
    }

    std::cout << "\ncampaign: " << total_samples << " crash states in "
              << watch.seconds() << " s wall (--jobs="
              << effectiveJobs(jobs) << ")\n";
    return 0;
}
