/**
 * @file
 * Compiled-trace artifact tool: compile .trc traces into .ctc
 * micro-op artifacts, pack/unpack the .ctp cold-storage encoding,
 * and verify the whole chain end to end.
 *
 * Subcommands:
 *
 *   trace_pack compile <in.trc> <out.ctc> [--model=NAME] [--jobs=N]
 *       Segment-prep <in.trc> once under NAME's compile spec
 *       (default epoch; strict/epoch/strand share one spec) and
 *       persist the SoA micro-op columns as a .ctc artifact.
 *
 *   trace_pack pack <in.ctc> <out.ctp>
 *       Delta/varint-pack an artifact for cold storage.
 *
 *   trace_pack unpack <in.ctp> <out.ctc>
 *       Expand a packed artifact back to the mmap-able layout.
 *
 *   trace_pack verify [--jobs=N] [--golden-dir=DIR]
 *       Round-trip battery: for each golden fixture plus a seeded 1M
 *       synthetic trace, compile -> pack -> unpack -> replay and
 *       assert the TimingResult is bit-identical to interpreted
 *       replay under every model (strict/epoch/strand/px86), then
 *       report the .trc -> .ctc -> .ctp compression ratios. Exits
 *       nonzero on any mismatch.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench_util/synthetic_trace.hh"
#include "bench_util/table.hh"
#include "memtrace/compiled_trace.hh"
#include "memtrace/trace_io.hh"
#include "persistency/compiled_replay.hh"
#include "persistency/segment_compile.hh"

using namespace persim;
using namespace persim::bench;

namespace {

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " <subcommand> ...\n"
        << "  compile <in.trc> <out.ctc> [--model=NAME] [--jobs=N]\n"
        << "  pack <in.ctc> <out.ctp>\n"
        << "  unpack <in.ctp> <out.ctc>\n"
        << "  verify [--jobs=N] [--golden-dir=DIR]\n"
        << "models: strict|epoch|strand|bpfs|px86 (spec default: "
           "epoch)\n";
    return 2;
}

/** --flag=value parsing helper: empty when @p arg is not @p name. */
std::string
flagValue(const std::string &arg, const char *name)
{
    const std::string prefix = std::string(name) + "=";
    return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                     : std::string();
}

std::uint64_t
fileBytes(const std::string &path)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

int
cmdCompile(const std::vector<std::string> &args)
{
    if (args.size() < 2)
        return 2;
    TimingConfig config;
    config.model = ModelConfig::epoch();
    std::uint32_t jobs = 1;
    for (std::size_t i = 2; i < args.size(); ++i) {
        if (!flagValue(args[i], "--model").empty())
            config.model = modelByName(flagValue(args[i], "--model"));
        else if (!flagValue(args[i], "--jobs").empty())
            jobs = static_cast<std::uint32_t>(
                std::stoul(flagValue(args[i], "--jobs")));
        else
            return 2;
    }
    MmapTraceReader reader(args[0]);
    const auto events = reader.events();
    const CompiledTrace trace = compileTrace(
        events.data(), events.size(), config, effectiveJobs(jobs));
    writeCompiledTrace(args[1], trace);
    std::cout << args[0] << " (" << events.size() << " events, "
              << fileBytes(args[0]) << " B) -> " << args[1] << " ("
              << trace.view().micro_ops << " micro-ops, "
              << fileBytes(args[1]) << " B)\n";
    return 0;
}

int
cmdPack(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        return 2;
    MmapCompiledTrace artifact(args[0], kMaxMicroOpKind);
    writePackedTrace(args[1], artifact.view());
    const std::uint64_t in_bytes = fileBytes(args[0]);
    const std::uint64_t out_bytes = fileBytes(args[1]);
    std::printf("%s (%llu B) -> %s (%llu B), %.2fx smaller\n",
                args[0].c_str(), (unsigned long long)in_bytes,
                args[1].c_str(), (unsigned long long)out_bytes,
                out_bytes > 0
                    ? double(in_bytes) / double(out_bytes)
                    : 0.0);
    return 0;
}

int
cmdUnpack(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        return 2;
    const CompiledTrace trace = readPackedTrace(args[0]);
    writeCompiledTrace(args[1], trace);
    std::cout << args[0] << " (" << fileBytes(args[0]) << " B) -> "
              << args[1] << " (" << trace.view().micro_ops
              << " micro-ops, " << fileBytes(args[1]) << " B)\n";
    return 0;
}

bool
sameResult(const TimingResult &a, const TimingResult &b)
{
    return a.critical_path == b.critical_path &&
        a.persists == b.persists && a.coalesced == b.coalesced &&
        a.window_blocked == b.window_blocked && a.races == b.races &&
        a.ops == b.ops && a.events == b.events &&
        a.barriers == b.barriers && a.strands == b.strands &&
        a.flushes == b.flushes && a.fences == b.fences &&
        a.unflushed == b.unflushed;
}

/** One verify input: a name and its events (owned or mapped). */
struct VerifyTrace
{
    std::string name;
    std::vector<TraceEvent> events;
};

int
cmdVerify(const std::vector<std::string> &args)
{
    std::uint32_t jobs = 1;
    std::string golden_dir = "tests/persistency/golden";
    for (const std::string &arg : args) {
        if (!flagValue(arg, "--jobs").empty())
            jobs = static_cast<std::uint32_t>(
                std::stoul(flagValue(arg, "--jobs")));
        else if (!flagValue(arg, "--golden-dir").empty())
            golden_dir = flagValue(arg, "--golden-dir");
        else
            return 2;
    }

    std::vector<VerifyTrace> inputs;
    for (const char *name : {"cwl1", "mixed", "strand1", "tlc2"}) {
        const std::string path =
            golden_dir + "/" + name + ".trc";
        if (!std::filesystem::exists(path)) {
            std::cerr << "missing golden fixture " << path
                      << " (pass --golden-dir=DIR)\n";
            return 2;
        }
        MmapTraceReader reader(path);
        const auto view = reader.events();
        inputs.push_back(
            {name, std::vector<TraceEvent>(view.begin(), view.end())});
    }
    {
        SyntheticTraceConfig synth;
        InMemoryTrace trace = buildSyntheticTrace(synth);
        inputs.push_back({"synthetic1M",
                          std::vector<TraceEvent>(
                              trace.events().begin(),
                              trace.events().end())});
    }

    const std::vector<ModelConfig> models{
        ModelConfig::strict(), ModelConfig::epoch(),
        ModelConfig::strand(), ModelConfig::px86()};

    TextTable table;
    table.header({"trace", "events", "trc(B)", "ctc(B)", "ctp(B)",
                  "ctc/ctp", "models", "round-trip"});
    bool all_ok = true;
    for (const VerifyTrace &input : inputs) {
        const std::uint64_t trc_bytes =
            input.events.size() * sizeof(TraceEvent);
        std::uint64_t ctc_bytes = 0, ctp_bytes = 0;
        bool ok = true;
        for (const ModelConfig &model : models) {
            TimingConfig config;
            config.model = model;

            PersistTimingEngine engine(config);
            engine.onBatch(input.events.data(), input.events.size());
            engine.onFinish();
            const TimingResult want = engine.result();

            // The full chain under test: compile -> pack -> unpack
            // -> replay. The unpacked artifact must execute to the
            // same TimingResult bit for bit.
            const CompiledTrace compiled =
                compileTrace(input.events.data(), input.events.size(),
                             config, effectiveJobs(jobs));
            const std::vector<std::uint8_t> packed =
                packCompiledTrace(compiled.view());
            CompiledTrace unpacked =
                unpackCompiledTrace(packed.data(), packed.size());
            const CompiledTraceHandle handle =
                CompiledTraceHandle::fromMemory(std::move(unpacked));
            const TimingResult got =
                compiledReplay(handle.view(), config);

            // .ctc size = header + 64B-aligned columns; measure via a
            // real write once per trace (specs share column bytes).
            if (ctc_bytes == 0) {
                const std::string tmp =
                    tempTracePath("trace_pack_verify") + ".ctc";
                writeCompiledTrace(tmp, compiled);
                ctc_bytes = fileBytes(tmp);
                std::remove(tmp.c_str());
                ctp_bytes = packed.size();
            }
            if (!sameResult(want, got)) {
                std::cerr << "VERIFY FAIL: " << input.name << " under "
                          << model.name()
                          << ": compiled round-trip diverged from "
                             "interpreted replay (critical path "
                          << got.critical_path << " vs "
                          << want.critical_path << ", persists "
                          << got.persists << " vs " << want.persists
                          << ")\n";
                ok = false;
            }
        }
        all_ok = all_ok && ok;
        table.row({input.name, std::to_string(input.events.size()),
                   std::to_string(trc_bytes),
                   std::to_string(ctc_bytes),
                   std::to_string(ctp_bytes),
                   formatDouble(ctp_bytes > 0 ? double(ctc_bytes) /
                                        double(ctp_bytes)
                                              : 0.0,
                                2),
                   std::to_string(models.size()),
                   ok ? "bit-identical" : "MISMATCH"});
    }
    std::cout << table.render();
    std::cout << (all_ok ? "verify: all round-trips bit-identical\n"
                         : "verify: FAILED\n");
    return all_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    int rc = 2;
    if (cmd == "compile")
        rc = cmdCompile(args);
    else if (cmd == "pack")
        rc = cmdPack(args);
    else if (cmd == "unpack")
        rc = cmdUnpack(args);
    else if (cmd == "verify")
        rc = cmdVerify(args);
    if (rc == 2)
        return usage(argv[0]);
    return rc;
}
