/**
 * @file
 * Methodology companion: native instruction execution rate of the
 * volatile-optimized queues (paper Section 7 measured this on a Xeon
 * E5645; we measure on the current host). These are the
 * denominators used to normalize Table 1.
 */

#include <iostream>

#include "bench_util/table.hh"
#include "queue/native_queue.hh"

using namespace persim;

int
main()
{
    std::cout <<
        "================================================================\n"
        "Native instruction execution rate (volatile-optimized queues)\n"
        "================================================================\n"
        "Note: this host schedules all threads on its available cores;\n"
        "CWL is lock-serialized, so its rate is roughly flat in thread\n"
        "count on any machine.\n\n";

    TextTable table;
    table.header({"queue", "threads", "inserts/s"});
    for (const auto kind :
         {QueueKind::CopyWhileLocked, QueueKind::TwoLockConcurrent}) {
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
            const double rate = measureNativeInsertRate(
                kind, threads, 400000 / threads, 100);
            table.row({queueKindName(kind), std::to_string(threads),
                       formatRate(rate)});
        }
    }
    std::cout << table.render();
    return 0;
}
