/**
 * @file
 * Figure 5: persist ordering critical path per insert vs. dependence
 * tracking granularity (8..256 bytes), Copy While Locked, one thread.
 *
 * Paper shape: with fine tracking, epoch persistency's path is far
 * below strict's; as tracking coarsens, persistent false sharing
 * reintroduces the constraints epoch persistency removed and the two
 * converge by 256 bytes. Strict persistency is insensitive (its
 * persists are already serialized).
 *
 * The 12 analyses run through granularitySweep: serial single-pass by
 * default, one engine replay per task with --jobs=N, --stream
 * replays them from an on-disk trace file in batched chunks, and
 * --mmap replays them from a zero-copy mapped view of that file.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench_util/table.hh"
#include "memtrace/trace_io.hh"
#include "persistency/sweep.hh"

using namespace persim;
using namespace persim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = parseBenchOptions(argc, argv);
    banner("Figure 5: critical path per insert vs. dependence tracking "
           "granularity (Copy While Locked, 1 thread)",
           "epoch rises with coarser tracking (persistent false "
           "sharing) toward strict; strict stays flat");

    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Conservative;
    config.threads = 1;
    config.inserts_per_thread = 20000;

    const std::vector<std::uint64_t> grans{8, 16, 32, 64, 128, 256};
    std::vector<ModelConfig> models{ModelConfig::strict(),
                                    ModelConfig::epoch()};
    // --model rows ride the same sweep; their points land in the
    // timing table and the fig5/<model>/tN report keys.
    for (const ModelConfig &model :
         extraModels(options, {"strict", "epoch"}))
        models.push_back(model);
    SweepOptions sweep;
    sweep.jobs = options.jobs;
    sweep.chunk_events = options.chunk_events;
    sweep.mmap = options.mmap;
    sweep.compiled = options.compiled;
    sweep.compile_cache = options.compile_cache;

    std::vector<SweepSeries> series;
    double analysis_wall = 0.0;
    if (options.stream || options.mmap) {
        const std::string path = tempTracePath("fig5");
        {
            TraceFileWriter writer(path);
            runQueueWorkload(config, {&writer});
            writer.onFinish();
        }
        Stopwatch watch;
        series = granularitySweepFile(path, models, grans,
                                      GranularityKnob::Tracking, sweep);
        analysis_wall = watch.seconds();
        std::remove(path.c_str());
    } else {
        InMemoryTrace trace;
        runQueueWorkload(config, {&trace});
        Stopwatch watch;
        series = granularitySweep(trace, models, grans,
                                  GranularityKnob::Tracking, sweep);
        analysis_wall = watch.seconds();
    }
    const SweepSeries &strict = series[0];
    const SweepSeries &epoch = series[1];

    TextTable table;
    table.header({"tracking (B)", "strict cp/insert", "epoch cp/insert",
                  "epoch/strict"});
    for (std::size_t i = 0; i < grans.size(); ++i) {
        const TimingResult &s = strict.points[i].result;
        const TimingResult &e = epoch.points[i].result;
        table.row({
            std::to_string(grans[i]),
            formatDouble(s.criticalPathPerOp(), 3),
            formatDouble(e.criticalPathPerOp(), 3),
            formatDouble(e.critical_path / s.critical_path, 3),
        });
    }
    std::cout << "\n" << table.render();

    TextTable timing;
    timing.header({"model", "tracking(B)", "wall(s)", "events/s"});
    std::uint64_t events_analyzed = 0;
    BenchReport report;
    for (const SweepSeries &entry : series) {
        for (const SweepPoint &point : entry.points) {
            events_analyzed += point.result.events;
            timing.row({entry.model.name(),
                        std::to_string(point.value),
                        formatDouble(point.wall_seconds, 4),
                        formatEventsPerSec(point.result.events,
                                           point.wall_seconds)});
            report.add("fig5/" + entry.model.name() + "/t" +
                           std::to_string(point.value),
                       point.result.events, point.wall_seconds);
        }
    }
    std::cout << "\nPer-analysis wall time"
              << (options.stream ? " (streaming)" : "") << ":\n"
              << timing.render() << "\n";
    reportAnalysisWall(grans.size() * models.size(), events_analyzed,
                       analysis_wall, options.jobs);
    writeBenchReport(report, options);
    return 0;
}
