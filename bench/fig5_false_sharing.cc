/**
 * @file
 * Figure 5: persist ordering critical path per insert vs. dependence
 * tracking granularity (8..256 bytes), Copy While Locked, one thread.
 *
 * Paper shape: with fine tracking, epoch persistency's path is far
 * below strict's; as tracking coarsens, persistent false sharing
 * reintroduces the constraints epoch persistency removed and the two
 * converge by 256 bytes. Strict persistency is insensitive (its
 * persists are already serialized).
 */

#include "bench/bench_common.hh"
#include "bench_util/table.hh"

using namespace persim;
using namespace persim::bench;

int
main()
{
    banner("Figure 5: critical path per insert vs. dependence tracking "
           "granularity (Copy While Locked, 1 thread)",
           "epoch rises with coarser tracking (persistent false "
           "sharing) toward strict; strict stays flat");

    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Conservative;
    config.threads = 1;
    config.inserts_per_thread = 20000;

    std::vector<std::unique_ptr<PersistTimingEngine>> engines;
    std::vector<PersistTimingEngine *> sinks;
    const std::vector<std::uint64_t> grans{8, 16, 32, 64, 128, 256};
    for (const auto gran : grans) {
        for (auto model : {ModelConfig::strict(), ModelConfig::epoch()}) {
            model.tracking_granularity = gran;
            engines.push_back(
                std::make_unique<PersistTimingEngine>(levels(model)));
            sinks.push_back(engines.back().get());
        }
    }
    runInto(config, sinks);

    TextTable table;
    table.header({"tracking (B)", "strict cp/insert", "epoch cp/insert",
                  "epoch/strict"});
    for (std::size_t i = 0; i < grans.size(); ++i) {
        const auto &strict = engines[2 * i]->result();
        const auto &epoch = engines[2 * i + 1]->result();
        table.row({
            std::to_string(grans[i]),
            formatDouble(strict.criticalPathPerOp(), 3),
            formatDouble(epoch.criticalPathPerOp(), 3),
            formatDouble(epoch.critical_path / strict.critical_path, 3),
        });
    }
    std::cout << "\n" << table.render();
    return 0;
}
