/**
 * @file
 * Bounded exhaustive schedule & crash-state exploration driver.
 *
 * Runs the explorer (src/explore/) over the Figure 1 publish litmus
 * or a bounded queue workload and reports coverage plus any
 * counterexample. Examples:
 *
 *   explore_litmus --model=epoch --threads=2
 *   explore_litmus --program=litmus --no-consumer-barrier
 *   explore_litmus --program=queue --no-publish-barrier --shards=4
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/error.hh"
#include "explore/explore.hh"
#include "explore/programs.hh"

using namespace persim;

namespace {

struct Options
{
    std::string program = "litmus";
    std::string model = "epoch";
    std::uint32_t threads = 2;
    std::uint32_t inserts = 1;
    std::string kind = "2lc";
    bool consumer_barrier = true;
    bool publish_barrier = true;
    std::uint64_t max_depth = 64;
    std::uint64_t max_executions = 4096;
    std::uint64_t max_cuts = 1ULL << 16;
    std::uint64_t samples = 256;
    std::uint32_t shards = 1;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " [--program=litmus|queue]\n"
        << "  --model=strict|epoch|strand   persistency model (litmus)\n"
        << "  --threads=N                   queue inserter threads\n"
        << "  --inserts=N                   inserts per thread\n"
        << "  --kind=cwl|2lc                queue design\n"
        << "  --no-consumer-barrier         drop the litmus consumer "
           "barrier\n"
        << "  --no-publish-barrier          drop the 2LC publish "
           "barrier\n"
        << "  --max-depth=N --max-executions=N --max-cuts=N\n"
        << "  --samples=N --shards=N\n";
    std::exit(2);
}

bool
eatFlag(const std::string &arg, const char *name, std::string &value)
{
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

Options
parse(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--no-consumer-barrier")
            options.consumer_barrier = false;
        else if (arg == "--no-publish-barrier")
            options.publish_barrier = false;
        else if (eatFlag(arg, "--program", value))
            options.program = value;
        else if (eatFlag(arg, "--model", value))
            options.model = value;
        else if (eatFlag(arg, "--kind", value))
            options.kind = value;
        else if (eatFlag(arg, "--threads", value))
            options.threads = std::stoul(value);
        else if (eatFlag(arg, "--inserts", value))
            options.inserts = std::stoul(value);
        else if (eatFlag(arg, "--max-depth", value))
            options.max_depth = std::stoull(value);
        else if (eatFlag(arg, "--max-executions", value))
            options.max_executions = std::stoull(value);
        else if (eatFlag(arg, "--max-cuts", value))
            options.max_cuts = std::stoull(value);
        else if (eatFlag(arg, "--samples", value))
            options.samples = std::stoull(value);
        else if (eatFlag(arg, "--shards", value))
            options.shards = std::stoul(value);
        else
            usage(argv[0]);
    }
    return options;
}

ModelConfig
modelFor(const std::string &name)
{
    if (name == "strict")
        return ModelConfig::strict();
    if (name == "epoch")
        return ModelConfig::epoch();
    if (name == "strand")
        return ModelConfig::strand();
    std::cerr << "unknown model: " << name << "\n";
    std::exit(2);
}

} // namespace

int
runExploration(const Options &options, const char *argv0)
{
    ExploreConfig config;
    config.max_depth = options.max_depth;
    config.max_executions = options.max_executions;
    config.max_cuts = options.max_cuts;
    config.samples = options.samples;
    config.shards = options.shards;

    ProgramFactory factory;
    if (options.program == "litmus") {
        config.model = modelFor(options.model);
        factory = publishLitmusProgram(options.consumer_barrier);
        std::cout << "program: Figure 1 publish litmus (consumer barrier "
                  << (options.consumer_barrier ? "on" : "OFF")
                  << ", model " << config.model.name() << ")\n";
    } else if (options.program == "queue") {
        config.model = queueExploreModel();
        QueueExploreOptions queue;
        queue.kind = options.kind == "cwl" ? QueueKind::CopyWhileLocked
                                           : QueueKind::TwoLockConcurrent;
        queue.threads = options.threads;
        queue.inserts_per_thread = options.inserts;
        queue.queue.barrier_before_publish = options.publish_barrier;
        factory = queueProgram(queue);
        std::cout << "program: " << queueKindName(queue.kind) << " queue, "
                  << options.threads << " threads x " << options.inserts
                  << " inserts (publish barrier "
                  << (options.publish_barrier ? "on" : "OFF") << ")\n";
    } else {
        usage(argv0);
    }

    Explorer explorer(factory, config);
    const ExploreResult result = explorer.run();
    std::cout << result.summary() << "\n";
    if (result.counterexample) {
        std::cout << "\n" << result.counterexample->format() << "\n";
        return 1;
    }
    std::cout << (result.exhaustive()
                      ? "invariant holds on every schedule and crash state "
                        "within bounds\n"
                      : "no violation found within budget\n");
    return 0;
}

int
main(int argc, char **argv)
{
    const Options options = parse(argc, argv);
    try {
        return runExploration(options, argv[0]);
    } catch (const Error &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 2;
    }
}
