/**
 * @file
 * Google-benchmark microbenchmarks of the library primitives: traced
 * execution, timing analysis, locks, memory image, allocator, and
 * trace serialization. These gate the framework's own overheads (the
 * paper's methodology requires tracing not to distort workloads).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "memtrace/trace_io.hh"
#include "persistency/timing_engine.hh"
#include "queue/payload.hh"
#include "queue/queue.hh"
#include "sim/engine.hh"
#include "sync/locks.hh"

namespace persim {
namespace {

void
BM_MemoryImageStoreLoad(benchmark::State &state)
{
    MemoryImage image;
    Addr addr = volatile_base;
    for (auto _ : state) {
        image.store(addr, 8, addr);
        benchmark::DoNotOptimize(image.load(addr, 8));
        addr = volatile_base + ((addr + 8) % (1 << 20));
    }
}
BENCHMARK(BM_MemoryImageStoreLoad);

void
BM_AllocatorAllocFree(benchmark::State &state)
{
    AddressAllocator alloc(volatile_base, 1ULL << 30);
    for (auto _ : state) {
        const Addr a = alloc.allocate(64);
        alloc.free(a);
    }
}
BENCHMARK(BM_AllocatorAllocFree);

void
BM_SerialEngineStore(benchmark::State &state)
{
    // Cost of one traced store on the single-thread fast path.
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    Addr addr = 0;
    engine.runSetup([&addr](ThreadCtx &ctx) { addr = ctx.pmalloc(8); });
    engine.runSetup([&state, addr](ThreadCtx &ctx) {
        for (auto _ : state)
            ctx.store(addr, 1);
    });
}
BENCHMARK(BM_SerialEngineStore);

void
BM_TimingEngineEventThroughput(benchmark::State &state)
{
    const auto kind = static_cast<ModelKind>(state.range(0));
    ModelConfig model;
    model.kind = kind;
    TimingConfig config;
    config.model = model;
    PersistTimingEngine engine(config);
    TraceEvent event;
    event.kind = EventKind::Store;
    event.size = 8;
    std::uint64_t i = 0;
    for (auto _ : state) {
        event.addr = persistent_base + (i % 4096) * 8;
        event.thread = static_cast<ThreadId>(i % 4);
        event.seq = i++;
        engine.onEvent(event);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_TimingEngineEventThroughput)
    ->Arg(static_cast<int>(ModelKind::Strict))
    ->Arg(static_cast<int>(ModelKind::Epoch))
    ->Arg(static_cast<int>(ModelKind::Strand));

void
BM_McsLockHandoffSimulated(benchmark::State &state)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    engine.runSetup([&state](ThreadCtx &ctx) {
        McsLock lock = McsLock::create(ctx);
        const Addr qnode = McsLock::createQnode(ctx);
        for (auto _ : state) {
            lock.lock(ctx, qnode);
            lock.unlock(ctx, qnode);
        }
    });
}
BENCHMARK(BM_McsLockHandoffSimulated);

void
BM_QueueInsertTraced(benchmark::State &state)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    QueueOptions options;
    options.capacity = 128 * 8;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = CwlQueue::create(ctx, options, 1);
    });
    const auto payload = makePayload(1, 100);
    engine.runSetup([&](ThreadCtx &ctx) {
        std::uint64_t op = 0;
        std::vector<std::uint8_t> out;
        for (auto _ : state) {
            queue->insert(ctx, 0, payload.data(), 100, ++op);
            queue->tryRemove(ctx, 0, out);
        }
    });
}
BENCHMARK(BM_QueueInsertTraced);

void
BM_TraceFileWrite(benchmark::State &state)
{
    const std::string path = "/tmp/persim_bench_trace.trc";
    TraceEvent event;
    event.kind = EventKind::Store;
    event.addr = persistent_base;
    event.size = 8;
    std::uint64_t n = 0;
    for (auto _ : state) {
        state.PauseTiming();
        TraceFileWriter writer(path);
        state.ResumeTiming();
        for (int i = 0; i < 4096; ++i) {
            event.seq = i;
            writer.onEvent(event);
        }
        writer.onFinish();
        n += 4096;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
    std::remove(path.c_str());
}
BENCHMARK(BM_TraceFileWrite);

void
BM_PayloadVerify(benchmark::State &state)
{
    const auto payload = makePayload(7, 100);
    for (auto _ : state)
        benchmark::DoNotOptimize(verifyPayload(payload.data(),
                                               payload.size()));
}
BENCHMARK(BM_PayloadVerify);

} // namespace
} // namespace persim

BENCHMARK_MAIN();
