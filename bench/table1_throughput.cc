/**
 * @file
 * Table 1: persist-bound insert rate normalized to instruction
 * execution rate, for Copy While Locked and Two-Lock Concurrent
 * under Strict / Epoch / Racing Epochs / Strand persistency, with 1
 * and 8 threads, assuming 500 ns persists.
 *
 * Paper shape: strict persistency is persist-bound everywhere (CWL
 * one thread ~ 1/30 of instruction rate); epoch persistency recovers
 * much of it; racing epochs and strand persistency reach or exceed
 * instruction rate (values above 1 mean persists keep up).
 *
 * Instruction rates are measured natively on this host (paper used a
 * Xeon E5645); persist-bound rates come from the trace-driven persist
 * ordering-constraint critical path, exactly as in Section 7.
 */

#include "bench/bench_common.hh"
#include "bench_util/table.hh"
#include "bench_util/throughput.hh"
#include "queue/native_queue.hh"

using namespace persim;
using namespace persim::bench;

namespace {

struct Cell
{
    double normalized = 0.0;
    double critical_path_per_op = 0.0;
};

Cell
analyzeCell(QueueKind kind, const AnalysisVariant &variant,
            std::uint32_t threads, double native_rate)
{
    QueueWorkloadConfig config;
    config.kind = kind;
    config.variant = variant.trace_variant;
    config.threads = threads;
    config.inserts_per_thread = threads == 1 ? 20000 : 2500;
    config.seed = 42;

    PersistTimingEngine engine(levels(variant.model));
    const auto workload = runInto(config, {&engine});

    const auto throughput = makeThroughput(
        native_rate, workload.inserts, engine.result().critical_path,
        paper_latency_ns);
    return {throughput.normalized(),
            engine.result().criticalPathPerOp()};
}

} // namespace

int
main()
{
    banner("Table 1: relaxed persistency performance "
           "(normalized persist-bound insert rate, 500 ns persists)",
           "CWL 1T: strict ~0.03 (30x slowdown), epoch ~0.17, strand "
           "compute-bound (>1); 8T racing epochs and strand exceed 1; "
           "2LC 8T reaches instruction rate under epoch persistency");

    const auto variants = table1Variants();

    for (const auto kind :
         {QueueKind::CopyWhileLocked, QueueKind::TwoLockConcurrent}) {
        TextTable table;
        table.header({"threads", "native(ins/s)", "Strict", "Epoch",
                      "RacingEpochs", "Strand"});
        for (const std::uint32_t threads : {1u, 8u}) {
            const double native = measureNativeInsertRate(
                kind, threads, 400000 / threads, 100);
            std::vector<std::string> row{
                std::to_string(threads), formatRate(native)};
            for (const auto &variant : variants) {
                const Cell cell =
                    analyzeCell(kind, variant, threads, native);
                std::string text = formatDouble(cell.normalized, 3);
                if (cell.normalized >= 1.0)
                    text += " *"; // Compute-bound (paper: bold).
                row.push_back(text);
            }
            table.row(row);
        }
        std::cout << "\n" << queueKindName(kind)
                  << "  (values >= 1, marked *, reach instruction rate)\n"
                  << table.render();
    }

    // Companion detail: the critical path per insert driving each cell.
    std::cout << "\nPersist critical path per insert (levels):\n";
    TextTable detail;
    detail.header({"queue", "threads", "Strict", "Epoch", "RacingEpochs",
                   "Strand"});
    for (const auto kind :
         {QueueKind::CopyWhileLocked, QueueKind::TwoLockConcurrent}) {
        for (const std::uint32_t threads : {1u, 8u}) {
            std::vector<std::string> row{queueKindName(kind),
                                         std::to_string(threads)};
            for (const auto &variant : variants) {
                const Cell cell = analyzeCell(kind, variant, threads, 1.0);
                row.push_back(formatDouble(cell.critical_path_per_op, 3));
            }
            detail.row(row);
        }
    }
    std::cout << detail.render();
    return 0;
}
