/**
 * @file
 * Table 1: persist-bound insert rate normalized to instruction
 * execution rate, for Copy While Locked and Two-Lock Concurrent
 * under Strict / Epoch / Racing Epochs / Strand persistency, with 1
 * and 8 threads, assuming 500 ns persists.
 *
 * Paper shape: strict persistency is persist-bound everywhere (CWL
 * one thread ~ 1/30 of instruction rate); epoch persistency recovers
 * much of it; racing epochs and strand persistency reach or exceed
 * instruction rate (values above 1 mean persists keep up).
 *
 * Instruction rates are measured natively on this host (paper used a
 * Xeon E5645); persist-bound rates come from the trace-driven persist
 * ordering-constraint critical path, exactly as in Section 7.
 */

#include <map>
#include <utility>

#include "bench/bench_common.hh"
#include "bench_util/table.hh"
#include "bench_util/throughput.hh"
#include "common/error.hh"
#include "queue/native_queue.hh"

using namespace persim;
using namespace persim::bench;

namespace {

struct Cell
{
    QueueKind kind = QueueKind::CopyWhileLocked;
    std::uint32_t threads = 1;
    std::size_t variant = 0;
    double native_rate = 0.0;

    double normalized = 0.0;
    double critical_path_per_op = 0.0;
    std::uint64_t events = 0;
    double wall_seconds = 0.0;
};

void
analyzeCell(Cell &cell, const AnalysisVariant &variant,
            const BenchOptions &options, TaskPool &pool)
{
    QueueWorkloadConfig config;
    config.kind = cell.kind;
    config.variant = variant.trace_variant;
    config.threads = cell.threads;
    config.inserts_per_thread = cell.threads == 1 ? 20000 : 2500;
    config.seed = 42;

    // Trace untimed, then time the replay alone (see fig3). At
    // --jobs>1 the replay itself goes segment-parallel on the shared
    // pool, nested inside the per-cell parallelFor.
    InMemoryTrace trace;
    const auto workload = runQueueWorkload(config, {&trace});
    Stopwatch watch;
    const TimingResult result =
        replayForOptions(trace, levels(variant.model), options, pool);
    cell.wall_seconds = watch.seconds();

    const auto throughput = makeThroughput(
        cell.native_rate, workload.inserts, result.critical_path,
        paper_latency_ns);
    cell.normalized = throughput.normalized();
    cell.critical_path_per_op = result.criticalPathPerOp();
    cell.events = result.events;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions options = parseBenchOptions(argc, argv);
    banner("Table 1: relaxed persistency performance "
           "(normalized persist-bound insert rate, 500 ns persists)",
           "CWL 1T: strict ~0.03 (30x slowdown), epoch ~0.17, strand "
           "compute-bound (>1); 8T racing epochs and strand exceed 1; "
           "2LC 8T reaches instruction rate under epoch persistency");

    auto variants = table1Variants();
    // --model columns replay the conservative (epoch-annotated)
    // trace; px86 exercises the canonical barrier compilation.
    for (const ModelConfig &model :
         extraModels(options, {"strict", "epoch", "strand"}))
        variants.push_back(
            {model.name(), AnnotationVariant::Conservative, model});
    const QueueKind kinds[] = {QueueKind::CopyWhileLocked,
                               QueueKind::TwoLockConcurrent};

    // Native rates first, serially: they time real execution and must
    // not share the machine with analysis threads.
    std::map<std::pair<int, std::uint32_t>, double> native;
    for (const auto kind : kinds)
        for (const std::uint32_t threads : {1u, 8u})
            native[{static_cast<int>(kind), threads}] =
                measureNativeInsertRate(kind, threads, 400000 / threads,
                                        100);

    // One trace + analysis per (queue, threads, variant) cell; each
    // cell is independent, so the 16 of them fan out on the pool.
    std::vector<Cell> cells;
    for (const auto kind : kinds)
        for (const std::uint32_t threads : {1u, 8u})
            for (std::size_t v = 0; v < variants.size(); ++v) {
                Cell cell;
                cell.kind = kind;
                cell.threads = threads;
                cell.variant = v;
                cell.native_rate =
                    native[{static_cast<int>(kind), threads}];
                cells.push_back(cell);
            }

    Stopwatch analysis_watch;
    TaskPool pool(options.jobs);
    pool.parallelFor(cells.size(), [&cells, &variants, &options,
                                    &pool](std::size_t i) {
        analyzeCell(cells[i], variants[cells[i].variant], options, pool);
    });
    const double analysis_wall = analysis_watch.seconds();

    auto cellFor = [&](QueueKind kind, std::uint32_t threads,
                       std::size_t variant) -> const Cell & {
        for (const Cell &cell : cells)
            if (cell.kind == kind && cell.threads == threads &&
                cell.variant == variant)
                return cell;
        PERSIM_PANIC("missing table1 cell");
    };

    std::vector<std::string> variant_names;
    for (const auto &variant : variants)
        variant_names.push_back(variant.name);

    for (const auto kind : kinds) {
        TextTable table;
        std::vector<std::string> header{"threads", "native(ins/s)"};
        header.insert(header.end(), variant_names.begin(),
                      variant_names.end());
        table.header(header);
        for (const std::uint32_t threads : {1u, 8u}) {
            std::vector<std::string> row{
                std::to_string(threads),
                formatRate(native[{static_cast<int>(kind), threads}])};
            for (std::size_t v = 0; v < variants.size(); ++v) {
                const Cell &cell = cellFor(kind, threads, v);
                std::string text = formatDouble(cell.normalized, 3);
                if (cell.normalized >= 1.0)
                    text += " *"; // Compute-bound (paper: bold).
                row.push_back(text);
            }
            table.row(row);
        }
        std::cout << "\n" << queueKindName(kind)
                  << "  (values >= 1, marked *, reach instruction rate)\n"
                  << table.render();
    }

    // Companion detail: the critical path per insert driving each
    // cell, plus the per-analysis wall time and events/sec.
    std::cout << "\nPersist critical path per insert (levels):\n";
    TextTable detail;
    std::vector<std::string> detail_header{"queue", "threads"};
    detail_header.insert(detail_header.end(), variant_names.begin(),
                         variant_names.end());
    detail.header(detail_header);
    for (const auto kind : kinds) {
        for (const std::uint32_t threads : {1u, 8u}) {
            std::vector<std::string> row{queueKindName(kind),
                                         std::to_string(threads)};
            for (std::size_t v = 0; v < variants.size(); ++v)
                row.push_back(formatDouble(
                    cellFor(kind, threads, v).critical_path_per_op, 3));
            detail.row(row);
        }
    }
    std::cout << detail.render();

    std::cout << "\nPer-analysis wall time (replay only; tracing "
                 "untimed):\n";
    TextTable timing;
    timing.header({"queue", "threads", "variant", "events", "wall(s)",
                   "events/s"});
    std::uint64_t events_analyzed = 0;
    BenchReport report;
    for (const Cell &cell : cells) {
        events_analyzed += cell.events;
        timing.row({queueKindName(cell.kind),
                    std::to_string(cell.threads),
                    variants[cell.variant].name,
                    std::to_string(cell.events),
                    formatDouble(cell.wall_seconds, 4),
                    formatEventsPerSec(cell.events, cell.wall_seconds)});
        const std::string queue =
            cell.kind == QueueKind::CopyWhileLocked ? "cwl" : "2lc";
        report.add("table1/" + queue + "/" +
                       std::to_string(cell.threads) + "t/" +
                       variants[cell.variant].name,
                   cell.events, cell.wall_seconds);
    }
    std::cout << timing.render() << "\n";
    reportAnalysisWall(cells.size(), events_analyzed, analysis_wall,
                       options.jobs);
    writeBenchReport(report, options);
    return 0;
}
