/**
 * @file
 * Ablation: persist concurrency across durability protocols.
 *
 * Three recoverable structures with three different commit protocols,
 * all under the same models, per operation:
 *
 *  - queue (pointer-publish): data persists, barrier, head persist;
 *  - hash map (publish flag + atomic in-place updates): insert needs
 *    one barrier, updates and erases need none at all (strong persist
 *    atomicity versions single cells);
 *  - checksummed log: appends need no barrier for integrity, one
 *    ordering annotation for bounded loss.
 *
 * The table reports persist critical path per operation and the
 * coalescing rate: how much ordering each protocol actually requires
 * under each persistency model.
 */

#include <iostream>

#include "bench_util/table.hh"
#include "common/error.hh"
#include "bench_util/queue_workload.hh"
#include "persistency/timing_engine.hh"
#include "pstruct/hash_map.hh"
#include "pstruct/log.hh"
#include "queue/payload.hh"

using namespace persim;

namespace {

constexpr std::uint32_t threads = 4;
constexpr std::uint64_t ops_per_thread = 500;

InMemoryTrace
queueTrace()
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Strand;
    config.threads = threads;
    config.inserts_per_thread = ops_per_thread;
    InMemoryTrace trace;
    std::vector<TraceSink *> sinks{&trace};
    runQueueWorkload(config, sinks);
    return trace;
}

InMemoryTrace
mapTrace()
{
    InMemoryTrace trace;
    EngineConfig config;
    config.quantum = 6;
    ExecutionEngine engine(config, &trace);
    auto map = std::make_shared<PersistentHashMap>();
    engine.runSetup([&map](ThreadCtx &ctx) {
        *map = PersistentHashMap::create(ctx, {.buckets = 8192}, threads);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.push_back([map, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= ops_per_thread; ++i) {
                const std::uint64_t key =
                    t * ops_per_thread + 1 + (i % (ops_per_thread / 2));
                ctx.marker(MarkerCode::OpBegin, t * 10000 + i);
                const PutStatus status =
                    map->put(ctx, t, key, key * 3 + i);
                PERSIM_REQUIRE(status != PutStatus::TableFull,
                               "ablation map sized too small");
                ctx.marker(MarkerCode::OpEnd, t * 10000 + i);
            }
        });
    }
    engine.run(workers);
    return trace;
}

InMemoryTrace
logTrace()
{
    InMemoryTrace trace;
    EngineConfig config;
    config.quantum = 6;
    ExecutionEngine engine(config, &trace);
    auto log = std::make_shared<PersistentLog>();
    engine.runSetup([&log](ThreadCtx &ctx) {
        LogOptions options;
        options.capacity = 1 << 22;
        *log = PersistentLog::create(ctx, options, threads);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.push_back([log, t](ThreadCtx &ctx) {
            std::uint8_t payload[64];
            for (std::uint64_t i = 1; i <= ops_per_thread; ++i) {
                for (std::uint64_t b = 0; b < sizeof(payload); ++b)
                    payload[b] = static_cast<std::uint8_t>(t + i + b);
                ctx.marker(MarkerCode::OpBegin, t * 10000 + i);
                log->append(ctx, t, payload, sizeof(payload));
                ctx.marker(MarkerCode::OpEnd, t * 10000 + i);
            }
        });
    }
    engine.run(workers);
    return trace;
}

void
analyze(TextTable &table, const char *name, const InMemoryTrace &trace)
{
    for (const auto &model : {ModelConfig::strict(), ModelConfig::epoch(),
                              ModelConfig::strand()}) {
        TimingConfig config;
        config.model = model;
        PersistTimingEngine engine(config);
        trace.replay(engine);
        const auto &result = engine.result();
        const double ops = static_cast<double>(
            result.ops > 0 ? result.ops : threads * ops_per_thread);
        table.row({
            name,
            model.name(),
            formatDouble(result.critical_path / ops, 4),
            formatDouble(100.0 * static_cast<double>(result.coalesced) /
                         static_cast<double>(result.persists), 1),
        });
    }
}

} // namespace

int
main()
{
    std::cout <<
        "================================================================\n"
        "Ablation: persist concurrency by durability protocol\n"
        "================================================================\n"
        "Pointer-publish (queue), publish-flag + atomic update (map),\n"
        "and checksummed records (log), per persistency model.\n\n";

    TextTable table;
    table.header({"structure", "model", "cp/op", "coalesced%"});
    analyze(table, "queue", queueTrace());
    analyze(table, "hashmap", mapTrace());
    analyze(table, "log", logTrace());
    std::cout << table.render()
              << "\nLess ordering demanded (map updates, checksummed "
              << "appends) means the\nrelaxed models turn more of it "
              << "into concurrency.\n";
    return 0;
}
