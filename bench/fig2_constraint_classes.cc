/**
 * @file
 * Figure 2: persist dependence classes for the queue inserts.
 *
 * The paper's figure distinguishes the constraints *required* for
 * recovery (entry data before the same insert's head update; head
 * updates in insert order) from the unnecessary constraints a model
 * introduces: class "A" — serialization of an entry's data persists
 * (removed by epoch persistency) — and class "B" — serialization
 * between inserts (removed between threads by racing epochs, and
 * entirely by strand persistency).
 *
 * We reproduce it by classifying each persist's binding (argmax)
 * dependence, so the counts below say which constraint class actually
 * *determined* each persist's time under each model.
 */

#include "bench/bench_common.hh"
#include "bench_util/table.hh"
#include "persistency/classify.hh"

using namespace persim;
using namespace persim::bench;

namespace {

ConstraintCensus
census(QueueKind kind, AnnotationVariant variant, const ModelConfig &model,
       std::uint32_t threads)
{
    QueueWorkloadConfig config;
    config.kind = kind;
    config.variant = variant;
    config.threads = threads;
    config.inserts_per_thread = threads == 1 ? 4000 : 800;

    TimingConfig timing = levels(model);
    timing.record_log = true;
    PersistTimingEngine engine(timing);
    std::vector<TraceSink *> sinks{&engine};
    runQueueWorkload(config, sinks);
    return censusOf(engine.log());
}

void
report(QueueKind kind, std::uint32_t threads)
{
    std::cout << "\n" << queueKindName(kind) << ", " << threads
              << " thread(s) — binding dependence classes (% of "
              << "persists):\n";
    TextTable table;
    table.header({"model", "required d->h", "required h->h",
                  "A intra-op", "B inter-op", "coalesced", "none/other"});
    const auto variants = table1Variants();
    for (const auto &variant : variants) {
        const auto counts =
            census(kind, variant.trace_variant, variant.model, threads);
        const double total = static_cast<double>(counts.total());
        auto pct = [total](std::uint64_t n) {
            return formatDouble(100.0 * static_cast<double>(n) / total, 1);
        };
        table.row({
            variant.name,
            pct(counts.of(ConstraintClass::RequiredDataToHead)),
            pct(counts.of(ConstraintClass::RequiredHeadToHead)),
            pct(counts.of(ConstraintClass::UnnecessaryIntraOp)),
            pct(counts.of(ConstraintClass::UnnecessaryInterOp)),
            pct(counts.of(ConstraintClass::Coalesced)),
            pct(counts.of(ConstraintClass::Unconstrained) +
                counts.of(ConstraintClass::Other)),
        });
    }
    std::cout << table.render();
}

} // namespace

int
main()
{
    banner("Figure 2: queue persist dependences — required vs. "
           "unnecessary constraints",
           "strict incurs class A (intra-entry serialization) and B "
           "(inter-insert); epoch removes A; racing epochs limit B to "
           "same-thread; strand removes B entirely");
    for (const auto kind :
         {QueueKind::CopyWhileLocked, QueueKind::TwoLockConcurrent}) {
        report(kind, 1);
        report(kind, 4);
    }
    return 0;
}
