/**
 * @file
 * Figure 1: cache-coherence-ordered persists — the unsatisfiable
 * constraint cycle.
 *
 * The paper's example: two threads persist to objects A and B in
 * opposite program orders with persist barriers between. If thread
 * 1's *store visibility* may reorder across its persist barrier
 * (relaxed consistency decoupled from persistency), strong persist
 * atomicity must order each address's persists in store-visibility
 * order — and the resulting constraints form a cycle. The cycle is
 * resolved either by coupling persist barriers with store barriers or
 * by relaxing strong persist atomicity.
 */

#include <iostream>

#include "persistency/constraint_graph.hh"

using namespace persim;

namespace {

ConstraintGraph
buildFigure1(bool visibility_reorders)
{
    ConstraintGraph graph;
    const auto t1_a = graph.addNode("T1:persist(A)");
    const auto t1_b = graph.addNode("T1:persist(B)");
    const auto t2_b = graph.addNode("T2:persist(B)");
    const auto t2_a = graph.addNode("T2:persist(A)");

    // Persist barriers (program order annotations).
    graph.addEdge(t1_a, t1_b, "T1 persist barrier");
    graph.addEdge(t2_b, t2_a, "T2 persist barrier");

    // Strong persist atomicity follows store visibility order.
    if (visibility_reorders) {
        // T1's store to B became visible before T2's? No: the paper's
        // example has T1's stores reorder so that T2's store to B is
        // observed first and T2's store to A second:
        graph.addEdge(t1_b, t2_b, "SPA on B (T1's B visible first)");
        graph.addEdge(t2_a, t1_a, "SPA on A (T2's A visible first)");
    } else {
        graph.addEdge(t1_b, t2_b, "SPA on B");
        graph.addEdge(t1_a, t2_a, "SPA on A");
    }
    return graph;
}

} // namespace

int
main()
{
    std::cout <<
        "================================================================\n"
        "Figure 1: store visibility reordering across persist barriers\n"
        "vs. strong persist atomicity\n"
        "================================================================\n"
        "Thread 1: persist A; persist barrier; persist B\n"
        "Thread 2: persist B; persist barrier; persist A\n\n";

    std::cout << "With store visibility reordered across T1's barrier\n"
              << "(persist barriers decoupled from store barriers):\n  ";
    const auto broken = buildFigure1(true);
    std::cout << broken.explain() << "\n\n";

    std::cout << "With store visibility kept in persist-barrier order\n"
              << "(persist barriers also act as store barriers):\n  ";
    const auto fixed = buildFigure1(false);
    std::cout << fixed.explain() << "\n";
    if (fixed.satisfiable()) {
        std::cout << "  one legal persist order:";
        for (const auto node : fixed.topologicalOrder())
            std::cout << " " << fixed.label(node);
        std::cout << "\n";
    }
    std::cout <<
        "\nConclusion (paper Section 4.3): one cannot simultaneously\n"
        "(1) let store visibility reorder across persist barriers,\n"
        "(2) enforce persist barriers, and (3) guarantee strong persist\n"
        "atomicity; a model must couple the barriers or relax "
        "atomicity.\n";
    return 0;
}
