/**
 * @file
 * Figure 3: achievable insert rate (million inserts/s) vs. persist
 * latency, Copy While Locked with one thread, under strict / epoch /
 * strand persistency.
 *
 * Paper shape: all models execute at instruction rate for small
 * latencies (flat line at the top); each becomes persist-bound as
 * latency grows — strict at ~17 ns, epoch at ~119 ns, strand only in
 * the microsecond range — after which throughput decays as 1/latency.
 */

#include <algorithm>
#include <cmath>

#include "bench/bench_common.hh"
#include "bench_util/table.hh"
#include "bench_util/throughput.hh"
#include "queue/native_queue.hh"

using namespace persim;
using namespace persim::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = parseBenchOptions(argc, argv);
    banner("Figure 3: achievable rate vs. persist latency "
           "(Copy While Locked, 1 thread)",
           "break-even ~17 ns strict, ~119 ns epoch, >6 us strand; "
           "persist-bound decay is 1/latency");

    // Native-rate measurement is wall-clock sensitive: keep it serial
    // and alone on the machine, before any analysis threads start.
    const double native_rate = measureNativeInsertRate(
        QueueKind::CopyWhileLocked, 1, 400000, 100);

    struct Series
    {
        std::string name;
        AnnotationVariant variant;
        ModelConfig model;
        std::uint32_t window = 0;
        double critical_path = 0.0;
        std::uint64_t ops = 0;
        std::uint64_t events = 0;
        double wall_seconds = 0.0;
    };
    std::vector<Series> series{
        {"strict", AnnotationVariant::Conservative, ModelConfig::strict()},
        {"epoch", AnnotationVariant::Conservative, ModelConfig::epoch()},
        {"strand", AnnotationVariant::Strand, ModelConfig::strand()},
        // "strand/w64": strand persistency with a finite coalescing
        // window (a pending persist drains after 64 issued persists),
        // modeling bounded persist buffering instead of the
        // unbounded best case.
        {"strand/w64", AnnotationVariant::Strand, ModelConfig::strand(),
         64},
    };
    // --model rows analyze the conservative (epoch-annotated) trace;
    // px86 replays it through the canonical barrier->flush-all+sfence
    // compilation.
    for (const ModelConfig &model :
         extraModels(options, {"strict", "epoch", "strand"}))
        series.push_back(
            {model.name(), AnnotationVariant::Conservative, model});

    // Each series traces its own annotation variant, so the whole
    // simulate-and-analyze pipeline fans out per series. Tracing is
    // untimed; entry.wall_seconds measures the replay alone, so the
    // events/s column (and BENCH_replay.json) reports pure engine
    // throughput rather than simulate+analyze.
    Stopwatch analysis_watch;
    TaskPool pool(options.jobs);
    pool.parallelFor(series.size(), [&series, &options,
                                     &pool](std::size_t i) {
        auto &entry = series[i];
        QueueWorkloadConfig config;
        config.kind = QueueKind::CopyWhileLocked;
        config.variant = entry.variant;
        config.threads = 1;
        config.inserts_per_thread = 20000;
        InMemoryTrace trace;
        const auto workload = runQueueWorkload(config, {&trace});
        TimingConfig timing = levels(entry.model);
        if (entry.window != 0)
            timing.coalesce_window = entry.window;
        Stopwatch watch;
        const TimingResult result =
            replayForOptions(trace, timing, options, pool);
        entry.wall_seconds = watch.seconds();
        entry.critical_path = result.critical_path;
        entry.ops = workload.inserts;
        entry.events = result.events;
    });
    const double analysis_wall = analysis_watch.seconds();

    std::cout << "\nnative instruction rate: " << formatRate(native_rate)
              << "\n\n";
    TextTable table;
    std::vector<std::string> header{"latency(ns)"};
    for (const auto &entry : series)
        header.push_back(entry.name + "(M/s)");
    table.header(header);
    // Log sweep, 10 ns .. 100 us, four points per decade.
    for (double exponent = 1.0; exponent <= 5.01; exponent += 0.25) {
        const double latency_ns = std::pow(10.0, exponent);
        std::vector<std::string> row{formatDouble(latency_ns, 1)};
        for (const auto &entry : series) {
            const auto throughput = makeThroughput(
                native_rate, entry.ops, entry.critical_path, latency_ns);
            row.push_back(
                formatDouble(throughput.achievable() / 1e6, 4));
        }
        table.row(row);
    }
    std::cout << table.render();

    std::cout << "\nbreak-even persist latency (instruction rate == "
              << "persist-bound rate):\n";
    for (const auto &entry : series) {
        const double breakeven_ns = static_cast<double>(entry.ops) * 1e9 /
            (entry.critical_path * native_rate);
        std::cout << "  " << entry.name << ": "
                  << formatDouble(breakeven_ns, 1) << " ns"
                  << "  (critical path/insert = "
                  << formatDouble(entry.critical_path /
                                  static_cast<double>(entry.ops), 4)
                  << ")\n";
    }

    TextTable timing;
    timing.header({"series", "events", "wall(s)", "events/s"});
    std::uint64_t events_analyzed = 0;
    BenchReport report;
    for (const auto &entry : series) {
        events_analyzed += entry.events;
        timing.row({entry.name, std::to_string(entry.events),
                    formatDouble(entry.wall_seconds, 4),
                    formatEventsPerSec(entry.events,
                                       entry.wall_seconds)});
        report.add(std::string("fig3/") + entry.name + "/replay",
                   entry.events, entry.wall_seconds);
    }
    std::cout << "\nPer-analysis wall time (replay only; tracing "
                 "untimed):\n"
              << timing.render() << "\n";
    reportAnalysisWall(series.size(), events_analyzed, analysis_wall,
                       options.jobs);
    writeBenchReport(report, options);
    return 0;
}
