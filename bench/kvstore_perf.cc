/**
 * @file
 * Heavy-traffic KV-store load driver: the canonical producer of
 * BENCH_kvstore.json (the committed copy lives at the repo root).
 *
 * Drives N client shards over a large key space — each client owns a
 * hash-disjoint partition of the keys and runs its own single-worker
 * execution engine, so trace generation fans out over the shared
 * TaskPool with no cross-shard coordination (exactly how a sharded KV
 * service scales writers). Three phases per update strategy
 * (in_place / cow / log_structured):
 *
 *  1. generate: zipfian-or-uniform put/get/erase traffic into each
 *     shard (golden recording off — the histories of millions of ops
 *     are an audit artifact, not a perf artifact);
 *  2. replay: every shard trace through the timing engine per
 *     persistency model (strict/epoch/strand/px86), reporting replay
 *     throughput and the persist critical path (max over shards — the
 *     service-level recovery point lag);
 *  3. audit: a smaller golden-enabled workload swept by the device-
 *     fault campaign under Repair-tier recovery, reporting violation /
 *     quarantine / repair rates per model. The acceptance bar: zero
 *     violations — detected corruption quarantines or repairs, never
 *     silently serves.
 *
 * --check shrinks everything to a smoke-test size and fails loudly on
 * any audit violation or throughput collapse; scripts/check.sh runs
 * it as a CI gate. Run with --json=BENCH_kvstore.json to refresh the
 * committed baseline.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench_util/kv_workload.hh"
#include "bench_util/table.hh"
#include "kvstore/recovery.hh"
#include "recovery/fault_campaign.hh"

using namespace persim;
using namespace persim::bench;

namespace {

struct DriverOptions
{
    std::uint32_t clients = 4;       //!< Client shards (>= 1).
    std::uint64_t keys = 1ULL << 20; //!< Total key space (all shards).
    std::uint64_t ops = 1ULL << 18;  //!< Ops per client.
    double theta = 0.99;             //!< Zipfian skew (0 = uniform).
    double put_ratio = 0.5;
    double get_ratio = 0.4; // Erase ratio is the remainder.
    std::uint64_t seed = 1;
    std::uint32_t jobs = 0; //!< Replay/audit parallelism (0 = hw).
    std::string json_path;
    bool check = false; //!< CI smoke gate: tiny sizes, hard asserts.
};

DriverOptions
parseDriver(int argc, char **argv)
{
    DriverOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&arg](const char *name) -> std::string {
            const std::string prefix = std::string(name) + "=";
            return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                             : std::string();
        };
        if (arg == "--check") {
            options.check = true;
        } else if (!value("--clients").empty()) {
            options.clients = static_cast<std::uint32_t>(
                std::stoul(value("--clients")));
        } else if (!value("--keys").empty()) {
            options.keys = std::stoull(value("--keys"));
        } else if (!value("--ops").empty()) {
            options.ops = std::stoull(value("--ops"));
        } else if (!value("--theta").empty()) {
            options.theta = std::stod(value("--theta"));
        } else if (!value("--put").empty()) {
            options.put_ratio = std::stod(value("--put"));
        } else if (!value("--get").empty()) {
            options.get_ratio = std::stod(value("--get"));
        } else if (!value("--seed").empty()) {
            options.seed = std::stoull(value("--seed"));
        } else if (!value("--jobs").empty()) {
            options.jobs = static_cast<std::uint32_t>(
                std::stoul(value("--jobs")));
        } else if (!value("--json").empty()) {
            options.json_path = value("--json");
        } else {
            std::cerr
                << "usage: " << argv[0]
                << " [--clients=N] [--keys=N] [--ops=N(per client)]"
                   " [--theta=F] [--put=F] [--get=F] [--seed=N]"
                   " [--jobs=N] [--json=PATH] [--check]\n";
            std::exit(2);
        }
    }
    if (options.check) {
        options.clients = std::min<std::uint32_t>(options.clients, 2);
        options.keys = std::min<std::uint64_t>(options.keys, 1 << 12);
        options.ops = std::min<std::uint64_t>(options.ops, 1 << 11);
    }
    return options;
}

std::uint64_t
nextPow2(std::uint64_t n)
{
    std::uint64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** Per-shard workload config for the heavy generation phase. */
KvWorkloadConfig
shardConfig(const DriverOptions &options, KvUpdateStrategy strategy,
            std::uint32_t shard)
{
    KvWorkloadConfig config;
    const std::uint64_t shard_keys =
        std::max<std::uint64_t>(1, options.keys / options.clients);
    // Room for every key the shard can ever hold plus tombstones:
    // probing stays short and TableFull backpressure stays rare.
    config.store.buckets =
        std::max<std::uint64_t>(1024, nextPow2(2 * shard_keys));
    // The bump heap never frees: every put allocates. Size for the
    // expected put volume with headroom; overflow is counted
    // backpressure, not failure.
    const std::uint64_t puts =
        static_cast<std::uint64_t>(static_cast<double>(options.ops) *
                                   options.put_ratio) + 1024;
    config.store.max_value_bytes = 64;
    config.store.heap_bytes =
        (puts + (puts >> 2)) * (config.store.max_value_bytes + 8);
    config.store.log_capacity =
        strategy == KvUpdateStrategy::LogStructured
            ? (puts + (puts >> 1)) * 112 + (1 << 12)
            : 1 << 12;
    config.store.strategy = strategy;
    // Golden histories for millions of ops are an audit artifact;
    // recording them would dominate generation wall time.
    config.store.record_golden = false;
    config.threads = 1; // One simulated writer per shard.
    config.ops_per_thread = options.ops;
    config.key_space = shard_keys;
    config.zipf_theta = options.theta;
    config.put_ratio = options.put_ratio;
    config.get_ratio = options.get_ratio;
    config.min_value_bytes = 8;
    config.max_value_bytes = 64;
    config.seed = mixSeed(options.seed, shard + 1);
    return config;
}

struct Strategy
{
    const char *name;
    KvUpdateStrategy strategy;
};

constexpr Strategy strategies[] = {
    {"in_place", KvUpdateStrategy::InPlace},
    {"cow", KvUpdateStrategy::Cow},
    {"log_structured", KvUpdateStrategy::LogStructured},
};

struct Model
{
    const char *name;
    ModelConfig model;
};

const std::vector<Model> &
modelList()
{
    static const std::vector<Model> models{
        {"strict", ModelConfig::strict()},
        {"epoch", ModelConfig::epoch()},
        {"strand", ModelConfig::strand()},
        {"px86", ModelConfig::px86()},
    };
    return models;
}

/** The audit campaign's fault mix: everything at once. */
FaultConfig
auditFaults()
{
    FaultConfig faults;
    faults.tear_persists = true;
    faults.atomic_write_unit = 4;
    faults.media_error_per_write = 2e-4;
    faults.drop_drain_p = 0.25;
    faults.drain_latency = 0.5;
    return faults;
}

} // namespace

int
main(int argc, char **argv)
{
    const DriverOptions options = parseDriver(argc, argv);
    const std::uint32_t jobs = effectiveJobs(options.jobs);
    TaskPool pool(jobs);
    banner("KV-store service under heavy traffic",
           "a persistency model is only as useful as the service on "
           "top of it: this driver measures what each model costs the "
           "store's persist critical path and what the recovery "
           "ladder absorbs when the device misbehaves");

    std::cout << "clients=" << options.clients
              << " keys=" << options.keys << " ops/client="
              << options.ops << " theta=" << options.theta
              << " put=" << options.put_ratio << " get="
              << options.get_ratio << " erase="
              << (1.0 - options.put_ratio - options.get_ratio)
              << " jobs=" << jobs
              << (options.check ? " (--check)" : "") << "\n\n";

    BenchReport report;
    bool check_failed = false;

    TextTable generation;
    generation.header({"strategy", "clients", "ops", "rejected",
                       "wall(s)", "ops/s"});
    TextTable replay;
    replay.header({"strategy", "model", "events", "wall(s)", "events/s",
                   "critical path", "persists"});
    TextTable audit;
    audit.header({"strategy", "model", "samples", "violations",
                  "quarantined", "repaired", "discarded"});

    for (const Strategy &strategy : strategies) {
        // Phase 1: generate shard traces in parallel.
        std::vector<InMemoryTrace> traces(options.clients);
        std::vector<std::uint64_t> rejected(options.clients);
        Stopwatch generate_watch;
        pool.parallelFor(options.clients, [&](std::size_t shard) {
            KvWorkloadResult result = runKvWorkload(shardConfig(
                options, strategy.strategy,
                static_cast<std::uint32_t>(shard)));
            rejected[shard] = result.rejectedTotal();
            traces[shard] = std::move(result.trace);
        });
        const double generate_wall = generate_watch.seconds();
        const std::uint64_t total_ops =
            static_cast<std::uint64_t>(options.clients) * options.ops;
        std::uint64_t total_rejected = 0, total_events = 0;
        for (std::uint32_t s = 0; s < options.clients; ++s) {
            total_rejected += rejected[s];
            total_events += traces[s].size();
        }
        generation.row({strategy.name, std::to_string(options.clients),
                        std::to_string(total_ops),
                        std::to_string(total_rejected),
                        formatDouble(generate_wall, 3),
                        formatEventsPerSec(total_ops, generate_wall)});
        report.add(std::string("kvstore/") + strategy.name +
                       "/generate",
                   total_events, generate_wall);
        if (options.check &&
            total_rejected > total_ops / 10) {
            std::cerr << "CHECK FAIL: " << strategy.name << " rejected "
                      << total_rejected << "/" << total_ops
                      << " ops — shard sizing is wrong\n";
            check_failed = true;
        }

        // Phase 2: replay each shard per model; the service's persist
        // critical path is the slowest shard's.
        for (const Model &model : modelList()) {
            const TimingConfig timing = levels(model.model);
            std::vector<TimingResult> results(options.clients);
            Stopwatch replay_watch;
            pool.parallelFor(options.clients, [&](std::size_t shard) {
                PersistTimingEngine engine(timing);
                traces[shard].replay(engine);
                results[shard] = engine.result();
            });
            const double replay_wall = replay_watch.seconds();
            double critical_path = 0.0;
            std::uint64_t persists = 0;
            for (const TimingResult &result : results) {
                critical_path =
                    std::max(critical_path, result.critical_path);
                persists += result.persists;
            }
            replay.row({strategy.name, model.name,
                        std::to_string(total_events),
                        formatDouble(replay_wall, 3),
                        formatEventsPerSec(total_events, replay_wall),
                        formatDouble(critical_path, 1),
                        std::to_string(persists)});
            report.add(std::string("kvstore/") + strategy.name + "/" +
                           model.name + "/replay",
                       total_events, replay_wall);
        }

        // Phase 3: audit. A smaller golden-enabled workload of the
        // same shape, swept by the full fault mix under Repair-tier
        // recovery, per model.
        KvWorkloadConfig audit_config =
            shardConfig(options, strategy.strategy, 0);
        audit_config.store.record_golden = true;
        audit_config.store.buckets = 256;
        audit_config.store.heap_bytes = 1 << 16;
        audit_config.store.log_capacity = 1 << 18;
        audit_config.threads = 2;
        audit_config.ops_per_thread = options.check ? 48 : 96;
        audit_config.key_space = 48;
        const KvWorkloadResult audit_workload =
            runKvWorkload(audit_config);
        KvRecoveryOptions recovery_options;
        recovery_options.mode = KvRecoveryMode::Repair;
        recovery_options.journal = audit_workload.journal;
        for (const Model &model : modelList()) {
            FaultCampaignConfig campaign;
            campaign.injection.model = model.model;
            campaign.injection.realizations = options.check ? 3 : 6;
            campaign.injection.crashes_per_realization =
                options.check ? 16 : 32;
            campaign.injection.seed = options.seed + 77;
            campaign.injection.jobs = jobs;
            campaign.faults = auditFaults();
            auto stats = std::make_shared<KvInvariantStats>();
            const InjectionResult result = runFaultCampaign(
                audit_workload.trace, campaign,
                makeKvRecoveryInvariant(audit_workload.layout,
                                        audit_workload.golden,
                                        recovery_options, stats));
            audit.row({strategy.name, model.name,
                       std::to_string(result.samples),
                       std::to_string(result.violations),
                       std::to_string(stats->quarantined.load()),
                       std::to_string(stats->repaired.load()),
                       std::to_string(stats->discarded.load())});
            if (!result.ok()) {
                std::cerr << "AUDIT FAIL: " << strategy.name << "/"
                          << model.name << ": "
                          << result.first_violation << "\n";
                check_failed = true;
            }
        }
    }

    std::cout << "generation (simulated clients on the task pool):\n"
              << generation.render() << "\nreplay (per persistency "
              << "model; critical path = slowest shard):\n"
              << replay.render() << "\naudit (device-fault campaign, "
              << "Repair-tier recovery — violations must be 0):\n"
              << audit.render() << "\n";

    if (!options.json_path.empty() && !report.empty()) {
        report.writeJson(options.json_path);
        std::cout << "bench report: " << report.size()
                  << " samples -> " << options.json_path << "\n";
    }
    if (check_failed) {
        std::cout << "--check: FAILED\n";
        return 1;
    }
    if (options.check)
        std::cout << "--check: OK\n";
    return 0;
}
