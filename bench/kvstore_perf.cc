/**
 * @file
 * Heavy-traffic KV-store load driver: the canonical producer of
 * BENCH_kvstore.json (the committed copy lives at the repo root).
 *
 * Drives N client shards over a large key space — each client owns a
 * hash-disjoint partition of the keys and runs its own single-worker
 * execution engine, so trace generation fans out over the shared
 * TaskPool with no cross-shard coordination (exactly how a sharded KV
 * service scales writers). Three phases per update strategy
 * (in_place / cow / log_structured):
 *
 *  1. generate: zipfian-or-uniform put/get/erase traffic into each
 *     shard (golden recording off — the histories of millions of ops
 *     are an audit artifact, not a perf artifact);
 *  2. replay: every shard trace through the timing engine per
 *     persistency model (strict/epoch/strand/px86), reporting replay
 *     throughput and the persist critical path (max over shards — the
 *     service-level recovery point lag);
 *  3. audit: a smaller golden-enabled workload swept by the device-
 *     fault campaign under Repair-tier recovery, reporting violation /
 *     quarantine / repair rates per model. The acceptance bar: zero
 *     violations — detected corruption quarantines or repairs, never
 *     silently serves.
 *
 * Plus a cross-shard transaction phase per strategy: every client
 * shard behind one hash-partitioned KvRouter front end under a
 * txn + snapshot + migration mix (4) generated once, (5) replayed per
 * persistency model for the transaction path's persist critical path
 * (the commit protocol's barriers are exactly what the models price
 * differently — kvstore/txn_<strategy>/<model>/replay rows), and
 * (6) audited by the full fault mix under TxnResolve-tier group
 * recovery, where in-doubt and scrubbed transactions are counted
 * degradation and violations must be zero.
 *
 * --check shrinks everything to a smoke-test size and fails loudly on
 * any audit violation or throughput collapse; scripts/check.sh runs
 * it as a CI gate. Run with --json=BENCH_kvstore.json to refresh the
 * committed baseline.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench_util/kv_workload.hh"
#include "bench_util/table.hh"
#include "kvstore/recovery.hh"
#include "recovery/fault_campaign.hh"

using namespace persim;
using namespace persim::bench;

namespace {

struct DriverOptions
{
    std::uint32_t clients = 4;       //!< Client shards (>= 1).
    std::uint64_t keys = 1ULL << 20; //!< Total key space (all shards).
    std::uint64_t ops = 1ULL << 18;  //!< Ops per client.
    std::uint64_t txn_ops = 1ULL << 14; //!< Txn-phase ops per thread.
    double theta = 0.99;             //!< Zipfian skew (0 = uniform).
    double put_ratio = 0.5;
    double get_ratio = 0.4; // Erase ratio is the remainder.
    std::uint64_t seed = 1;
    std::uint32_t jobs = 0; //!< Replay/audit parallelism (0 = hw).
    std::string json_path;
    bool check = false; //!< CI smoke gate: tiny sizes, hard asserts.
    bool compiled = false; //!< Replay through the compiled-trace path.
    std::string compile_cache; //!< .ctc cache dir (implies compiled).
};

DriverOptions
parseDriver(int argc, char **argv)
{
    DriverOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&arg](const char *name) -> std::string {
            const std::string prefix = std::string(name) + "=";
            return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                             : std::string();
        };
        if (arg == "--check") {
            options.check = true;
        } else if (!value("--clients").empty()) {
            options.clients = static_cast<std::uint32_t>(
                std::stoul(value("--clients")));
        } else if (!value("--keys").empty()) {
            options.keys = std::stoull(value("--keys"));
        } else if (!value("--ops").empty()) {
            options.ops = std::stoull(value("--ops"));
        } else if (!value("--txn-ops").empty()) {
            options.txn_ops = std::stoull(value("--txn-ops"));
        } else if (!value("--theta").empty()) {
            options.theta = std::stod(value("--theta"));
        } else if (!value("--put").empty()) {
            options.put_ratio = std::stod(value("--put"));
        } else if (!value("--get").empty()) {
            options.get_ratio = std::stod(value("--get"));
        } else if (!value("--seed").empty()) {
            options.seed = std::stoull(value("--seed"));
        } else if (!value("--jobs").empty()) {
            options.jobs = static_cast<std::uint32_t>(
                std::stoul(value("--jobs")));
        } else if (!value("--json").empty()) {
            options.json_path = value("--json");
        } else if (arg == "--compiled") {
            options.compiled = true;
        } else if (!value("--compile-cache").empty()) {
            options.compiled = true;
            options.compile_cache = value("--compile-cache");
        } else {
            std::cerr
                << "usage: " << argv[0]
                << " [--clients=N] [--keys=N] [--ops=N(per client)]"
                   " [--txn-ops=N(per thread)] [--theta=F] [--put=F]"
                   " [--get=F] [--seed=N] [--jobs=N] [--json=PATH]"
                   " [--check] [--compiled] [--compile-cache=DIR]\n";
            std::exit(2);
        }
    }
    if (options.check) {
        options.clients = std::min<std::uint32_t>(options.clients, 2);
        options.keys = std::min<std::uint64_t>(options.keys, 1 << 12);
        options.ops = std::min<std::uint64_t>(options.ops, 1 << 11);
        options.txn_ops =
            std::min<std::uint64_t>(options.txn_ops, 1 << 9);
    }
    return options;
}

std::uint64_t
nextPow2(std::uint64_t n)
{
    std::uint64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** Per-shard workload config for the heavy generation phase. */
KvWorkloadConfig
shardConfig(const DriverOptions &options, KvUpdateStrategy strategy,
            std::uint32_t shard)
{
    KvWorkloadConfig config;
    const std::uint64_t shard_keys =
        std::max<std::uint64_t>(1, options.keys / options.clients);
    // Room for every key the shard can ever hold plus tombstones:
    // probing stays short and TableFull backpressure stays rare.
    config.store.buckets =
        std::max<std::uint64_t>(1024, nextPow2(2 * shard_keys));
    // The bump heap never frees: every put allocates. Size for the
    // expected put volume with headroom; overflow is counted
    // backpressure, not failure.
    const std::uint64_t puts =
        static_cast<std::uint64_t>(static_cast<double>(options.ops) *
                                   options.put_ratio) + 1024;
    config.store.max_value_bytes = 64;
    config.store.heap_bytes =
        (puts + (puts >> 2)) * (config.store.max_value_bytes + 8);
    config.store.log_capacity =
        strategy == KvUpdateStrategy::LogStructured
            ? (puts + (puts >> 1)) * 112 + (1 << 12)
            : 1 << 12;
    config.store.strategy = strategy;
    // Golden histories for millions of ops are an audit artifact;
    // recording them would dominate generation wall time.
    config.store.record_golden = false;
    config.threads = 1; // One simulated writer per shard.
    config.ops_per_thread = options.ops;
    config.key_space = shard_keys;
    config.zipf_theta = options.theta;
    config.put_ratio = options.put_ratio;
    config.get_ratio = options.get_ratio;
    config.min_value_bytes = 8;
    config.max_value_bytes = 64;
    config.seed = mixSeed(options.seed, shard + 1);
    return config;
}

struct Strategy
{
    const char *name;
    KvUpdateStrategy strategy;
};

constexpr Strategy strategies[] = {
    {"in_place", KvUpdateStrategy::InPlace},
    {"cow", KvUpdateStrategy::Cow},
    {"log_structured", KvUpdateStrategy::LogStructured},
};

struct Model
{
    const char *name;
    ModelConfig model;
};

const std::vector<Model> &
modelList()
{
    static const std::vector<Model> models{
        {"strict", ModelConfig::strict()},
        {"epoch", ModelConfig::epoch()},
        {"strand", ModelConfig::strand()},
        {"px86", ModelConfig::px86()},
    };
    return models;
}

/** Router-group config for the cross-shard transaction phase: one
    group of `clients` shards, all simulated client threads on one
    engine (the front end is shared state; sharded trace generation
    would lose the cross-shard ordering the phase exists to price). */
KvRouterWorkloadConfig
txnConfig(const DriverOptions &options, KvUpdateStrategy strategy)
{
    KvRouterWorkloadConfig config;
    config.router.shards = std::max<std::uint32_t>(2, options.clients);
    config.router.partitions =
        static_cast<std::uint32_t>(nextPow2(4ULL *
                                            config.router.shards));
    config.threads = config.router.shards;
    config.ops_per_thread = options.txn_ops;
    const std::uint64_t total_ops =
        static_cast<std::uint64_t>(config.threads) * options.txn_ops;
    config.key_space = std::max<std::uint64_t>(256, total_ops / 8);
    config.zipf_theta = options.theta;
    config.txn_ratio = 0.2;
    config.snapshot_ratio = 0.1;
    config.put_ratio = 0.35;
    config.get_ratio = 0.2; // Erase gets the remaining 0.15.
    config.migrate_every = 64;
    config.min_value_bytes = 8;
    config.max_value_bytes = 48;
    config.seed = mixSeed(options.seed, 0x7472);

    // Every put allocates from the bump heap: direct puts plus staged
    // transaction puts (~3 keys/txn, 80% of staged ops are puts).
    const std::uint64_t puts = static_cast<std::uint64_t>(
        static_cast<double>(total_ops) * (0.35 + 0.2 * 3 * 0.8));
    const std::uint64_t shard_puts =
        puts / config.router.shards + 1024;
    config.router.store.strategy = strategy;
    config.router.store.max_value_bytes = 48;
    config.router.store.buckets = std::max<std::uint64_t>(
        1024,
        nextPow2(2 * (config.key_space / config.router.shards + 1)));
    config.router.store.heap_bytes =
        (shard_puts + (shard_puts >> 2)) *
        (config.router.store.max_value_bytes + 8);
    // Staged transaction records land in the shard journals under
    // every strategy; LogStructured adds its per-put records on top.
    const std::uint64_t journal_records =
        strategy == KvUpdateStrategy::LogStructured
            ? shard_puts + (shard_puts >> 1)
            : shard_puts;
    config.router.store.log_capacity =
        journal_records * 112 + (1 << 12);
    config.router.store.record_golden = false;

    const std::uint64_t txns = static_cast<std::uint64_t>(
        static_cast<double>(total_ops) * config.txn_ratio);
    config.router.max_txns =
        std::max<std::uint64_t>(512, nextPow2(2 * txns));
    config.router.group_log_capacity = std::max<std::uint64_t>(
        1 << 14, nextPow2(txns * 192 + (1 << 12)));
    return config;
}

/** Golden-enabled miniature of the txn phase for the fault-campaign
    audit (same shape as the kv-txn campaign surface). */
KvRouterWorkloadConfig
txnAuditConfig(const DriverOptions &options, KvUpdateStrategy strategy)
{
    KvRouterWorkloadConfig config;
    config.router.shards = 2;
    config.router.partitions = 8;
    config.router.max_txns = 512;
    config.router.group_log_capacity = 1 << 16;
    config.router.store.buckets = 256;
    config.router.store.heap_bytes = 1 << 16;
    config.router.store.max_value_bytes = 64;
    config.router.store.log_capacity = 1 << 18;
    config.router.store.strategy = strategy;
    config.router.store.record_golden = true;
    config.threads = 2;
    config.ops_per_thread = options.check ? 48 : 96;
    config.key_space = 48;
    config.txn_ratio = 0.35;
    config.snapshot_ratio = 0.05;
    config.put_ratio = 0.35;
    config.get_ratio = 0.15;
    config.migrate_every = 12;
    config.max_value_bytes = 48;
    config.seed = options.seed + 5;
    return config;
}

/** The audit campaign's fault mix: everything at once. */
FaultConfig
auditFaults()
{
    FaultConfig faults;
    faults.tear_persists = true;
    faults.atomic_write_unit = 4;
    faults.media_error_per_write = 2e-4;
    faults.drop_drain_p = 0.25;
    faults.drain_latency = 0.5;
    return faults;
}

} // namespace

int
main(int argc, char **argv)
{
    const DriverOptions options = parseDriver(argc, argv);
    const std::uint32_t jobs = effectiveJobs(options.jobs);
    TaskPool pool(jobs);
    banner("KV-store service under heavy traffic",
           "a persistency model is only as useful as the service on "
           "top of it: this driver measures what each model costs the "
           "store's persist critical path and what the recovery "
           "ladder absorbs when the device misbehaves");

    std::cout << "clients=" << options.clients
              << " keys=" << options.keys << " ops/client="
              << options.ops << " theta=" << options.theta
              << " put=" << options.put_ratio << " get="
              << options.get_ratio << " erase="
              << (1.0 - options.put_ratio - options.get_ratio)
              << " jobs=" << jobs
              << (options.check ? " (--check)" : "") << "\n\n";

    BenchReport report;
    bool check_failed = false;

    TextTable generation;
    generation.header({"strategy", "clients", "ops", "rejected",
                       "wall(s)", "ops/s"});
    TextTable replay;
    replay.header({"strategy", "model", "events", "wall(s)", "events/s",
                   "critical path", "persists"});
    TextTable audit;
    audit.header({"strategy", "model", "samples", "violations",
                  "quarantined", "repaired", "discarded"});
    TextTable txn_generation;
    txn_generation.header({"strategy", "ops", "txns", "committed",
                           "snapshots", "migrations", "rejected",
                           "wall(s)", "ops/s"});
    TextTable txn_replay;
    txn_replay.header({"strategy", "model", "events", "wall(s)",
                       "events/s", "critical path", "persists"});
    TextTable txn_audit;
    txn_audit.header({"strategy", "model", "samples", "violations",
                      "in_doubt", "partial", "lost", "stale"});

    for (const Strategy &strategy : strategies) {
        // Phase 1: generate shard traces in parallel.
        std::vector<InMemoryTrace> traces(options.clients);
        std::vector<std::uint64_t> rejected(options.clients);
        Stopwatch generate_watch;
        pool.parallelFor(options.clients, [&](std::size_t shard) {
            KvWorkloadResult result = runKvWorkload(shardConfig(
                options, strategy.strategy,
                static_cast<std::uint32_t>(shard)));
            rejected[shard] = result.rejectedTotal();
            traces[shard] = std::move(result.trace);
        });
        const double generate_wall = generate_watch.seconds();
        const std::uint64_t total_ops =
            static_cast<std::uint64_t>(options.clients) * options.ops;
        std::uint64_t total_rejected = 0, total_events = 0;
        for (std::uint32_t s = 0; s < options.clients; ++s) {
            total_rejected += rejected[s];
            total_events += traces[s].size();
        }
        generation.row({strategy.name, std::to_string(options.clients),
                        std::to_string(total_ops),
                        std::to_string(total_rejected),
                        formatDouble(generate_wall, 3),
                        formatEventsPerSec(total_ops, generate_wall)});
        report.add(std::string("kvstore/") + strategy.name +
                       "/generate",
                   total_events, generate_wall);
        if (options.check &&
            total_rejected > total_ops / 10) {
            std::cerr << "CHECK FAIL: " << strategy.name << " rejected "
                      << total_rejected << "/" << total_ops
                      << " ops — shard sizing is wrong\n";
            check_failed = true;
        }

        // Phase 2: replay each shard per model; the service's persist
        // critical path is the slowest shard's.
        for (const Model &model : modelList()) {
            const TimingConfig timing = levels(model.model);
            std::vector<TimingResult> results(options.clients);
            Stopwatch replay_watch;
            pool.parallelFor(options.clients, [&](std::size_t shard) {
                if (options.compiled) {
                    // Compiled path: each shard trace compiles (or
                    // cache-loads) its own artifact; execution is the
                    // column walk, bit-identical to the engine replay.
                    const InMemoryTrace &trace = traces[shard];
                    if (!options.compile_cache.empty()) {
                        const CompiledTraceHandle handle =
                            loadOrCompileTrace(trace.events().data(),
                                               trace.events().size(),
                                               timing,
                                               options.compile_cache);
                        results[shard] =
                            compiledReplay(handle.view(), timing);
                    } else {
                        const CompiledTrace compiled =
                            compileTrace(trace.events().data(),
                                         trace.events().size(), timing);
                        results[shard] =
                            compiledReplay(compiled.view(), timing);
                    }
                    return;
                }
                PersistTimingEngine engine(timing);
                traces[shard].replay(engine);
                results[shard] = engine.result();
            });
            const double replay_wall = replay_watch.seconds();
            double critical_path = 0.0;
            std::uint64_t persists = 0;
            for (const TimingResult &result : results) {
                critical_path =
                    std::max(critical_path, result.critical_path);
                persists += result.persists;
            }
            replay.row({strategy.name, model.name,
                        std::to_string(total_events),
                        formatDouble(replay_wall, 3),
                        formatEventsPerSec(total_events, replay_wall),
                        formatDouble(critical_path, 1),
                        std::to_string(persists)});
            report.add(std::string("kvstore/") + strategy.name + "/" +
                           model.name + "/replay",
                       total_events, replay_wall);
        }

        // Phase 3: audit. A smaller golden-enabled workload of the
        // same shape, swept by the full fault mix under Repair-tier
        // recovery, per model.
        KvWorkloadConfig audit_config =
            shardConfig(options, strategy.strategy, 0);
        audit_config.store.record_golden = true;
        audit_config.store.buckets = 256;
        audit_config.store.heap_bytes = 1 << 16;
        audit_config.store.log_capacity = 1 << 18;
        audit_config.threads = 2;
        audit_config.ops_per_thread = options.check ? 48 : 96;
        audit_config.key_space = 48;
        const KvWorkloadResult audit_workload =
            runKvWorkload(audit_config);
        KvRecoveryOptions recovery_options;
        recovery_options.mode = KvRecoveryMode::Repair;
        recovery_options.journal = audit_workload.journal;
        for (const Model &model : modelList()) {
            FaultCampaignConfig campaign;
            campaign.injection.model = model.model;
            campaign.injection.realizations = options.check ? 3 : 6;
            campaign.injection.crashes_per_realization =
                options.check ? 16 : 32;
            campaign.injection.seed = options.seed + 77;
            campaign.injection.jobs = jobs;
            campaign.faults = auditFaults();
            auto stats = std::make_shared<KvInvariantStats>();
            const InjectionResult result = runFaultCampaign(
                audit_workload.trace, campaign,
                makeKvRecoveryInvariant(audit_workload.layout,
                                        audit_workload.golden,
                                        recovery_options, stats));
            audit.row({strategy.name, model.name,
                       std::to_string(result.samples),
                       std::to_string(result.violations),
                       std::to_string(stats->quarantined.load()),
                       std::to_string(stats->repaired.load()),
                       std::to_string(stats->discarded.load())});
            if (!result.ok()) {
                std::cerr << "AUDIT FAIL: " << strategy.name << "/"
                          << model.name << ": "
                          << result.first_violation << "\n";
                check_failed = true;
            }
        }

        // Phase 4: cross-shard transactions. One router group under a
        // txn + snapshot + migration mix, generated once per strategy.
        const KvRouterWorkloadConfig txn_config =
            txnConfig(options, strategy.strategy);
        Stopwatch txn_watch;
        const KvRouterWorkloadResult txn_run =
            runKvRouterWorkload(txn_config);
        const double txn_wall = txn_watch.seconds();
        const std::uint64_t txn_total_ops =
            static_cast<std::uint64_t>(txn_config.threads) *
            txn_config.ops_per_thread;
        std::uint64_t txn_rejected = 0;
        for (std::uint64_t r : txn_run.rejected)
            txn_rejected += r;
        for (std::uint64_t r : txn_run.txn_rejected)
            txn_rejected += r;
        txn_generation.row(
            {strategy.name, std::to_string(txn_total_ops),
             std::to_string(txn_run.txns),
             std::to_string(txn_run.txns_committed),
             std::to_string(txn_run.snapshots),
             std::to_string(txn_run.migrations),
             std::to_string(txn_rejected),
             formatDouble(txn_wall, 3),
             formatEventsPerSec(txn_total_ops, txn_wall)});
        report.add(std::string("kvstore/txn_") + strategy.name +
                       "/generate",
                   txn_run.trace.size(), txn_wall);
        if (options.check &&
            (txn_run.txns_committed == 0 || txn_run.migrations == 0)) {
            std::cerr << "CHECK FAIL: " << strategy.name
                      << " txn phase committed "
                      << txn_run.txns_committed << " txns, moved "
                      << txn_run.migrations
                      << " partitions — the mix never exercised the "
                         "coordination layer\n";
            check_failed = true;
        }
        if (options.check && txn_rejected > txn_total_ops / 10) {
            std::cerr << "CHECK FAIL: " << strategy.name
                      << " txn phase rejected " << txn_rejected << "/"
                      << txn_total_ops
                      << " ops — group sizing is wrong\n";
            check_failed = true;
        }

        // Phase 5: replay the transaction trace per model. The
        // commit protocol's barriers (journal append, status flip,
        // applies) are exactly what the models price differently;
        // segment replay fans the analysis over the shared pool,
        // bit-identical to serial.
        for (const Model &model : modelList()) {
            const TimingConfig timing = levels(model.model);
            Stopwatch txn_replay_watch;
            TimingResult result;
            if (options.compiled) {
                CompiledReplayOptions copts;
                copts.jobs = jobs;
                copts.pool = &pool;
                if (!options.compile_cache.empty()) {
                    const CompiledTraceHandle handle = loadOrCompileTrace(
                        txn_run.trace.events().data(),
                        txn_run.trace.events().size(), timing,
                        options.compile_cache, {}, jobs, &pool);
                    result = compiledReplay(handle.view(), timing, copts);
                } else {
                    const CompiledTrace compiled = compileTrace(
                        txn_run.trace.events().data(),
                        txn_run.trace.events().size(), timing, jobs,
                        &pool);
                    result = compiledReplay(compiled.view(), timing,
                                            copts);
                }
            } else if (jobs <= 1) {
                PersistTimingEngine engine(timing);
                txn_run.trace.replay(engine);
                result = engine.result();
            } else {
                SegmentReplayOptions segment;
                segment.jobs = jobs;
                segment.pool = &pool;
                result = segmentReplay(txn_run.trace, timing, segment);
            }
            const double txn_replay_wall = txn_replay_watch.seconds();
            txn_replay.row({strategy.name, model.name,
                            std::to_string(txn_run.trace.size()),
                            formatDouble(txn_replay_wall, 3),
                            formatEventsPerSec(txn_run.trace.size(),
                                               txn_replay_wall),
                            formatDouble(result.critical_path, 1),
                            std::to_string(result.persists)});
            report.add(std::string("kvstore/txn_") + strategy.name +
                           "/" + model.name + "/replay",
                       txn_run.trace.size(), txn_replay_wall);
        }

        // Phase 6: audit the transaction path. A golden-enabled
        // miniature swept by the full fault mix per model under
        // TxnResolve-tier group recovery: in-doubt and scrubbed
        // transactions are counted degradation, violations are
        // failure.
        const KvRouterWorkloadResult txn_audit_run =
            runKvRouterWorkload(txnAuditConfig(options,
                                               strategy.strategy));
        KvGroupRecoveryOptions group_options;
        group_options.mode = KvRecoveryMode::TxnResolve;
        for (const Model &model : modelList()) {
            FaultCampaignConfig campaign;
            campaign.injection.model = model.model;
            campaign.injection.realizations = options.check ? 3 : 6;
            campaign.injection.crashes_per_realization =
                options.check ? 16 : 32;
            campaign.injection.seed = options.seed + 177;
            campaign.injection.jobs = jobs;
            campaign.faults = auditFaults();
            auto stats = std::make_shared<KvRouterInvariantStats>();
            const InjectionResult result = runFaultCampaign(
                txn_audit_run.trace, campaign,
                makeKvRouterInvariant(txn_audit_run.layout,
                                      txn_audit_run.golden,
                                      txn_audit_run.txn_golden,
                                      group_options, stats));
            txn_audit.row(
                {strategy.name, model.name,
                 std::to_string(result.samples),
                 std::to_string(result.violations),
                 std::to_string(stats->in_doubt.load()),
                 std::to_string(stats->txn_partial.load()),
                 std::to_string(stats->txn_lost.load()),
                 std::to_string(stats->stale_copies.load())});
            if (!result.ok()) {
                std::cerr << "TXN AUDIT FAIL: " << strategy.name
                          << "/" << model.name << ": "
                          << result.first_violation << "\n";
                check_failed = true;
            }
        }
    }

    std::cout << "generation (simulated clients on the task pool):\n"
              << generation.render() << "\nreplay (per persistency "
              << "model; critical path = slowest shard):\n"
              << replay.render() << "\naudit (device-fault campaign, "
              << "Repair-tier recovery — violations must be 0):\n"
              << audit.render() << "\ntxn generation (one router "
              << "group: cross-shard txns + snapshots + migrations):\n"
              << txn_generation.render() << "\ntxn replay (per "
              << "persistency model; critical path = the commit "
              << "protocol's persist chain):\n"
              << txn_replay.render() << "\ntxn audit (device-fault "
              << "campaign, TxnResolve-tier group recovery — "
              << "violations must be 0):\n"
              << txn_audit.render() << "\n";

    if (!options.json_path.empty() && !report.empty()) {
        report.writeJson(options.json_path);
        std::cout << "bench report: " << report.size()
                  << " samples -> " << options.json_path << "\n";
    }
    if (check_failed) {
        std::cout << "--check: FAILED\n";
        return 1;
    }
    if (options.check)
        std::cout << "--check: OK\n";
    return 0;
}
