/**
 * @file
 * Ablation: BPFS-style conflict detection vs. our epoch persistency
 * (paper Section 5.2 discussion). BPFS tracks conflicts only in the
 * persistent address space and cannot detect load-before-store
 * conflicts (TSO-style detection); this bench quantifies the
 * constraints it misses on the queue workloads.
 */

#include "bench/bench_common.hh"
#include "bench_util/table.hh"

using namespace persim;
using namespace persim::bench;

int
main()
{
    banner("Ablation: BPFS conflict detection vs. SC epoch persistency",
           "BPFS misses volatile-space and load-before-store "
           "conflicts; its persist critical path can only be shorter "
           "— i.e. it under-constrains relative to SC-based epoch "
           "persistency");

    TextTable table;
    table.header({"queue", "threads", "variant", "epoch cp/op",
                  "bpfs cp/op", "ponly cp/op", "tso cp/op"});

    ModelConfig persistent_only = ModelConfig::epoch();
    persistent_only.conflict_scope = ConflictScope::PersistentOnly;
    ModelConfig tso_detect = ModelConfig::epoch();
    tso_detect.detect_load_before_store = false;

    for (const auto kind :
         {QueueKind::CopyWhileLocked, QueueKind::TwoLockConcurrent}) {
        for (const std::uint32_t threads : {1u, 4u}) {
            for (const auto variant : {AnnotationVariant::Conservative,
                                       AnnotationVariant::Racing}) {
                QueueWorkloadConfig config;
                config.kind = kind;
                config.variant = variant;
                config.threads = threads;
                config.inserts_per_thread = threads == 1 ? 4000 : 1000;

                PersistTimingEngine epoch(levels(ModelConfig::epoch()));
                PersistTimingEngine bpfs(levels(ModelConfig::bpfs()));
                PersistTimingEngine ponly(levels(persistent_only));
                PersistTimingEngine tso(levels(tso_detect));
                runInto(config, {&epoch, &bpfs, &ponly, &tso});

                table.row({
                    queueKindName(kind),
                    std::to_string(threads),
                    annotationVariantName(variant),
                    formatDouble(epoch.result().criticalPathPerOp(), 3),
                    formatDouble(bpfs.result().criticalPathPerOp(), 3),
                    formatDouble(ponly.result().criticalPathPerOp(), 3),
                    formatDouble(tso.result().criticalPathPerOp(), 3),
                });
            }
        }
    }
    std::cout << "\n" << table.render()
              << "\nA shorter BPFS path means constraints the SC model "
              << "enforces were silently dropped;\nwhere the paths are "
              << "equal, the queue's ordering flows through the "
              << "persistent\naddress space (head-pointer atomicity) "
              << "and BPFS detection suffices.\n";
    return 0;
}
