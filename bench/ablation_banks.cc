/**
 * @file
 * Ablation: finite NVRAM banks (the paper assumes infinite banks and
 * bandwidth; Section 7 notes real memory systems "must necessarily
 * delay elsewhere"). Replays the queue's persist log through a
 * B-bank device to show where device contention, not ordering,
 * becomes the bottleneck.
 */

#include "bench/bench_common.hh"
#include "bench_util/table.hh"
#include "nvram/device.hh"

using namespace persim;
using namespace persim::bench;

int
main()
{
    banner("Ablation: finite NVRAM banks (epoch persistency, CWL, "
           "4 threads, 500 ns persists)",
           "the headline results assume infinite banks; few banks "
           "serialize concurrent persists and stretch total time "
           "beyond the ordering bound");

    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Racing;
    config.threads = 4;
    config.inserts_per_thread = 1500;

    TimingConfig timing = levels(ModelConfig::epoch());
    timing.record_log = true;
    PersistTimingEngine engine(timing);
    std::vector<TraceSink *> sinks{&engine};
    runQueueWorkload(config, sinks);
    const auto &log = engine.log();

    TextTable table;
    table.header({"banks", "total(us)", "ordering bound(us)",
                  "slowdown", "bank stalls"});
    for (const std::uint32_t banks : {1u, 2u, 4u, 8u, 16u, 64u, 0u}) {
        NvramConfig device = NvramConfig::pcmSlc();
        device.banks = banks;
        const auto result = replayThroughDevice(log, device);
        table.row({
            banks == 0 ? "inf" : std::to_string(banks),
            formatDouble(result.total_ns / 1e3, 1),
            formatDouble(result.ordering_bound_ns / 1e3, 1),
            formatDouble(result.total_ns /
                         std::max(result.ordering_bound_ns, 1.0), 2),
            std::to_string(result.bank_stalls),
        });
    }
    std::cout << "\n" << table.render();
    return 0;
}
