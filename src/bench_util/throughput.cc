#include "bench_util/throughput.hh"

#include <algorithm>
#include <limits>

#include "common/error.hh"

namespace persim {

double
Throughput::achievable() const
{
    return std::min(instruction_rate, persist_rate);
}

double
Throughput::normalized() const
{
    PERSIM_REQUIRE(instruction_rate > 0.0,
                   "instruction rate must be positive");
    return persist_rate / instruction_rate;
}

double
persistBoundRate(std::uint64_t ops, double critical_path,
                 double persist_latency_ns)
{
    PERSIM_REQUIRE(persist_latency_ns > 0.0,
                   "persist latency must be positive");
    if (critical_path <= 0.0)
        return std::numeric_limits<double>::infinity();
    const double seconds = critical_path * persist_latency_ns * 1e-9;
    return static_cast<double>(ops) / seconds;
}

Throughput
makeThroughput(double instruction_rate, std::uint64_t ops,
               double critical_path, double persist_latency_ns)
{
    Throughput t;
    t.instruction_rate = instruction_rate;
    t.persist_rate = persistBoundRate(ops, critical_path,
                                      persist_latency_ns);
    return t;
}

} // namespace persim
