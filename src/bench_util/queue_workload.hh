/**
 * @file
 * Shared driver for the queue microbenchmark experiments.
 *
 * Builds the paper's workload (Section 7): N threads each insert
 * entries of a fixed payload size into one persistent queue, with the
 * annotation variant under study, while the resulting trace streams
 * into caller-supplied analysis sinks.
 */

#ifndef PERSIM_BENCH_UTIL_QUEUE_WORKLOAD_HH
#define PERSIM_BENCH_UTIL_QUEUE_WORKLOAD_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "memtrace/sink.hh"
#include "persistency/model.hh"
#include "queue/queue.hh"
#include "sim/engine.hh"

namespace persim {

/**
 * Which persist annotations the queue emits (paper Table 1 columns).
 */
enum class AnnotationVariant : std::uint8_t
{
    /** Persist barriers around lock operations ("Epoch"). */
    Conservative,
    /** No barriers around locks ("Racing Epochs"): inserts
        synchronize via strong persist atomicity on the head. */
    Racing,
    /** Racing barriers plus NewStrand per insert (for strand
        persistency). */
    Strand,
};

/** Human-readable variant name. */
const char *annotationVariantName(AnnotationVariant variant);

/** Workload parameters. */
struct QueueWorkloadConfig
{
    QueueKind kind = QueueKind::CopyWhileLocked;
    AnnotationVariant variant = AnnotationVariant::Conservative;
    std::uint32_t threads = 1;
    std::uint64_t inserts_per_thread = 1000;
    std::uint64_t entry_bytes = 100; //!< Payload size (paper: 100 B).
    std::uint64_t seed = 1;
    std::uint64_t quantum = 8;       //!< Scheduler timeslice (events).

    /**
     * Data segment size in slots. 0 sizes the segment to hold every
     * insert (no wrap); a positive value fixes the segment and lets
     * the buffer wrap with overwrite, as the paper's microbenchmark
     * does (default 1024 slots).
     */
    std::uint64_t wrap_slots = 1024;

    /** Maintain the self-validating head checksum (device-fault
        campaigns pair it with RecoveryMode::DetectAndDiscard). */
    bool checksummed_head = false;

    /** Total inserts across all threads. */
    std::uint64_t totalInserts() const
    {
        return static_cast<std::uint64_t>(threads) * inserts_per_thread;
    }

    /** QueueOptions implementing this variant (capacity sized so the
        data segment never wraps during the run). */
    QueueOptions queueOptions() const;
};

/** What the driver hands back besides the sink contents. */
struct QueueWorkloadResult
{
    QueueLayout layout;
    std::map<std::uint64_t, GoldenEntry> golden;
    std::uint64_t events = 0;
    std::uint64_t inserts = 0;
};

/**
 * Run the workload, streaming every event to each sink in @p sinks
 * (all receive onFinish). Deterministic given config.seed.
 */
QueueWorkloadResult runQueueWorkload(const QueueWorkloadConfig &config,
                                     const std::vector<TraceSink *> &sinks);

/** Table-1 analysis rows: which trace variant + model each uses. */
struct AnalysisVariant
{
    std::string name;
    AnnotationVariant trace_variant;
    ModelConfig model;
};

/** The paper's four Table-1 persistency configurations. */
std::vector<AnalysisVariant> table1Variants();

} // namespace persim

#endif // PERSIM_BENCH_UTIL_QUEUE_WORKLOAD_HH
