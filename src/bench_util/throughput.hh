/**
 * @file
 * The paper's throughput model (Section 8).
 *
 * System throughput is the lower of two rates: the instruction
 * execution rate (measured natively, persists free) and the
 * persist-bound rate (persists observing their ordering constraints,
 * instruction execution free). The persist-bound rate for a workload
 * of N operations whose persist critical path is C levels at persist
 * latency L is N / (C * L).
 */

#ifndef PERSIM_BENCH_UTIL_THROUGHPUT_HH
#define PERSIM_BENCH_UTIL_THROUGHPUT_HH

#include <cstdint>

namespace persim {

/** Throughput assessment of one configuration. */
struct Throughput
{
    double instruction_rate = 0.0;  //!< Ops/s, execution-bound.
    double persist_rate = 0.0;      //!< Ops/s, persist-bound.

    /** Achievable rate: min of the two bounds. */
    double achievable() const;

    /** Persist-bound rate normalized to instruction rate (Table 1:
        >= 1 means persists keep up with execution). */
    double normalized() const;

    /** True when persists, not execution, limit throughput. */
    bool persistBound() const { return persist_rate < instruction_rate; }
};

/**
 * Persist-bound operation rate.
 * @param ops Operations in the analyzed trace.
 * @param critical_path Persist ordering critical path, in persists.
 * @param persist_latency_ns Device persist latency.
 * @return Operations per second.
 */
double persistBoundRate(std::uint64_t ops, double critical_path,
                        double persist_latency_ns);

/** Assemble a Throughput from its two bounds. */
Throughput makeThroughput(double instruction_rate, std::uint64_t ops,
                          double critical_path,
                          double persist_latency_ns);

} // namespace persim

#endif // PERSIM_BENCH_UTIL_THROUGHPUT_HH
