#include "bench_util/bench_report.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include <sys/resource.h>

#include "common/error.hh"

namespace persim {

std::uint64_t
peakRssKb()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // Linux reports ru_maxrss in KiB already.
    return static_cast<std::uint64_t>(usage.ru_maxrss);
}

void
BenchReport::add(const std::string &key, std::uint64_t events,
                 double wall_seconds)
{
    PERSIM_REQUIRE(key.find('"') == std::string::npos &&
                       key.find('\\') == std::string::npos,
                   "bench sample key must not need JSON escaping: "
                       << key);
    for (const auto &entry : entries_)
        PERSIM_REQUIRE(entry.first != key,
                       "duplicate bench sample key: " << key);
    BenchSample sample;
    sample.events = events;
    sample.wall_seconds = wall_seconds;
    sample.events_per_sec = wall_seconds > 0.0
        ? static_cast<double>(events) / wall_seconds
        : 0.0;
    sample.peak_rss_kb = peakRssKb();
    // ru_maxrss is a high-water mark, so the delta is never negative;
    // guard anyway in case getrusage failed and returned 0.
    sample.rss_delta_kb = sample.peak_rss_kb > last_peak_rss_kb_
        ? sample.peak_rss_kb - last_peak_rss_kb_
        : 0;
    last_peak_rss_kb_ = sample.peak_rss_kb;
    entries_.emplace_back(key, sample);
}

std::string
BenchReport::renderJson() const
{
    std::ostringstream oss;
    oss << "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const auto &[key, sample] = entries_[i];
        char number[64];
        oss << "  \"" << key << "\": {\n";
        oss << "    \"events\": " << sample.events << ",\n";
        std::snprintf(number, sizeof(number), "%.9g",
                      sample.wall_seconds);
        oss << "    \"wall_seconds\": " << number << ",\n";
        std::snprintf(number, sizeof(number), "%.9g",
                      sample.events_per_sec);
        oss << "    \"events_per_sec\": " << number << ",\n";
        oss << "    \"peak_rss_kb\": " << sample.peak_rss_kb << ",\n";
        oss << "    \"rss_delta_kb\": " << sample.rss_delta_kb << "\n";
        oss << "  }" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    oss << "}\n";
    return oss.str();
}

void
BenchReport::writeJson(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    PERSIM_REQUIRE(file != nullptr,
                   "cannot open bench report for writing: " << path);
    const std::string body = renderJson();
    const std::size_t written =
        std::fwrite(body.data(), 1, body.size(), file);
    const bool closed = std::fclose(file) == 0;
    PERSIM_REQUIRE(written == body.size() && closed,
                   "short write to bench report: " << path);
}

namespace {

/** Minimal scanner for the fixed document shape writeJson emits. */
class JsonScanner
{
  public:
    JsonScanner(const std::string &text, const std::string &path)
        : text_(text), path_(path)
    {
    }

    void
    expect(char c)
    {
        skipSpace();
        PERSIM_REQUIRE(at_ < text_.size() && text_[at_] == c,
                       "malformed bench report (expected '"
                           << c << "'): " << path_);
        ++at_;
    }

    bool
    peek(char c)
    {
        skipSpace();
        return at_ < text_.size() && text_[at_] == c;
    }

    std::string
    string()
    {
        expect('"');
        const std::size_t start = at_;
        while (at_ < text_.size() && text_[at_] != '"')
            ++at_;
        PERSIM_REQUIRE(at_ < text_.size(),
                       "malformed bench report (unterminated string): "
                           << path_);
        return text_.substr(start, at_++ - start);
    }

    double
    number()
    {
        skipSpace();
        const char *begin = text_.c_str() + at_;
        char *end = nullptr;
        const double value = std::strtod(begin, &end);
        PERSIM_REQUIRE(end != begin,
                       "malformed bench report (expected number): "
                           << path_);
        at_ += static_cast<std::size_t>(end - begin);
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (at_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[at_])))
            ++at_;
    }

    const std::string &text_;
    const std::string &path_;
    std::size_t at_ = 0;
};

} // namespace

std::map<std::string, BenchSample>
readBenchJson(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    PERSIM_REQUIRE(file != nullptr,
                   "cannot open bench report for reading: " << path);
    std::string text;
    char chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
        text.append(chunk, got);
    std::fclose(file);

    std::map<std::string, BenchSample> samples;
    JsonScanner scan(text, path);
    scan.expect('{');
    if (!scan.peek('}')) {
        while (true) {
            const std::string key = scan.string();
            scan.expect(':');
            scan.expect('{');
            BenchSample sample;
            while (true) {
                const std::string field = scan.string();
                scan.expect(':');
                const double value = scan.number();
                if (field == "events")
                    sample.events =
                        static_cast<std::uint64_t>(value);
                else if (field == "wall_seconds")
                    sample.wall_seconds = value;
                else if (field == "events_per_sec")
                    sample.events_per_sec = value;
                else if (field == "peak_rss_kb")
                    sample.peak_rss_kb =
                        static_cast<std::uint64_t>(value);
                else if (field == "rss_delta_kb")
                    sample.rss_delta_kb =
                        static_cast<std::uint64_t>(value);
                else
                    PERSIM_REQUIRE(false,
                                   "malformed bench report (unknown "
                                   "field '" << field
                                             << "'): " << path);
                if (scan.peek('}'))
                    break;
                scan.expect(',');
            }
            scan.expect('}');
            PERSIM_REQUIRE(samples.emplace(key, sample).second,
                           "duplicate bench report key '"
                               << key << "': " << path);
            if (scan.peek('}'))
                break;
            scan.expect(',');
        }
    }
    scan.expect('}');
    return samples;
}

} // namespace persim
