/**
 * @file
 * Machine-readable bench reporting: BENCH_replay.json.
 *
 * Every sweep/analysis bench can emit a flat JSON object mapping a
 * sample key ("fig3/epoch/replay") to the replay measurement taken
 * under it: events consumed, wall seconds, derived events/sec, and
 * the process peak RSS at sampling time. The file is the repo's perf
 * trajectory record — the perf smoke test compares a fresh run
 * against the committed baseline, and EXPERIMENTS.md quotes it.
 *
 * The format is deliberately trivial (one nesting level, no arrays,
 * no escapes in keys) so both the writer and the reader here can be
 * dependency-free; readBenchJson only promises to parse what
 * BenchReport::writeJson produces.
 */

#ifndef PERSIM_BENCH_UTIL_BENCH_REPORT_HH
#define PERSIM_BENCH_UTIL_BENCH_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace persim {

/** One measured replay sample. */
struct BenchSample
{
    std::uint64_t events = 0;       //!< Trace events consumed.
    double wall_seconds = 0.0;      //!< Replay wall time.
    double events_per_sec = 0.0;    //!< events / wall_seconds.

    /**
     * Process-wide peak RSS (getrusage ru_maxrss) at the moment the
     * sample was recorded. This is a high-water mark for the WHOLE
     * process, not the footprint of this sample's replay: it never
     * decreases across samples in one report, and early samples
     * inherit whatever setup (trace generation, prior benches) already
     * touched. Compare it across runs of the same bench binary, not
     * across keys within one file.
     */
    std::uint64_t peak_rss_kb = 0;

    /**
     * Growth of the peak-RSS high-water mark since the previous add()
     * on the same report (since BenchReport construction for the first
     * sample). When a sample's replay allocated past every earlier
     * peak, this is the new memory it needed; 0 means the sample fit
     * entirely inside memory some earlier phase already reached —
     * which is why per-key attribution needs the samples ordered
     * smallest-footprint first.
     */
    std::uint64_t rss_delta_kb = 0;
};

/** Current process peak resident set size in KiB (getrusage). */
std::uint64_t peakRssKb();

/** Accumulates samples and renders them as BENCH_replay.json. */
class BenchReport
{
  public:
    BenchReport() : last_peak_rss_kb_(peakRssKb()) {}

    /**
     * Record a sample under @p key (e.g. "fig3/epoch/replay"); the
     * events/sec and both RSS fields are derived here (rss_delta_kb
     * against the previous add(), or construction for the first).
     * Keys must be unique per report and free of '"' and '\\'.
     */
    void add(const std::string &key, std::uint64_t events,
             double wall_seconds);

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** The JSON document (insertion order, trailing newline). */
    std::string renderJson() const;

    /** Write renderJson() to @p path; fatals on I/O failure. */
    void writeJson(const std::string &path) const;

  private:
    std::vector<std::pair<std::string, BenchSample>> entries_;

    /** Peak RSS observed at the last add() (rss_delta_kb baseline). */
    std::uint64_t last_peak_rss_kb_ = 0;
};

/**
 * Parse a file written by BenchReport::writeJson back into key ->
 * sample form; fatals on a missing file or malformed document.
 */
std::map<std::string, BenchSample> readBenchJson(const std::string &path);

} // namespace persim

#endif // PERSIM_BENCH_UTIL_BENCH_REPORT_HH
