/**
 * @file
 * Machine-readable bench reporting: BENCH_replay.json.
 *
 * Every sweep/analysis bench can emit a flat JSON object mapping a
 * sample key ("fig3/epoch/replay") to the replay measurement taken
 * under it: events consumed, wall seconds, derived events/sec, and
 * the process peak RSS at sampling time. The file is the repo's perf
 * trajectory record — the perf smoke test compares a fresh run
 * against the committed baseline, and EXPERIMENTS.md quotes it.
 *
 * The format is deliberately trivial (one nesting level, no arrays,
 * no escapes in keys) so both the writer and the reader here can be
 * dependency-free; readBenchJson only promises to parse what
 * BenchReport::writeJson produces.
 */

#ifndef PERSIM_BENCH_UTIL_BENCH_REPORT_HH
#define PERSIM_BENCH_UTIL_BENCH_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace persim {

/** One measured replay sample. */
struct BenchSample
{
    std::uint64_t events = 0;       //!< Trace events consumed.
    double wall_seconds = 0.0;      //!< Replay wall time.
    double events_per_sec = 0.0;    //!< events / wall_seconds.
    std::uint64_t peak_rss_kb = 0;  //!< Process peak RSS when sampled.
};

/** Current process peak resident set size in KiB (getrusage). */
std::uint64_t peakRssKb();

/** Accumulates samples and renders them as BENCH_replay.json. */
class BenchReport
{
  public:
    /**
     * Record a sample under @p key (e.g. "fig3/epoch/replay"); the
     * events/sec and peak-RSS fields are derived here. Keys must be
     * unique per report and free of '"' and '\\'.
     */
    void add(const std::string &key, std::uint64_t events,
             double wall_seconds);

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** The JSON document (insertion order, trailing newline). */
    std::string renderJson() const;

    /** Write renderJson() to @p path; fatals on I/O failure. */
    void writeJson(const std::string &path) const;

  private:
    std::vector<std::pair<std::string, BenchSample>> entries_;
};

/**
 * Parse a file written by BenchReport::writeJson back into key ->
 * sample form; fatals on a missing file or malformed document.
 */
std::map<std::string, BenchSample> readBenchJson(const std::string &path);

} // namespace persim

#endif // PERSIM_BENCH_UTIL_BENCH_REPORT_HH
