/**
 * @file
 * Deterministic synthetic trace generator for replay benchmarking.
 *
 * The perf baseline (bench/replay_baseline.cc) and the perf smoke
 * test need a mid-size trace that (a) is produced without running the
 * execution engine — so trace construction cost never pollutes the
 * replay measurement — and (b) exercises the timing-engine hot paths
 * representatively: persistent and volatile accesses over a bounded
 * working set, unaligned multi-piece accesses, RMWs, persist
 * barriers, strands, and op markers. Generation is a pure function of
 * the config (seeded xoshiro stream), so every run replays the exact
 * same event sequence.
 */

#ifndef PERSIM_BENCH_UTIL_SYNTHETIC_TRACE_HH
#define PERSIM_BENCH_UTIL_SYNTHETIC_TRACE_HH

#include <cstdint>

#include "memtrace/sink.hh"

namespace persim {

/** Shape of a synthetic replay-bench trace. */
struct SyntheticTraceConfig
{
    std::uint64_t events = 1'000'000;
    std::uint32_t threads = 4;
    std::uint64_t seed = 2026;

    /** Persistent working set, in bytes from persistent_base. */
    std::uint64_t persistent_span = 1ULL << 16;

    /** Volatile working set, in bytes from volatile_base. */
    std::uint64_t volatile_span = 1ULL << 14;

    /**
     * Percentage of events that are volatile accesses (<= 82; the
     * remaining access weight stays persistent and the 18% of
     * ordering/marker events is fixed). The default reproduces the
     * historical store-heavy mix bit for bit; large values model
     * full-system traces where most traffic is volatile — the regime
     * scope-filtered (BPFS) analyses care about.
     */
    std::uint64_t volatile_pct = 20;
};

/** Build the trace; deterministic given @p config. */
InMemoryTrace buildSyntheticTrace(const SyntheticTraceConfig &config);

} // namespace persim

#endif // PERSIM_BENCH_UTIL_SYNTHETIC_TRACE_HH
