/**
 * @file
 * Fixed-width table rendering for experiment reports.
 */

#ifndef PERSIM_BENCH_UTIL_TABLE_HH
#define PERSIM_BENCH_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace persim {

/** Accumulates rows of cells and renders them column-aligned. */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with columns padded to their widest cell. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits significant decimal places. */
std::string formatDouble(double value, int digits = 3);

/** Format a rate as "X.XX M/s" style. */
std::string formatRate(double per_second);

} // namespace persim

#endif // PERSIM_BENCH_UTIL_TABLE_HH
