#include "bench_util/synthetic_trace.hh"

#include "common/error.hh"
#include "common/rng.hh"

namespace persim {

InMemoryTrace
buildSyntheticTrace(const SyntheticTraceConfig &config)
{
    PERSIM_REQUIRE(config.threads >= 1 && config.events >= 1,
                   "synthetic trace needs threads and events");
    Rng rng(config.seed);
    InMemoryTrace trace;
    SeqNum seq = 0;
    std::uint64_t next_op = 1;
    auto push = [&trace, &seq](ThreadId tid, EventKind kind, Addr addr,
                               unsigned size, std::uint64_t value,
                               std::uint16_t marker = 0) {
        TraceEvent event;
        event.seq = seq++;
        event.thread = tid;
        event.kind = kind;
        event.addr = addr;
        event.size = static_cast<std::uint8_t>(size);
        event.value = value;
        event.marker = marker;
        trace.onEvent(event);
    };

    // Weights mirror a store-heavy workload (the regime the paper's
    // queues live in): ~45% persistent stores/RMWs, ~20% loads, ~20%
    // volatile traffic, the rest ordering and marker events.
    for (std::uint64_t i = 0; i < config.events; ++i) {
        const auto tid =
            static_cast<ThreadId>(rng.nextBounded(config.threads));
        const std::uint64_t pick = rng.nextBounded(100);
        const Addr paddr =
            persistent_base + rng.nextBounded(config.persistent_span);
        const Addr vaddr =
            volatile_base + rng.nextBounded(config.volatile_span);
        const auto size =
            static_cast<unsigned>(1 + rng.nextBounded(max_access_size));
        if (pick < 40) {
            push(tid, EventKind::Store, paddr, size, rng.next());
        } else if (pick < 45) {
            push(tid, EventKind::Rmw, paddr, 8, rng.next());
        } else if (pick < 62) {
            push(tid, EventKind::Load, paddr, size, 0);
        } else if (pick < 74) {
            push(tid, EventKind::Store, vaddr, size, rng.next());
        } else if (pick < 82) {
            push(tid, EventKind::Load, vaddr, size, 0);
        } else if (pick < 92) {
            push(tid, EventKind::PersistBarrier, 0, 0, 0);
        } else if (pick < 95) {
            push(tid, EventKind::NewStrand, 0, 0, 0);
        } else if (pick < 97) {
            push(tid, EventKind::Marker, 0, 0, next_op++,
                 static_cast<std::uint16_t>(MarkerCode::OpBegin));
        } else {
            push(tid, EventKind::Marker, 0, 0, 0,
                 static_cast<std::uint16_t>(MarkerCode::OpEnd));
        }
    }
    return trace;
}

} // namespace persim
