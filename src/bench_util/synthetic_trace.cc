#include "bench_util/synthetic_trace.hh"

#include "common/error.hh"
#include "common/rng.hh"

namespace persim {

InMemoryTrace
buildSyntheticTrace(const SyntheticTraceConfig &config)
{
    PERSIM_REQUIRE(config.threads >= 1 && config.events >= 1,
                   "synthetic trace needs threads and events");
    Rng rng(config.seed);
    InMemoryTrace trace;
    SeqNum seq = 0;
    std::uint64_t next_op = 1;
    auto push = [&trace, &seq](ThreadId tid, EventKind kind, Addr addr,
                               unsigned size, std::uint64_t value,
                               std::uint16_t marker = 0) {
        TraceEvent event;
        event.seq = seq++;
        event.thread = tid;
        event.kind = kind;
        event.addr = addr;
        event.size = static_cast<std::uint8_t>(size);
        event.value = value;
        event.marker = marker;
        trace.onEvent(event);
    };

    // Weights mirror a store-heavy workload (the regime the paper's
    // queues live in) by default: ~45% persistent stores/RMWs, ~20%
    // loads, ~20% volatile traffic, the rest ordering and marker
    // events. volatile_pct reapportions the 82% access weight between
    // the volatile and persistent blocks, keeping the intra-block
    // store/RMW/load ratios; at the default 20 the thresholds land on
    // the historical 40/45/62/74/82 cut points exactly, so the
    // default stream is unchanged.
    PERSIM_REQUIRE(config.volatile_pct <= 82,
                   "volatile_pct must leave room for ordering events");
    const std::uint64_t vol = config.volatile_pct;
    const std::uint64_t per = 82 - vol;
    const std::uint64_t p_store = per * 40 / 62;
    const std::uint64_t p_rmw = p_store + per * 5 / 62;
    const std::uint64_t v_store = per + vol * 12 / 20;
    for (std::uint64_t i = 0; i < config.events; ++i) {
        const auto tid =
            static_cast<ThreadId>(rng.nextBounded(config.threads));
        const std::uint64_t pick = rng.nextBounded(100);
        const Addr paddr =
            persistent_base + rng.nextBounded(config.persistent_span);
        const Addr vaddr =
            volatile_base + rng.nextBounded(config.volatile_span);
        const auto size =
            static_cast<unsigned>(1 + rng.nextBounded(max_access_size));
        if (pick < p_store) {
            push(tid, EventKind::Store, paddr, size, rng.next());
        } else if (pick < p_rmw) {
            push(tid, EventKind::Rmw, paddr, 8, rng.next());
        } else if (pick < per) {
            push(tid, EventKind::Load, paddr, size, 0);
        } else if (pick < v_store) {
            push(tid, EventKind::Store, vaddr, size, rng.next());
        } else if (pick < 82) {
            push(tid, EventKind::Load, vaddr, size, 0);
        } else if (pick < 92) {
            push(tid, EventKind::PersistBarrier, 0, 0, 0);
        } else if (pick < 95) {
            push(tid, EventKind::NewStrand, 0, 0, 0);
        } else if (pick < 97) {
            push(tid, EventKind::Marker, 0, 0, next_op++,
                 static_cast<std::uint16_t>(MarkerCode::OpBegin));
        } else {
            push(tid, EventKind::Marker, 0, 0, 0,
                 static_cast<std::uint16_t>(MarkerCode::OpEnd));
        }
    }
    return trace;
}

} // namespace persim
