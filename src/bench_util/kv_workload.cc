#include "bench_util/kv_workload.hh"

#include <cmath>
#include <vector>

#include "common/error.hh"
#include "nvram/faults.hh"
#include "sim/engine.hh"

namespace persim {

ZipfianSampler::ZipfianSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    PERSIM_REQUIRE(n >= 1, "zipfian needs a nonempty rank space");
    PERSIM_REQUIRE(theta >= 0.0 && theta < 1.0,
                   "zipfian theta must be in [0, 1)");
    if (theta_ == 0.0)
        return;
    for (std::uint64_t i = 1; i <= n_; ++i)
        zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                           1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfianSampler::sample(Rng &rng) const
{
    if (theta_ == 0.0)
        return 1 + rng.nextBounded(n_);
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 1;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 2;
    const std::uint64_t rank =
        1 + static_cast<std::uint64_t>(
                static_cast<double>(n_) *
                std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank > n_ ? n_ : rank;
}

std::uint64_t
kvWorkloadKey(std::uint64_t rank, std::uint64_t key_space)
{
    // Scramble the rank so hot keys are spread over the key space.
    std::uint64_t h = rank;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return 1 + h % key_space;
}

namespace {

/** Per-thread op counters (merged after the run). */
struct ClientStats
{
    std::uint64_t puts = 0, gets = 0, erases = 0, hits = 0;
    std::array<std::uint64_t, 6> rejected{};
};

void
fillValue(std::vector<std::uint8_t> &value, std::uint64_t key,
          std::uint64_t op, std::uint32_t thread, std::uint64_t len)
{
    value.resize(len);
    for (std::uint64_t j = 0; j < len; ++j)
        value[j] = static_cast<std::uint8_t>(
            (key * 131 + op * 31 + thread * 7 + j) & 0xff);
}

} // namespace

KvWorkloadResult
runKvWorkload(const KvWorkloadConfig &config)
{
    PERSIM_REQUIRE(config.threads >= 1, "need at least one client");
    PERSIM_REQUIRE(config.key_space >= 1, "need a nonempty key space");
    PERSIM_REQUIRE(config.min_value_bytes >= 1 &&
                   config.min_value_bytes <= config.max_value_bytes,
                   "bad value size range");
    const double mix = config.put_ratio + config.get_ratio;
    PERSIM_REQUIRE(config.put_ratio >= 0 && config.get_ratio >= 0 &&
                   mix <= 1.0 + 1e-9,
                   "op ratios must be nonnegative and sum to <= 1");

    KvWorkloadResult result;
    EngineConfig engine_config;
    engine_config.seed = config.seed;
    engine_config.quantum = config.quantum;
    ExecutionEngine engine(engine_config, &result.trace);

    auto store = std::make_shared<KvStore>();
    engine.runSetup([&store, &config](ThreadCtx &ctx) {
        *store = KvStore::create(ctx, config.store, config.threads);
    });

    const ZipfianSampler sampler(config.key_space, config.zipf_theta);
    std::vector<ClientStats> stats(config.threads);
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (std::uint32_t t = 0; t < config.threads; ++t) {
        workers.push_back([store, &config, &sampler, &stats,
                           t](ThreadCtx &ctx) {
            Rng rng(mixSeed(config.seed, t + 1));
            ClientStats &mine = stats[t];
            std::vector<std::uint8_t> value;
            for (std::uint64_t i = 0; i < config.ops_per_thread; ++i) {
                const std::uint64_t key = kvWorkloadKey(
                    sampler.sample(rng), config.key_space);
                const double kind = rng.nextDouble();
                if (kind < config.put_ratio) {
                    ++mine.puts;
                    const std::uint64_t len = rng.nextRange(
                        config.min_value_bytes, config.max_value_bytes);
                    fillValue(value, key, i, t, len);
                    const KvStatus status = store->put(
                        ctx, t, key, value.data(), value.size());
                    if (status != KvStatus::Ok)
                        ++mine.rejected[static_cast<std::size_t>(
                            status)];
                } else if (kind < config.put_ratio + config.get_ratio) {
                    ++mine.gets;
                    if (store->get(ctx, key, value))
                        ++mine.hits;
                } else {
                    ++mine.erases;
                    const KvStatus status = store->erase(ctx, t, key);
                    if (status != KvStatus::Ok &&
                        status != KvStatus::NotFound)
                        ++mine.rejected[static_cast<std::size_t>(
                            status)];
                }
            }
        });
    }
    engine.run(workers);

    for (const ClientStats &s : stats) {
        result.puts += s.puts;
        result.gets += s.gets;
        result.erases += s.erases;
        result.hits += s.hits;
        for (std::size_t i = 0; i < s.rejected.size(); ++i)
            result.rejected[i] += s.rejected[i];
    }

    result.layout = store->layout();
    if (config.store.strategy == KvUpdateStrategy::LogStructured)
        result.journal = store->journalLayout();
    auto golden =
        std::make_shared<KvGoldenHistory>(store->goldenHistory());
    for (const auto &[key, versions] : *golden) {
        if (!versions.empty() && !versions.back().erased)
            ++result.live_entries;
    }
    result.golden = std::move(golden);
    return result;
}

namespace {

/** Per-thread router-op counters (merged after the run). */
struct RouterClientStats
{
    std::uint64_t puts = 0, gets = 0, erases = 0, hits = 0;
    std::uint64_t txns = 0, txns_committed = 0;
    std::uint64_t snapshots = 0, snapshots_failed = 0;
    std::uint64_t migrations = 0, migrations_rejected = 0;
    std::array<std::uint64_t, 6> rejected{};
    std::array<std::uint64_t, 7> txn_rejected{};
};

} // namespace

KvRouterWorkloadResult
runKvRouterWorkload(const KvRouterWorkloadConfig &config)
{
    PERSIM_REQUIRE(config.threads >= 1, "need at least one client");
    PERSIM_REQUIRE(config.key_space >= 1, "need a nonempty key space");
    PERSIM_REQUIRE(config.min_value_bytes >= 1 &&
                   config.min_value_bytes <= config.max_value_bytes,
                   "bad value size range");
    PERSIM_REQUIRE(config.min_txn_keys >= 1 &&
                   config.min_txn_keys <= config.max_txn_keys,
                   "bad txn key range");
    const double mix = config.txn_ratio + config.snapshot_ratio +
                       config.put_ratio + config.get_ratio;
    PERSIM_REQUIRE(config.txn_ratio >= 0 &&
                   config.snapshot_ratio >= 0 &&
                   config.put_ratio >= 0 && config.get_ratio >= 0 &&
                   mix <= 1.0 + 1e-9,
                   "op ratios must be nonnegative and sum to <= 1");

    KvRouterWorkloadResult result;
    EngineConfig engine_config;
    engine_config.seed = config.seed;
    engine_config.quantum = config.quantum;
    ExecutionEngine engine(engine_config, &result.trace);

    auto router = std::make_shared<KvRouter>();
    engine.runSetup([&router, &config](ThreadCtx &ctx) {
        *router = KvRouter::create(ctx, config.router, config.threads);
    });

    const ZipfianSampler sampler(config.key_space, config.zipf_theta);
    std::vector<RouterClientStats> stats(config.threads);
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (std::uint32_t t = 0; t < config.threads; ++t) {
        workers.push_back([router, &config, &sampler, &stats,
                           t](ThreadCtx &ctx) {
            Rng rng(mixSeed(config.seed, t + 1));
            RouterClientStats &mine = stats[t];
            std::vector<std::uint8_t> value;
            const double txn_edge = config.txn_ratio;
            const double snap_edge = txn_edge + config.snapshot_ratio;
            const double put_edge = snap_edge + config.put_ratio;
            const double get_edge = put_edge + config.get_ratio;
            for (std::uint64_t i = 0; i < config.ops_per_thread; ++i) {
                if (t == 0 && config.migrate_every != 0 &&
                    i % config.migrate_every == 0) {
                    const std::uint32_t partition =
                        static_cast<std::uint32_t>(rng.nextBounded(
                            config.router.partitions));
                    const std::uint32_t to =
                        static_cast<std::uint32_t>(
                            rng.nextBounded(config.router.shards));
                    const KvMigrateStatus status =
                        router->migrate(ctx, t, partition, to);
                    if (status == KvMigrateStatus::Ok)
                        ++mine.migrations;
                    else if (status != KvMigrateStatus::NoOp)
                        ++mine.migrations_rejected;
                }
                const double kind = rng.nextDouble();
                if (kind < txn_edge) {
                    ++mine.txns;
                    KvTxn txn;
                    const std::uint32_t nkeys =
                        static_cast<std::uint32_t>(rng.nextRange(
                            config.min_txn_keys, config.max_txn_keys));
                    for (std::uint32_t k = 0; k < nkeys; ++k) {
                        const std::uint64_t key = kvWorkloadKey(
                            sampler.sample(rng), config.key_space);
                        if (rng.nextDouble() <
                            config.txn_erase_ratio) {
                            txn.erase(key);
                        } else {
                            const std::uint64_t len = rng.nextRange(
                                config.min_value_bytes,
                                config.max_value_bytes);
                            fillValue(value, key, i, t, len);
                            txn.put(key, value.data(), value.size());
                        }
                    }
                    const KvTxnStatus status =
                        router->commit(ctx, t, txn);
                    if (status == KvTxnStatus::Committed)
                        ++mine.txns_committed;
                    else
                        ++mine.txn_rejected[static_cast<std::size_t>(
                            status)];
                } else if (kind < snap_edge) {
                    ++mine.snapshots;
                    std::vector<std::uint64_t> keys;
                    for (std::uint32_t k = 0; k < 3; ++k)
                        keys.push_back(kvWorkloadKey(
                            sampler.sample(rng), config.key_space));
                    std::map<std::uint64_t,
                             std::vector<std::uint8_t>> out;
                    std::uint64_t snapshot_seq = 0;
                    if (!router->multiGet(ctx, keys, out,
                                          snapshot_seq))
                        ++mine.snapshots_failed;
                } else if (kind < put_edge) {
                    ++mine.puts;
                    const std::uint64_t key = kvWorkloadKey(
                        sampler.sample(rng), config.key_space);
                    const std::uint64_t len = rng.nextRange(
                        config.min_value_bytes,
                        config.max_value_bytes);
                    fillValue(value, key, i, t, len);
                    const KvStatus status = router->put(
                        ctx, t, key, value.data(), value.size());
                    if (status != KvStatus::Ok)
                        ++mine.rejected[static_cast<std::size_t>(
                            status)];
                } else if (kind < get_edge) {
                    ++mine.gets;
                    const std::uint64_t key = kvWorkloadKey(
                        sampler.sample(rng), config.key_space);
                    if (router->get(ctx, key, value))
                        ++mine.hits;
                } else {
                    ++mine.erases;
                    const std::uint64_t key = kvWorkloadKey(
                        sampler.sample(rng), config.key_space);
                    const KvStatus status = router->erase(ctx, t, key);
                    if (status != KvStatus::Ok &&
                        status != KvStatus::NotFound)
                        ++mine.rejected[static_cast<std::size_t>(
                            status)];
                }
            }
        });
    }
    engine.run(workers);

    for (const RouterClientStats &s : stats) {
        result.puts += s.puts;
        result.gets += s.gets;
        result.erases += s.erases;
        result.hits += s.hits;
        result.txns += s.txns;
        result.txns_committed += s.txns_committed;
        result.snapshots += s.snapshots;
        result.snapshots_failed += s.snapshots_failed;
        result.migrations += s.migrations;
        result.migrations_rejected += s.migrations_rejected;
        for (std::size_t i = 0; i < s.rejected.size(); ++i)
            result.rejected[i] += s.rejected[i];
        for (std::size_t i = 0; i < s.txn_rejected.size(); ++i)
            result.txn_rejected[i] += s.txn_rejected[i];
    }

    result.layout = router->layout();
    result.golden = router->goldenHistory();
    result.txn_golden = router->txnGolden();
    return result;
}

} // namespace persim
