/**
 * @file
 * Deterministic KV-store workloads for benches and tests.
 *
 * runKvWorkload drives a KvStore with N client threads over a
 * configurable key space and op mix (put/get/erase ratios, zipfian or
 * uniform key popularity, variable value sizes), entirely seeded — the
 * same config always produces the same trace. Capacity rejections
 * (table/heap/journal full) are counted and skipped, exercising the
 * store's backpressure instead of dying on it.
 *
 * The zipfian sampler is the standard YCSB/Gray construction with an
 * O(n) one-time zeta precompute and O(1) draws; ranks are scrambled
 * through a 64-bit mix so the hot keys are spread across the key
 * space rather than clustered at its start.
 */

#ifndef PERSIM_BENCH_UTIL_KV_WORKLOAD_HH
#define PERSIM_BENCH_UTIL_KV_WORKLOAD_HH

#include <array>
#include <cstdint>
#include <memory>

#include "common/rng.hh"
#include "kvstore/kvstore.hh"
#include "kvstore/router.hh"
#include "memtrace/sink.hh"

namespace persim {

/** Zipfian rank sampler (theta in [0, 1)); theta = 0 is uniform. */
class ZipfianSampler
{
  public:
    ZipfianSampler(std::uint64_t n, double theta);

    /** Draw a rank in [1, n]; rank 1 is the hottest. */
    std::uint64_t sample(Rng &rng) const;

    double theta() const { return theta_; }

  private:
    std::uint64_t n_ = 0;
    double theta_ = 0.0;
    double zetan_ = 0.0;
    double eta_ = 0.0;
    double alpha_ = 0.0;
};

/** One seeded KV workload. */
struct KvWorkloadConfig
{
    /** Store geometry and update strategy. */
    KvOptions store;

    std::uint32_t threads = 4;
    std::uint64_t ops_per_thread = 1000;
    std::uint64_t key_space = 1000;

    /** Key popularity skew; 0 = uniform, 0.99 = YCSB-hot. */
    double zipf_theta = 0.0;

    /** Op mix (normalized internally; erase gets the remainder). */
    double put_ratio = 0.5;
    double get_ratio = 0.4;

    /** Value sizes drawn uniformly from [min, max]. */
    std::uint64_t min_value_bytes = 8;
    std::uint64_t max_value_bytes = 64;

    std::uint64_t seed = 1;
    std::uint64_t quantum = 4; //!< Engine scheduling quantum.
};

/** Counters and artifacts of one run. */
struct KvWorkloadResult
{
    InMemoryTrace trace;
    KvLayout layout;
    LogLayout journal; //!< Valid only under LogStructured.
    std::shared_ptr<const KvGoldenHistory> golden;

    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t erases = 0;
    std::uint64_t hits = 0; //!< get() found the key.

    /** Rejections by KvStatus enumerator (backpressure taken). */
    std::array<std::uint64_t, 6> rejected{};

    std::uint64_t live_entries = 0; //!< Final live count.

    std::uint64_t rejectedTotal() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t r : rejected)
            total += r;
        return total;
    }
};

/** Run the workload; deterministic in the config. */
KvWorkloadResult runKvWorkload(const KvWorkloadConfig &config);

/** The key a scrambled rank maps to (nonzero, < 2^63). */
std::uint64_t kvWorkloadKey(std::uint64_t rank,
                            std::uint64_t key_space);

/** One seeded router workload: single-key ops + cross-shard
    transactions + snapshot reads + shard migrations. */
struct KvRouterWorkloadConfig
{
    /** Group geometry (shards, partitions, per-shard store, ...). */
    KvRouterOptions router;

    std::uint32_t threads = 4;
    std::uint64_t ops_per_thread = 400;
    std::uint64_t key_space = 400;

    /** Key popularity skew; 0 = uniform. */
    double zipf_theta = 0.0;

    /** Op mix: txn and snapshot first, the rest split between
        put/get/erase (normalized internally; erase is remainder). */
    double txn_ratio = 0.15;
    double snapshot_ratio = 0.1;
    double put_ratio = 0.4;
    double get_ratio = 0.25;

    /** Keys per transaction, drawn uniformly from [min, max]. */
    std::uint32_t min_txn_keys = 2;
    std::uint32_t max_txn_keys = 4;

    /** Probability a staged txn op is an erase (rest are puts). */
    double txn_erase_ratio = 0.2;

    /** Thread 0 migrates a random partition every N of its ops
        (0 disables migrations). */
    std::uint64_t migrate_every = 0;

    /** Value sizes drawn uniformly from [min, max]. */
    std::uint64_t min_value_bytes = 8;
    std::uint64_t max_value_bytes = 64;

    std::uint64_t seed = 1;
    std::uint64_t quantum = 4; //!< Engine scheduling quantum.
};

/** Counters and artifacts of one router run. */
struct KvRouterWorkloadResult
{
    InMemoryTrace trace;
    KvRouterLayout layout;
    std::shared_ptr<const KvGoldenHistory> golden;
    std::shared_ptr<const KvTxnGoldenList> txn_golden;

    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t erases = 0;
    std::uint64_t hits = 0;

    std::uint64_t txns = 0;           //!< commit() attempts.
    std::uint64_t txns_committed = 0; //!< ... that returned Committed.

    std::uint64_t snapshots = 0;        //!< multiGet attempts.
    std::uint64_t snapshots_failed = 0; //!< Retry budget exhausted.

    std::uint64_t migrations = 0;          //!< Actual moves (Ok).
    std::uint64_t migrations_rejected = 0; //!< Backpressured moves.

    /** Single-key rejections by KvStatus enumerator. */
    std::array<std::uint64_t, 6> rejected{};

    /** Txn rejections by KvTxnStatus enumerator. */
    std::array<std::uint64_t, 7> txn_rejected{};
};

/** Run the router workload; deterministic in the config. */
KvRouterWorkloadResult
runKvRouterWorkload(const KvRouterWorkloadConfig &config);

} // namespace persim

#endif // PERSIM_BENCH_UTIL_KV_WORKLOAD_HH
