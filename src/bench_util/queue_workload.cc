#include "bench_util/queue_workload.hh"

#include "common/bitops.hh"
#include "common/error.hh"
#include "queue/payload.hh"

namespace persim {

const char *
annotationVariantName(AnnotationVariant variant)
{
    switch (variant) {
      case AnnotationVariant::Conservative:
        return "conservative";
      case AnnotationVariant::Racing:
        return "racing";
      case AnnotationVariant::Strand:
        return "strand";
    }
    return "unknown";
}

QueueOptions
QueueWorkloadConfig::queueOptions() const
{
    QueueOptions options;
    options.pad = 64;
    const std::uint64_t slot = alignUp(8 + entry_bytes, options.pad);
    if (wrap_slots > 0) {
        // Fixed circular segment that wraps with overwrite, like the
        // paper's 100M-insert microbenchmark.
        options.capacity = slot * wrap_slots;
        options.allow_overwrite = true;
    } else {
        // One extra slot of headroom so the overrun check never trips.
        options.capacity = slot * (totalInserts() + 1);
    }
    options.conservative_barriers =
        (variant == AnnotationVariant::Conservative);
    options.use_strands = (variant == AnnotationVariant::Strand);
    options.barrier_before_publish = true;
    options.checksummed_head = checksummed_head;
    return options;
}

QueueWorkloadResult
runQueueWorkload(const QueueWorkloadConfig &config,
                 const std::vector<TraceSink *> &sinks)
{
    PERSIM_REQUIRE(config.threads >= 1, "need at least one thread");
    PERSIM_REQUIRE(config.entry_bytes >= min_payload_bytes,
                   "entry too small");

    FanoutSink fanout;
    for (auto *sink : sinks)
        fanout.addSink(sink);

    EngineConfig engine_config;
    engine_config.seed = config.seed;
    engine_config.quantum = config.quantum;
    ExecutionEngine engine(engine_config, &fanout);

    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = createQueue(ctx, config.kind, config.queueOptions(),
                            config.threads);
    });

    std::vector<ExecutionEngine::WorkerFn> workers;
    const std::uint64_t per_thread = config.inserts_per_thread;
    const std::uint64_t entry_bytes = config.entry_bytes;
    for (std::uint32_t t = 0; t < config.threads; ++t) {
        workers.push_back([&queue, t, per_thread, entry_bytes]
                          (ThreadCtx &ctx) {
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                const std::uint64_t op_id =
                    static_cast<std::uint64_t>(t) * per_thread + i + 1;
                const auto payload = makePayload(op_id, entry_bytes);
                queue->insert(ctx, t, payload.data(), entry_bytes, op_id);
            }
        });
    }
    engine.run(workers);

    QueueWorkloadResult result;
    result.layout = queue->layout();
    result.golden = queue->golden();
    result.events = engine.eventCount();
    result.inserts = config.totalInserts();
    return result;
}

std::vector<AnalysisVariant>
table1Variants()
{
    return {
        {"Strict", AnnotationVariant::Conservative, ModelConfig::strict()},
        {"Epoch", AnnotationVariant::Conservative, ModelConfig::epoch()},
        {"RacingEpochs", AnnotationVariant::Racing, ModelConfig::epoch()},
        {"Strand", AnnotationVariant::Strand, ModelConfig::strand()},
    };
}

} // namespace persim
