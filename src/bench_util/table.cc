#include "bench_util/table.hh"

#include <iomanip>
#include <sstream>

namespace persim {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto widen = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::ostringstream oss;
    auto emit = [&oss, &widths](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                oss << "  ";
            oss << std::left << std::setw(static_cast<int>(widths[i]))
                << cells[i];
        }
        oss << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i > 0 ? 2 : 0);
        oss << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    return oss.str();
}

std::string
formatDouble(double value, int digits)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(digits) << value;
    return oss.str();
}

std::string
formatRate(double per_second)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(3);
    if (per_second >= 1e6) {
        oss << per_second / 1e6 << " M/s";
    } else if (per_second >= 1e3) {
        oss << per_second / 1e3 << " K/s";
    } else {
        oss << per_second << " /s";
    }
    return oss.str();
}

} // namespace persim
