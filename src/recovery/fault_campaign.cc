#include "recovery/fault_campaign.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/error.hh"
#include "common/rng.hh"
#include "common/task_pool.hh"

namespace persim {
namespace {

/** Build the crash image for one sample under the campaign's model. */
MemoryImage
sampleImage(const FaultModel &model, const PersistLog &log,
            double crash_time, std::uint64_t fault_seed,
            FaultOutcome *outcome)
{
    return model.crashImage(log, crash_time, fault_seed, outcome);
}

/** Per-realization partial result; merged in realization order. */
struct RealizationResult
{
    std::uint64_t samples = 0;
    std::uint64_t violations = 0;
    std::vector<ViolationRecord> recorded;
};

/**
 * Evaluate every crash time of one realization. @p crash_times must
 * already contain the boundary samples; index c's fault stream is
 * mixSeed(realization_seed, c), so outcomes do not depend on how the
 * schedule was partitioned across workers.
 */
RealizationResult
runRealization(const InMemoryTrace &trace,
               const FaultCampaignConfig &config,
               const FaultModel &model, const RecoveryInvariant &invariant,
               std::uint64_t realization, std::uint64_t realization_seed,
               const std::vector<double> &crash_fractions,
               std::uint64_t record_cap)
{
    const PersistLog log =
        stochasticLog(trace, config.injection.model, realization_seed,
                      config.injection.mean_latency);
    double span = 0.0;
    for (const auto &record : log)
        span = std::max(span, record.time);

    std::vector<double> crash_times;
    crash_times.reserve(crash_fractions.size() + 2);
    crash_times.push_back(-1.0);       // Nothing persisted.
    crash_times.push_back(span + 1.0); // Everything persisted.
    for (const double fraction : crash_fractions)
        crash_times.push_back(fraction * span);

    RealizationResult out;
    const bool faulty = config.faults.enabled();
    for (std::size_t c = 0; c < crash_times.size(); ++c) {
        const double t = crash_times[c];
        const std::uint64_t fault_seed = mixSeed(realization_seed, c);
        ++out.samples;
        FaultOutcome outcome;
        const MemoryImage image = sampleImage(
            model, log, t, fault_seed, faulty ? &outcome : nullptr);
        const std::string verdict = invariant(image);
        if (verdict.empty())
            continue;
        ++out.violations;
        if (out.recorded.size() >= record_cap)
            continue;
        ViolationRecord violation;
        violation.realization = realization;
        violation.realization_seed = realization_seed;
        violation.crash_time = t;
        violation.fault_seed = fault_seed;
        violation.verdict = verdict;
        if (faulty && outcome.total() > 0)
            violation.fault_summary = outcome.summary();
        out.recorded.push_back(std::move(violation));
    }
    return out;
}

/** Fold one realization's partials into the campaign result. */
void
mergeRealization(InjectionResult &result, const RealizationResult &part,
                 std::uint64_t record_cap, bool degenerate)
{
    result.samples += part.samples;
    result.violations += part.violations;
    for (const ViolationRecord &violation : part.recorded) {
        if (result.first_violation.empty()) {
            std::ostringstream oss;
            if (degenerate)
                oss << "degenerate log, crash t=";
            else
                oss << "realization " << violation.realization
                    << ", crash t=";
            oss << violation.crash_time << ": " << violation.verdict;
            if (!violation.fault_summary.empty())
                oss << " [" << violation.fault_summary << "]";
            result.first_violation = oss.str();
            result.first_violation_time = violation.crash_time;
        }
        if (result.violation_list.size() < record_cap)
            result.violation_list.push_back(violation);
    }
}

} // namespace

InjectionResult
runFaultCampaign(const InMemoryTrace &trace,
                 const FaultCampaignConfig &config,
                 const RecoveryInvariant &invariant)
{
    config.faults.validate();
    InjectionResult result;
    Rng rng(config.injection.seed);
    const FaultModel model(config.faults, trace);
    const std::uint64_t record_cap =
        config.injection.max_recorded_violations;

    // Degenerate traces have a closed-form crash-state set; evaluate
    // it directly instead of sampling a zero-width time span. Zero
    // persists (including the empty trace) expose only the empty
    // image; one persist exposes exactly {empty, that persist}.
    {
        const PersistLog log =
            stochasticLog(trace, config.injection.model,
                          config.injection.seed,
                          config.injection.mean_latency);
        if (log.size() <= 1) {
            std::vector<double> crash_times{-1.0};
            if (log.size() == 1)
                crash_times.push_back(log[0].time + 1.0);
            RealizationResult part;
            const bool faulty = config.faults.enabled();
            for (std::size_t c = 0; c < crash_times.size(); ++c) {
                const double t = crash_times[c];
                const std::uint64_t fault_seed =
                    mixSeed(config.injection.seed, c);
                ++part.samples;
                FaultOutcome outcome;
                const MemoryImage image = sampleImage(
                    model, log, t, fault_seed,
                    faulty ? &outcome : nullptr);
                const std::string verdict = invariant(image);
                if (verdict.empty())
                    continue;
                ++part.violations;
                ViolationRecord violation;
                violation.realization = 0;
                violation.realization_seed = config.injection.seed;
                violation.crash_time = t;
                violation.fault_seed = fault_seed;
                violation.verdict = verdict;
                if (faulty && outcome.total() > 0)
                    violation.fault_summary = outcome.summary();
                part.recorded.push_back(std::move(violation));
            }
            mergeRealization(result, part, record_cap, true);
            return result;
        }
    }

    // Draw the whole sampling schedule up front, in exactly the order
    // the serial loop always drew it (per realization: the timing
    // seed, then the crash-time fractions). The schedule is then
    // embarrassingly parallel and the merge below is deterministic,
    // so serial and parallel runs are bit-identical.
    const std::uint64_t realizations = config.injection.realizations;
    std::vector<std::uint64_t> seeds(realizations);
    std::vector<std::vector<double>> fractions(realizations);
    for (std::uint64_t r = 0; r < realizations; ++r) {
        seeds[r] = rng.next();
        fractions[r].resize(config.injection.crashes_per_realization);
        for (double &fraction : fractions[r])
            fraction = rng.nextDouble();
    }

    std::vector<RealizationResult> parts(realizations);
    const unsigned jobs = config.injection.jobs == 0
        ? TaskPool::defaultWorkers() : config.injection.jobs;
    auto body = [&](std::size_t r) {
        parts[r] = runRealization(trace, config, model, invariant, r,
                                  seeds[r], fractions[r], record_cap);
    };
    if (jobs <= 1 || realizations <= 1) {
        for (std::uint64_t r = 0; r < realizations; ++r)
            body(r);
    } else {
        TaskPool pool(static_cast<std::uint32_t>(
            std::min<std::uint64_t>(jobs, realizations)));
        pool.parallelFor(realizations, body);
    }

    for (std::uint64_t r = 0; r < realizations; ++r)
        mergeRealization(result, parts[r], record_cap, false);
    return result;
}

std::string
formatFaultRepro(const FaultRepro &repro)
{
    // %a round-trips the crash time exactly; seeds are hex words.
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "seed=0x%llx crash=%a fault_seed=0x%llx",
                  static_cast<unsigned long long>(
                      repro.realization_seed),
                  repro.crash_time,
                  static_cast<unsigned long long>(repro.fault_seed));
    return buf;
}

std::string
violationRepro(const ViolationRecord &violation)
{
    FaultRepro repro;
    repro.realization_seed = violation.realization_seed;
    repro.crash_time = violation.crash_time;
    repro.fault_seed = violation.fault_seed;
    std::ostringstream oss;
    oss << "repro " << formatFaultRepro(repro) << " # "
        << violation.verdict;
    if (!violation.fault_summary.empty())
        oss << " [" << violation.fault_summary << "]";
    return oss.str();
}

bool
parseFaultRepro(const std::string &line, FaultRepro &out)
{
    const std::size_t at = line.find("seed=");
    if (at == std::string::npos)
        return false;
    unsigned long long seed = 0;
    double crash = 0.0;
    unsigned long long fault_seed = 0;
    if (std::sscanf(line.c_str() + at,
                    "seed=%llx crash=%la fault_seed=%llx", &seed,
                    &crash, &fault_seed) != 3)
        return false;
    out.realization_seed = seed;
    out.crash_time = crash;
    out.fault_seed = fault_seed;
    return true;
}

std::string
replayFaultRepro(const InMemoryTrace &trace,
                 const FaultCampaignConfig &config,
                 const FaultRepro &repro,
                 const RecoveryInvariant &invariant,
                 FaultOutcome *outcome)
{
    config.faults.validate();
    const FaultModel model(config.faults, trace);
    // A repro is one realization, so there is no outer fan-out to
    // soak up InjectionConfig::jobs; spend it on segment-parallel
    // replay instead (bit-identical to the campaign's serial one).
    const std::uint32_t jobs = config.injection.jobs == 0
        ? TaskPool::defaultWorkers() : config.injection.jobs;
    const PersistLog log =
        stochasticLog(trace, config.injection.model,
                      repro.realization_seed,
                      config.injection.mean_latency, jobs);
    const MemoryImage image = model.crashImage(
        log, repro.crash_time, repro.fault_seed, outcome);
    return invariant(image);
}

} // namespace persim
