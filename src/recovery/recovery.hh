/**
 * @file
 * The recovery observer (paper Section 4).
 *
 * The paper reasons about failure via a recovery observer that
 * atomically reads all of persistent memory at the moment of failure;
 * the states it may observe are exactly the downward-closed cuts of
 * the persist partial order. This module realizes the observer:
 *
 *  - run the trace through a stochastic-clock timing engine, giving
 *    each persist a completion time that respects every constraint of
 *    the chosen persistency model (a random realization of NVRAM
 *    completion);
 *  - crash at time T: the persistent image contains precisely the
 *    persists with completion time <= T (a legal cut by
 *    construction);
 *  - reconstruct the image and run a workload-specific recovery
 *    invariant against it.
 *
 * Failure injection sweeps many crash times over many stochastic
 * realizations; a single surviving violation proves the annotation
 * scheme insufficient for the model (this is how the tests
 * demonstrate that Algorithm 1's barriers are required).
 */

#ifndef PERSIM_RECOVERY_RECOVERY_HH
#define PERSIM_RECOVERY_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "memtrace/sink.hh"
#include "persistency/model.hh"
#include "persistency/persist_log.hh"
#include "persistency/timing_engine.hh"
#include "sim/memory_image.hh"

namespace persim {

/**
 * Reconstruct the persistent memory image at crash time @p crash_time
 * from a persist log: apply, in trace order, every record whose
 * completion time is <= crash_time. (Same-address persists have
 * non-decreasing times — strong persist atomicity — so trace order
 * resolves ties, including coalesced groups.)
 */
MemoryImage reconstructImage(const PersistLog &log, double crash_time);

/**
 * Validate internal consistency of a persist log:
 *  - each record's time is >= its binding dependence's time, strictly
 *    greater unless coalesced;
 *  - persists to the same (8-byte) address have non-decreasing times;
 *  - each record's in-flight window [start, time) is well-formed and
 *    anchored to its binding: a non-coalesced persist starts when its
 *    binding dependence completes, a coalesced piece shares its
 *    group's start, and an unconstrained persist starts at 0.
 * @return Empty string if consistent, else a description.
 */
std::string verifyLogConsistency(const PersistLog &log);

/**
 * A workload-specific recovery invariant: inspects a crashed image
 * and returns an empty string when recovery would succeed, else a
 * description of the corruption.
 */
using RecoveryInvariant = std::function<std::string(const MemoryImage &)>;

/**
 * One invariant failure, with everything needed to replay the exact
 * crash state that produced it (see fault_campaign.hh's
 * formatFaultRepro / replayFaultRepro).
 */
struct ViolationRecord
{
    std::uint64_t realization = 0;      //!< Realization index.
    std::uint64_t realization_seed = 0; //!< Stochastic-clock seed.
    double crash_time = -1.0;           //!< Sampled crash time.
    std::uint64_t fault_seed = 0;       //!< Per-sample fault stream.
    std::string verdict;                //!< Invariant output.
    std::string fault_summary;          //!< Injected faults (empty on
                                        //!< a fault-free campaign).
};

/** Outcome of a failure-injection campaign. */
struct InjectionResult
{
    std::uint64_t samples = 0;    //!< Crash states examined.
    std::uint64_t violations = 0; //!< States failing the invariant.
    std::string first_violation;  //!< Description of the first failure.
    double first_violation_time = -1.0;

    /** First InjectionConfig::max_recorded_violations failures, in
        deterministic (realization, crash index) order. */
    std::vector<ViolationRecord> violation_list;

    bool ok() const { return violations == 0; }
};

/** Failure-injection campaign parameters. */
struct InjectionConfig
{
    ModelConfig model;

    /** Independent stochastic timing realizations. */
    std::uint64_t realizations = 4;

    /** Crash times sampled per realization. */
    std::uint64_t crashes_per_realization = 64;

    /** Seed for timing realizations and crash-time sampling. */
    std::uint64_t seed = 1;

    /** Mean persist latency for the stochastic clock. */
    double mean_latency = 1.0;

    /** Worker threads for the realization fan-out on the shared
        TaskPool: 1 = run inline, 0 = hardware concurrency. Results
        are bit-identical at any setting. */
    unsigned jobs = 1;

    /** Cap on InjectionResult::violation_list. */
    std::uint64_t max_recorded_violations = 16;
};

/**
 * Run failure injection: for each stochastic realization of persist
 * completion times under @p config.model, sample crash times
 * (uniformly over the realization's time span, plus the boundary
 * cases "nothing persisted" and "everything persisted") and check
 * @p invariant on each reconstructed image.
 */
InjectionResult injectFailures(const InMemoryTrace &trace,
                               const InjectionConfig &config,
                               const RecoveryInvariant &invariant);

/**
 * Convenience: analyze @p trace with a stochastic clock under
 * @p model and return the persist log. @p jobs > 1 replays through
 * the segment-parallel path (persistency/segment_replay.hh), which
 * is bit-identical to serial replay — stochastic clock draws happen
 * in the serial stitch, so the log does not depend on @p jobs.
 */
PersistLog stochasticLog(const InMemoryTrace &trace,
                         const ModelConfig &model, std::uint64_t seed,
                         double mean_latency = 1.0,
                         std::uint32_t jobs = 1);

} // namespace persim

#endif // PERSIM_RECOVERY_RECOVERY_HH
