#include "recovery/recovery.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/error.hh"
#include "common/rng.hh"
#include "persistency/segment_replay.hh"
#include "recovery/fault_campaign.hh"

namespace persim {

MemoryImage
reconstructImage(const PersistLog &log, double crash_time)
{
    MemoryImage image;
    for (const auto &record : log) {
        if (record.time <= crash_time)
            image.store(record.addr, record.size, record.value);
    }
    return image;
}

std::string
verifyLogConsistency(const PersistLog &log)
{
    std::unordered_map<std::uint64_t, double> last_time_by_word;
    for (std::size_t i = 0; i < log.size(); ++i) {
        const auto &record = log[i];
        if (record.id != i) {
            std::ostringstream oss;
            oss << "record " << i << " has id " << record.id;
            return oss.str();
        }
        if (record.start > record.time) {
            std::ostringstream oss;
            oss << "record " << i << " has an inverted in-flight "
                << "window [" << record.start << ", " << record.time
                << ")";
            return oss.str();
        }
        if (record.binding != invalid_persist) {
            if (record.binding >= i) {
                std::ostringstream oss;
                oss << "record " << i << " binds forward to "
                    << record.binding;
                return oss.str();
            }
            const double pred = log[record.binding].time;
            const bool coalesced =
                record.binding_source == DepSource::Coalesced;
            if (coalesced ? record.time != pred : record.time <= pred) {
                std::ostringstream oss;
                oss << "record " << i << " (t=" << record.time
                    << ") does not follow its binding "
                    << record.binding << " (t=" << pred << ", "
                    << depSourceName(record.binding_source) << ")";
                return oss.str();
            }
            // The device write begins when the binding completes: at
            // the group's start for a coalesced piece, at the binding
            // persist's completion time otherwise.
            const double expected_start =
                coalesced ? log[record.binding].start : pred;
            if (record.start != expected_start) {
                std::ostringstream oss;
                oss << "record " << i << " starts at " << record.start
                    << " but its binding " << record.binding
                    << " anchors it at " << expected_start;
                return oss.str();
            }
        } else if (record.start != 0.0) {
            std::ostringstream oss;
            oss << "record " << i
                << " is unconstrained yet starts at " << record.start;
            return oss.str();
        }
        // Strong persist atomicity: same-word persists never go back
        // in time.
        const std::uint64_t word = record.addr / 8;
        auto it = last_time_by_word.find(word);
        if (it != last_time_by_word.end() && record.time < it->second) {
            std::ostringstream oss;
            oss << "record " << i << " violates strong persist "
                << "atomicity at word 0x" << std::hex << record.addr;
            return oss.str();
        }
        last_time_by_word[word] =
            it == last_time_by_word.end()
            ? record.time : std::max(it->second, record.time);
    }
    return "";
}

PersistLog
stochasticLog(const InMemoryTrace &trace, const ModelConfig &model,
              std::uint64_t seed, double mean_latency,
              std::uint32_t jobs)
{
    TimingConfig config;
    config.model = model;
    config.clock = ClockMode::Stochastic;
    config.seed = seed;
    config.mean_latency = mean_latency;
    config.record_log = true;
    if (jobs > 1) {
        SegmentReplayOptions options;
        options.jobs = jobs;
        PersistLog log;
        (void)segmentReplay(trace, config, options, &log);
        return log;
    }
    PersistTimingEngine engine(config);
    trace.replay(engine);
    return engine.takeLog();
}

InjectionResult
injectFailures(const InMemoryTrace &trace, const InjectionConfig &config,
               const RecoveryInvariant &invariant)
{
    // A fault-free campaign over a perfect device: one code path
    // serves both, so the fault machinery can never drift away from
    // the baseline observer semantics.
    FaultCampaignConfig campaign;
    campaign.injection = config;
    return runFaultCampaign(trace, campaign, invariant);
}

} // namespace persim
