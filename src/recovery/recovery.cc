#include "recovery/recovery.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/error.hh"
#include "common/rng.hh"

namespace persim {

MemoryImage
reconstructImage(const PersistLog &log, double crash_time)
{
    MemoryImage image;
    for (const auto &record : log) {
        if (record.time <= crash_time)
            image.store(record.addr, record.size, record.value);
    }
    return image;
}

std::string
verifyLogConsistency(const PersistLog &log)
{
    std::unordered_map<std::uint64_t, double> last_time_by_word;
    for (std::size_t i = 0; i < log.size(); ++i) {
        const auto &record = log[i];
        if (record.id != i) {
            std::ostringstream oss;
            oss << "record " << i << " has id " << record.id;
            return oss.str();
        }
        if (record.binding != invalid_persist) {
            if (record.binding >= i) {
                std::ostringstream oss;
                oss << "record " << i << " binds forward to "
                    << record.binding;
                return oss.str();
            }
            const double pred = log[record.binding].time;
            const bool coalesced =
                record.binding_source == DepSource::Coalesced;
            if (coalesced ? record.time != pred : record.time <= pred) {
                std::ostringstream oss;
                oss << "record " << i << " (t=" << record.time
                    << ") does not follow its binding "
                    << record.binding << " (t=" << pred << ", "
                    << depSourceName(record.binding_source) << ")";
                return oss.str();
            }
        }
        // Strong persist atomicity: same-word persists never go back
        // in time.
        const std::uint64_t word = record.addr / 8;
        auto it = last_time_by_word.find(word);
        if (it != last_time_by_word.end() && record.time < it->second) {
            std::ostringstream oss;
            oss << "record " << i << " violates strong persist "
                << "atomicity at word 0x" << std::hex << record.addr;
            return oss.str();
        }
        last_time_by_word[word] =
            it == last_time_by_word.end()
            ? record.time : std::max(it->second, record.time);
    }
    return "";
}

PersistLog
stochasticLog(const InMemoryTrace &trace, const ModelConfig &model,
              std::uint64_t seed, double mean_latency)
{
    TimingConfig config;
    config.model = model;
    config.clock = ClockMode::Stochastic;
    config.seed = seed;
    config.mean_latency = mean_latency;
    config.record_log = true;
    PersistTimingEngine engine(config);
    trace.replay(engine);
    return engine.takeLog();
}

InjectionResult
injectFailures(const InMemoryTrace &trace, const InjectionConfig &config,
               const RecoveryInvariant &invariant)
{
    InjectionResult result;
    Rng rng(config.seed);

    // Degenerate traces have a closed-form crash-state set; evaluate
    // it directly instead of sampling a zero-width time span. Zero
    // persists (including the empty trace) expose only the empty
    // image; one persist exposes exactly {empty, that persist}.
    {
        const PersistLog log =
            stochasticLog(trace, config.model, config.seed,
                          config.mean_latency);
        if (log.size() <= 1) {
            std::vector<double> crash_times{-1.0};
            if (log.size() == 1)
                crash_times.push_back(log[0].time + 1.0);
            for (const double t : crash_times) {
                ++result.samples;
                const MemoryImage image = reconstructImage(log, t);
                const std::string verdict = invariant(image);
                if (!verdict.empty()) {
                    ++result.violations;
                    if (result.first_violation.empty()) {
                        std::ostringstream oss;
                        oss << "degenerate log, crash t=" << t << ": "
                            << verdict;
                        result.first_violation = oss.str();
                        result.first_violation_time = t;
                    }
                }
            }
            return result;
        }
    }

    for (std::uint64_t r = 0; r < config.realizations; ++r) {
        const PersistLog log =
            stochasticLog(trace, config.model, rng.next(),
                          config.mean_latency);
        double span = 0.0;
        for (const auto &record : log)
            span = std::max(span, record.time);

        std::vector<double> crash_times;
        crash_times.push_back(-1.0);       // Nothing persisted.
        crash_times.push_back(span + 1.0); // Everything persisted.
        for (std::uint64_t c = 0; c < config.crashes_per_realization; ++c)
            crash_times.push_back(rng.nextDouble() * span);

        for (const double t : crash_times) {
            ++result.samples;
            const MemoryImage image = reconstructImage(log, t);
            const std::string verdict = invariant(image);
            if (!verdict.empty()) {
                ++result.violations;
                if (result.first_violation.empty()) {
                    std::ostringstream oss;
                    oss << "realization " << r << ", crash t=" << t
                        << ": " << verdict;
                    result.first_violation = oss.str();
                    result.first_violation_time = t;
                }
            }
        }
    }
    return result;
}

} // namespace persim
