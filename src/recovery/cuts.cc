#include "recovery/cuts.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.hh"

namespace persim {

PersistDag
buildPersistDag(const PersistLog &log)
{
    PersistDag dag;
    dag.group_of_record.resize(log.size());

    // Pass 1: group membership. A record either founds a new group or
    // (Coalesced binding) joins the group of the member it merged
    // behind.
    std::vector<std::uint32_t> founder_record;
    for (std::size_t i = 0; i < log.size(); ++i) {
        const PersistRecord &record = log[i];
        PERSIM_REQUIRE(record.id == i, "persist log ids must be dense");
        if (record.binding_source == DepSource::Coalesced) {
            PERSIM_REQUIRE(record.binding < i,
                           "coalesced record binds forward");
            dag.group_of_record[i] = dag.group_of_record[record.binding];
        } else {
            PERSIM_REQUIRE(record.binding == invalid_persist ||
                           !record.deps.empty(),
                           "persist log lacks dependence sets: record "
                           "the trace with TimingConfig::record_deps");
            dag.group_of_record[i] =
                static_cast<std::uint32_t>(dag.groups.size());
            dag.groups.emplace_back();
            dag.groups.back().time = record.time;
            founder_record.push_back(static_cast<std::uint32_t>(i));
        }
        dag.groups[dag.group_of_record[i]].records.push_back(i);
    }

    // Pass 2: edges. Every dependence outside the record's own group
    // is a direct predecessor of the group.
    for (std::size_t i = 0; i < log.size(); ++i) {
        const std::uint32_t g = dag.group_of_record[i];
        for (const PersistId d : log[i].deps) {
            PERSIM_REQUIRE(d < i, "dependence on a later persist");
            const std::uint32_t pg = dag.group_of_record[d];
            if (pg != g)
                dag.groups[g].preds.push_back(pg);
        }
    }

    // Pass 3: topological renumbering by (time, founder). Constraint
    // edges strictly increase completion time, so this order is
    // topological; ties (unordered groups) break by founding record.
    std::vector<std::uint32_t> order(dag.groups.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (dag.groups[a].time != dag.groups[b].time)
                      return dag.groups[a].time < dag.groups[b].time;
                  return founder_record[a] < founder_record[b];
              });
    std::vector<std::uint32_t> new_id(dag.groups.size());
    for (std::uint32_t pos = 0; pos < order.size(); ++pos)
        new_id[order[pos]] = pos;

    PersistDag sorted;
    sorted.group_of_record.resize(log.size());
    sorted.groups.resize(dag.groups.size());
    for (std::size_t i = 0; i < log.size(); ++i)
        sorted.group_of_record[i] = new_id[dag.group_of_record[i]];
    for (std::uint32_t old = 0; old < dag.groups.size(); ++old) {
        PersistDag::Group &group = sorted.groups[new_id[old]];
        group = std::move(dag.groups[old]);
        for (std::uint32_t &pred : group.preds) {
            pred = new_id[pred];
            PERSIM_ASSERT(pred < new_id[old],
                          "constraint edge does not increase time");
        }
        std::sort(group.preds.begin(), group.preds.end());
        group.preds.erase(
            std::unique(group.preds.begin(), group.preds.end()),
            group.preds.end());
    }
    return sorted;
}

namespace {

/** One saved word for undoing a group application. */
struct UndoEntry
{
    Addr addr;
    std::uint8_t size;
    std::uint64_t old_value;
};

/** Apply @p group's records to @p image, saving undo state. */
void
applyGroup(const PersistLog &log, const PersistDag::Group &group,
           MemoryImage &image, std::vector<UndoEntry> &undo)
{
    for (const std::size_t i : group.records) {
        const PersistRecord &record = log[i];
        undo.push_back(UndoEntry{
            record.addr, record.size,
            image.load(record.addr, record.size)});
        image.store(record.addr, record.size, record.value);
    }
}

void
undoGroup(MemoryImage &image, std::vector<UndoEntry> &undo,
          std::size_t mark)
{
    while (undo.size() > mark) {
        const UndoEntry &entry = undo.back();
        image.store(entry.addr, entry.size, entry.old_value);
        undo.pop_back();
    }
}

} // namespace

CutCheckResult
checkAllCuts(const PersistLog &log, const PersistDag &dag,
             const RecoveryInvariant &invariant, std::uint64_t max_cuts)
{
    CutCheckResult result;
    const std::size_t n = dag.groupCount();
    std::vector<char> included(n, 0);
    MemoryImage image;
    std::vector<UndoEntry> undo;
    bool stop = false;
    std::vector<std::uint32_t> chosen;

    // Depth-first over groups in topological order: each complete
    // include/exclude assignment that respects predecessor closure is
    // exactly one consistent cut. The image is maintained
    // incrementally (apply on include, word-level undo on backtrack),
    // so enumerating C cuts costs O(C + total writes), not O(C * log).
    auto visit = [&](auto &&self, std::size_t i) -> void {
        if (stop)
            return;
        if (i == n) {
            ++result.cuts;
            const std::string verdict = invariant(image);
            if (!verdict.empty()) {
                ++result.violations;
                if (result.first_violation.empty()) {
                    result.first_violation = verdict;
                    result.first_violation_groups = chosen;
                }
            }
            if (max_cuts > 0 && result.cuts >= max_cuts) {
                stop = true;
                result.budget_exhausted = true;
            }
            return;
        }
        const PersistDag::Group &group = dag.groups[i];
        const bool can_include = std::all_of(
            group.preds.begin(), group.preds.end(),
            [&](std::uint32_t p) { return included[p] != 0; });
        // Exclude branch first: cuts grow from empty toward complete,
        // so truncation by budget still covers the small crash states.
        self(self, i + 1);
        if (!can_include || stop)
            return;
        const std::size_t mark = undo.size();
        applyGroup(log, group, image, undo);
        included[i] = 1;
        chosen.push_back(static_cast<std::uint32_t>(i));
        self(self, i + 1);
        chosen.pop_back();
        included[i] = 0;
        undoGroup(image, undo, mark);
    };
    visit(visit, 0);
    return result;
}

std::vector<char>
observedGroupMask(const PersistLog &log, const PersistDag &dag,
                  const std::vector<AddrRange> &observed)
{
    std::vector<char> mask(dag.groupCount(), 0);
    for (std::size_t i = 0; i < log.size(); ++i) {
        const PersistRecord &record = log[i];
        for (const AddrRange &range : observed) {
            if (record.addr < range.addr + range.size &&
                range.addr < record.addr + record.size) {
                mask[dag.group_of_record[i]] = 1;
                break;
            }
        }
    }
    return mask;
}

std::vector<std::uint32_t>
downwardClosure(const PersistDag &dag,
                const std::vector<std::uint32_t> &groups)
{
    std::vector<char> included(dag.groupCount(), 0);
    for (const std::uint32_t g : groups) {
        PERSIM_REQUIRE(g < dag.groupCount(), "cut names unknown group");
        included[g] = 1;
    }
    // Ids are topologically sorted, so predecessors are strictly
    // smaller and one descending pass reaches the fixpoint.
    for (std::uint32_t g = static_cast<std::uint32_t>(dag.groupCount());
         g-- > 0;) {
        if (!included[g])
            continue;
        for (const std::uint32_t p : dag.groups[g].preds)
            included[p] = 1;
    }
    std::vector<std::uint32_t> closure;
    for (std::uint32_t g = 0; g < dag.groupCount(); ++g)
        if (included[g])
            closure.push_back(g);
    return closure;
}

CutCheckResult
checkObservedCuts(const PersistLog &log, const PersistDag &dag,
                  const RecoveryInvariant &invariant,
                  const std::vector<AddrRange> &observed,
                  std::uint64_t max_cuts)
{
    const std::size_t n = dag.groupCount();
    const std::vector<char> mask = observedGroupMask(log, dag, observed);

    // Observed groups, in (topological) id order, plus each group's
    // dense position among them.
    std::vector<std::uint32_t> obs;
    std::vector<std::uint32_t> obs_pos(n, ~0u);
    for (std::uint32_t g = 0; g < n; ++g) {
        if (mask[g]) {
            obs_pos[g] = static_cast<std::uint32_t>(obs.size());
            obs.push_back(g);
        }
    }
    if (obs.size() == n)
        return checkAllCuts(log, dag, invariant, max_cuts);

    CutCheckResult result;
    if (obs.empty()) {
        // No persist touches observed state: every crash state
        // projects to the same observable image. One check decides.
        ++result.cuts;
        const MemoryImage image;
        const std::string verdict = invariant(image);
        if (!verdict.empty()) {
            ++result.violations;
            result.first_violation = verdict;
        }
        return result;
    }

    // anc[g]: the observed groups reachable from g through *any*
    // chain of predecessors (paths through unobserved groups count —
    // dropping them from the constraint would admit projections no
    // real cut has). Bitsets over observed positions, filled in one
    // topological pass.
    const std::size_t m = obs.size();
    const std::size_t words = (m + 63) / 64;
    std::vector<std::uint64_t> anc(n * words, 0);
    for (std::uint32_t g = 0; g < n; ++g) {
        std::uint64_t *row = &anc[g * words];
        for (const std::uint32_t p : dag.groups[g].preds) {
            const std::uint64_t *prow = &anc[p * words];
            for (std::size_t w = 0; w < words; ++w)
                row[w] |= prow[w];
            if (mask[p])
                row[obs_pos[p] / 64] |= 1ULL << (obs_pos[p] % 64);
        }
    }

    // DFS over observed groups only. A projection may include an
    // observed group iff all its observed ancestors are included —
    // exactly the ideals of the induced order, which are exactly the
    // projections of the full cut lattice (closure in the full DAG
    // restores any such set to a consistent cut without adding
    // observed groups). Unobserved groups never write observed bytes
    // (observedGroupMask), so the incremental image sees everything
    // the invariant may read.
    std::vector<std::uint64_t> inc(words, 0);
    MemoryImage image;
    std::vector<UndoEntry> undo;
    std::vector<std::uint32_t> chosen;
    bool stop = false;
    auto visit = [&](auto &&self, std::size_t j) -> void {
        if (stop)
            return;
        if (j == m) {
            ++result.cuts;
            const std::string verdict = invariant(image);
            if (!verdict.empty()) {
                ++result.violations;
                if (result.first_violation.empty()) {
                    result.first_violation = verdict;
                    result.first_violation_groups =
                        downwardClosure(dag, chosen);
                }
            }
            if (max_cuts > 0 && result.cuts >= max_cuts) {
                stop = true;
                result.budget_exhausted = true;
            }
            return;
        }
        const std::uint32_t g = obs[j];
        const std::uint64_t *row = &anc[g * words];
        bool can_include = true;
        for (std::size_t w = 0; w < words; ++w) {
            if ((row[w] & ~inc[w]) != 0) {
                can_include = false;
                break;
            }
        }
        // Exclude branch first, as in checkAllCuts: small states
        // stay covered when the budget truncates.
        self(self, j + 1);
        if (!can_include || stop)
            return;
        const std::size_t mark = undo.size();
        applyGroup(log, dag.groups[g], image, undo);
        inc[j / 64] |= 1ULL << (j % 64);
        chosen.push_back(g);
        self(self, j + 1);
        chosen.pop_back();
        inc[j / 64] &= ~(1ULL << (j % 64));
        undoGroup(image, undo, mark);
    };
    visit(visit, 0);
    return result;
}

MemoryImage
reconstructImageFromGroups(const PersistLog &log, const PersistDag &dag,
                           const std::vector<std::uint32_t> &groups)
{
    std::vector<char> included(dag.groupCount(), 0);
    for (const std::uint32_t g : groups) {
        PERSIM_REQUIRE(g < dag.groupCount(), "cut names unknown group");
        included[g] = 1;
    }
    MemoryImage image;
    // Log order is trace order, which strong persist atomicity keeps
    // consistent with completion-time order per word.
    for (std::size_t i = 0; i < log.size(); ++i) {
        if (included[dag.group_of_record[i]])
            image.store(log[i].addr, log[i].size, log[i].value);
    }
    return image;
}

std::vector<std::uint32_t>
minimizeViolatingCut(const PersistLog &log, const PersistDag &dag,
                     const RecoveryInvariant &invariant,
                     std::vector<std::uint32_t> groups)
{
    std::vector<char> included(dag.groupCount(), 0);
    for (const std::uint32_t g : groups)
        included[g] = 1;
    // succ_count[g] = included groups that directly depend on g: only
    // maximal groups (succ_count 0) may be dropped without breaking
    // downward closure.
    std::vector<std::uint32_t> succ_count(dag.groupCount(), 0);
    auto recountSuccs = [&] {
        std::fill(succ_count.begin(), succ_count.end(), 0);
        for (std::uint32_t g = 0; g < dag.groupCount(); ++g) {
            if (!included[g])
                continue;
            for (const std::uint32_t p : dag.groups[g].preds)
                ++succ_count[p];
        }
    };
    recountSuccs();

    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        // Try dropping maximal groups newest-first: later persists are
        // usually the irrelevant tail of the trace.
        for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
            const std::uint32_t g = *it;
            if (succ_count[g] != 0)
                continue;
            included[g] = 0;
            std::vector<std::uint32_t> candidate;
            candidate.reserve(groups.size() - 1);
            for (const std::uint32_t h : groups) {
                if (h != g)
                    candidate.push_back(h);
            }
            const MemoryImage image =
                reconstructImageFromGroups(log, dag, candidate);
            if (!invariant(image).empty()) {
                groups = std::move(candidate);
                recountSuccs();
                shrunk = true;
                break;
            }
            included[g] = 1;
        }
    }
    std::sort(groups.begin(), groups.end());
    return groups;
}

std::string
formatCut(const PersistLog &log, const PersistDag &dag,
          const std::vector<std::uint32_t> &groups)
{
    std::ostringstream oss;
    oss << groups.size() << " of " << dag.groupCount()
        << " atomic persist groups in the crash state:\n";
    std::size_t lines = 0;
    for (const std::uint32_t g : groups) {
        for (const std::size_t i : dag.groups[g].records) {
            const PersistRecord &record = log[i];
            if (++lines > 64) {
                oss << "  ... (" << groups.size() << " groups total)\n";
                return oss.str();
            }
            oss << "  group " << g << " t=" << record.time
                << " seq=" << record.seq
                << " thread=" << record.thread
                << " addr=0x" << std::hex << record.addr << std::dec
                << " size=" << static_cast<unsigned>(record.size)
                << " value=0x" << std::hex << record.value << std::dec
                << "\n";
        }
    }
    return oss.str();
}

} // namespace persim
