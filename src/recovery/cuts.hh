/**
 * @file
 * Exhaustive recovery observer: every consistent cut, not a sample.
 *
 * recovery.hh realizes the paper's recovery observer stochastically
 * (random completion-time realizations, random crash times). For
 * bounded model checking that is not enough: a racing annotation bug
 * may survive only in one cut out of thousands. This module makes the
 * observer exhaustive:
 *
 *  - the persist log (with TimingConfig::record_deps) carries every
 *    direct ordering constraint, not just the timing argmax;
 *  - persists are grouped into *atomic units* (coalescing groups:
 *    persists that merged into one atomic device write — the observer
 *    can only see them together);
 *  - the observable crash states are exactly the downward-closed sets
 *    (order ideals) of the group DAG; we enumerate them all, rebuild
 *    each image incrementally, and run the caller's recovery
 *    invariant against every one.
 *
 * Ideal counts are exponential in the antichain width, so enumeration
 * takes a budget; callers bound their programs (and pick an atomic
 * persist granularity) so litmus-scale traces stay exhaustive.
 */

#ifndef PERSIM_RECOVERY_CUTS_HH
#define PERSIM_RECOVERY_CUTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "persistency/persist_log.hh"
#include "recovery/recovery.hh"
#include "sim/memory_image.hh"

namespace persim {

/** The persist partial order, quotiented by coalescing groups. */
struct PersistDag
{
    /** One atomic unit: a coalescing group of log records. */
    struct Group
    {
        /** Member record indices, in log (trace) order. */
        std::vector<std::size_t> records;

        /** Direct predecessor groups (deduplicated). */
        std::vector<std::uint32_t> preds;

        /** Completion time shared by every member. */
        double time = 0.0;
    };

    /** Groups indexed by id, topologically sorted (time, founder). */
    std::vector<Group> groups;

    /** Group id of each log record. */
    std::vector<std::uint32_t> group_of_record;

    std::size_t groupCount() const { return groups.size(); }
};

/**
 * Build the group DAG of @p log. Requires the log to have been
 * recorded with TimingConfig::record_deps (fatals when a multi-record
 * log carries no dependence sets yet binds records, i.e. the flag was
 * off).
 */
PersistDag buildPersistDag(const PersistLog &log);

/** Outcome of an exhaustive crash-state check of one execution. */
struct CutCheckResult
{
    std::uint64_t cuts = 0;       //!< Consistent cuts examined.
    std::uint64_t violations = 0; //!< Cuts failing the invariant.

    /** True when max_cuts stopped enumeration before completion. */
    bool budget_exhausted = false;

    /** Invariant verdict for the first failing cut. */
    std::string first_violation;

    /** The first failing cut, as included group ids (ascending). */
    std::vector<std::uint32_t> first_violation_groups;

    /** Exhaustive and clean. */
    bool ok() const { return violations == 0 && !budget_exhausted; }
};

/**
 * Enumerate every consistent cut of @p dag (up to @p max_cuts; 0
 * means unlimited) and run @p invariant on each reconstructed image.
 * The empty and the complete cut are always among those examined.
 */
CutCheckResult checkAllCuts(const PersistLog &log, const PersistDag &dag,
                            const RecoveryInvariant &invariant,
                            std::uint64_t max_cuts = 1ULL << 20);

/** Half-open byte range [addr, addr + size) of observed state. */
struct AddrRange
{
    Addr addr = 0;
    std::uint64_t size = 0;
};

/**
 * Per-group observation mask: mask[g] is nonzero iff any member
 * record of group @p g overlaps one of the @p observed byte ranges.
 * Groups outside the mask cannot change any observed byte.
 */
std::vector<char> observedGroupMask(const PersistLog &log,
                                    const PersistDag &dag,
                                    const std::vector<AddrRange> &observed);

/**
 * Downward closure of @p groups under the DAG's predecessor relation:
 * the smallest consistent cut containing them. Used to expand a
 * pruned (observed-only) counterexample back into an observable
 * crash state.
 */
std::vector<std::uint32_t> downwardClosure(
    const PersistDag &dag, const std::vector<std::uint32_t> &groups);

/**
 * Constraint-guided pruned enumeration (DESIGN.md §14): like
 * checkAllCuts, but enumerates only cuts that can differ on the
 * @p observed byte ranges. The observable projections of the full
 * cut lattice are exactly the order ideals of the observed groups
 * under reachability *through* unobserved groups, so the count of
 * states examined collapses from O(2^antichain) in all groups to
 * O(2^antichain) in observed groups only — identical verdicts, same
 * observed-state coverage in both directions.
 *
 * Contract: @p invariant must depend only on bytes inside
 * @p observed (unobserved groups are never applied to the image it
 * sees). `cuts` counts distinct observable projections enumerated;
 * `first_violation_groups` is expanded via downwardClosure to a
 * genuine consistent cut, directly usable by minimizeViolatingCut.
 * Falls back to checkAllCuts when every group is observed.
 */
CutCheckResult checkObservedCuts(const PersistLog &log,
                                 const PersistDag &dag,
                                 const RecoveryInvariant &invariant,
                                 const std::vector<AddrRange> &observed,
                                 std::uint64_t max_cuts = 1ULL << 20);

/**
 * Reconstruct the persistent image of one cut: apply the records of
 * every group in @p groups in log order. @p groups must be downward
 * closed for the result to be an observable crash state.
 */
MemoryImage reconstructImageFromGroups(
    const PersistLog &log, const PersistDag &dag,
    const std::vector<std::uint32_t> &groups);

/**
 * Shrink a violating cut: greedily drop maximal groups (those with no
 * included successor) while the invariant still fails. The result is
 * locally minimal — removing any single maximal group repairs it —
 * which turns a thousand-persist counterexample into the handful of
 * writes that actually conflict.
 */
std::vector<std::uint32_t> minimizeViolatingCut(
    const PersistLog &log, const PersistDag &dag,
    const RecoveryInvariant &invariant,
    std::vector<std::uint32_t> groups);

/** Render a cut (group ids + member writes) for counterexamples. */
std::string formatCut(const PersistLog &log, const PersistDag &dag,
                      const std::vector<std::uint32_t> &groups);

} // namespace persim

#endif // PERSIM_RECOVERY_CUTS_HH
