/**
 * @file
 * Device-fault injection campaigns.
 *
 * runFaultCampaign extends the recovery observer's failure injection
 * (recovery.hh) with the device-fault model of src/nvram/faults.hh:
 * each sampled crash state is perturbed by torn persists, wear-scaled
 * media errors, and dropped drain-buffer writes before the recovery
 * invariant runs. With every fault class disabled the campaign is
 * bit-identical to injectFailures — in fact injectFailures delegates
 * here — so fault-free results never shift when the fault machinery
 * evolves.
 *
 * The campaign fans realizations out over the shared TaskPool
 * (InjectionConfig::jobs) and aggregates deterministically: serial
 * and parallel runs produce identical InjectionResults, because the
 * full sampling schedule (realization seeds, crash-time fractions) is
 * drawn up front in the legacy order and per-sample fault seeds are
 * derived by mixing, never by drawing.
 *
 * Every violation carries enough state to replay exactly: the timing
 * realization seed, the crash time (serialized as a hex float, so the
 * double round-trips), and the fault seed. formatFaultRepro /
 * parseFaultRepro / replayFaultRepro close the loop.
 */

#ifndef PERSIM_RECOVERY_FAULT_CAMPAIGN_HH
#define PERSIM_RECOVERY_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <string>

#include "memtrace/sink.hh"
#include "nvram/faults.hh"
#include "recovery/recovery.hh"

namespace persim {

/** Failure injection plus a device-fault model. */
struct FaultCampaignConfig
{
    /** Timing realizations, crash sampling, seed, parallelism. */
    InjectionConfig injection;

    /** Device faults applied to each crash image (default: none). */
    FaultConfig faults;
};

/**
 * Run a device-fault injection campaign: sample crash states exactly
 * as injectFailures does, perturb each image through the fault model,
 * and check the invariant. The invariant must be thread-safe when
 * injection.jobs != 1 (the stock makeRecoveryInvariant /
 * makeDetectAndDiscardInvariant / makeLogRecoveryInvariant closures
 * are: they only read captured state).
 */
InjectionResult runFaultCampaign(const InMemoryTrace &trace,
                                 const FaultCampaignConfig &config,
                                 const RecoveryInvariant &invariant);

/** The replayable coordinates of one sampled crash state. */
struct FaultRepro
{
    std::uint64_t realization_seed = 0; //!< Stochastic-clock seed.
    double crash_time = -1.0;           //!< Exact sampled crash time.
    std::uint64_t fault_seed = 0;       //!< Per-sample fault stream.
};

/** "seed=0x... crash=<hexfloat> fault_seed=0x..." — parseable. */
std::string formatFaultRepro(const FaultRepro &repro);

/** Repro line for a recorded violation. */
std::string violationRepro(const ViolationRecord &violation);

/** Parse a formatFaultRepro line (leading text is ignored).
    @return False when no repro triple is present. */
bool parseFaultRepro(const std::string &line, FaultRepro &out);

/**
 * Re-evaluate a single sampled crash state: rebuild the timing
 * realization from the repro's seed, perturb it with the campaign's
 * fault model under the repro's fault seed, and run the invariant.
 * @return The invariant verdict (empty when recovery succeeds).
 */
std::string replayFaultRepro(const InMemoryTrace &trace,
                             const FaultCampaignConfig &config,
                             const FaultRepro &repro,
                             const RecoveryInvariant &invariant,
                             FaultOutcome *outcome = nullptr);

} // namespace persim

#endif // PERSIM_RECOVERY_FAULT_CAMPAIGN_HH
