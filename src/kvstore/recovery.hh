/**
 * @file
 * Three-tier recovery ladder for the persistent KV store.
 *
 * Recovery of a crashed KvStore image is a pure function that
 * validates every bucket (state, key, value reference bounds,
 * checksum over bucket words + payload, duplicate keys, probe-chain
 * reachability — the BucketFault taxonomy shared with
 * PersistentHashMap) and then applies a *policy* to what it found:
 *
 *  - `Strict`: any fault is a recovery failure. The tier a
 *    correctness proof wants — and exactly what a mid-update crash
 *    window makes untenable for a live service, since a checksummed
 *    bucket cannot be updated crash-atomically.
 *  - `DetectAndDiscard`: quarantine faulted buckets with per-cause
 *    accounting and serve the rest. Detected loss, bounded blast
 *    radius, never a wrong answer.
 *  - `Repair`: quarantine, then replay the LogStructured journal
 *    suffix to rebuild what the table lost (torn inserts, torn
 *    updates, unapplied erases), under a bounded budget, falling back
 *    to discard for anything the journal cannot prove. Never a crash.
 *
 * The exported invariant factory plugs the ladder into the fault
 * campaign (src/recovery/): a *violation* is silent corruption — a
 * recovered value no writer ever issued, or a Strict-tier
 * inconsistency. Quarantine, discard, and repair are graceful
 * degradation, reported through KvInvariantStats, not violations.
 */

#ifndef PERSIM_KVSTORE_RECOVERY_HH
#define PERSIM_KVSTORE_RECOVERY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "kvstore/kvstore.hh"
#include "sim/memory_image.hh"

namespace persim {

/** Which policy recovery applies to faulted buckets. */
enum class KvRecoveryMode : std::uint8_t {
    Strict = 0,       //!< Any fault fails recovery.
    DetectAndDiscard, //!< Quarantine faults, serve the rest.
    Repair,           //!< Quarantine, then rebuild from the journal.

    /**
     * Fourth tier (cross-shard): Repair, plus transaction resolution
     * at the group level — committed transactions roll forward from
     * their staged journal records, in-doubt transactions (commit
     * flip durable but commit record lost) are detected, and partial
     * state of uncommitted transactions is scrubbed. Per-shard
     * recoverKvStore treats this tier as Repair; the resolution
     * itself lives in recoverKvRouter (src/kvstore/router.hh).
     */
    TxnResolve,
};

/** Human-readable mode name ("strict", "detect_and_discard", ...). */
const char *kvRecoveryModeName(KvRecoveryMode mode);

/** Knobs for recoverKvStore. */
struct KvRecoveryOptions
{
    KvRecoveryMode mode = KvRecoveryMode::DetectAndDiscard;

    /** Journal placement (Repair tier); ignored when invalid. */
    LogLayout journal;

    /**
     * Repair budget: maximum journal-directed corrections. Redo work
     * beyond the budget falls back to discard — bounded effort,
     * graceful degradation.
     */
    std::uint64_t repair_budget = 1 << 20;

    /**
     * Transactions whose commit record is durable (group-journal
     * authority, computed by recoverKvRouter). A staged record
     * (txn != 0) replays only when its txn is in this set; when null,
     * every staged record is skipped — the safe standalone default,
     * since an unresolved staged mutation is not redo authority.
     */
    const std::set<std::uint64_t> *committed_txns = nullptr;
};

/** One recovered entry. */
struct KvRecoveredEntry
{
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> value;
    bool repaired = false; //!< Rebuilt or corrected from the journal.
};

/** Result of recovering a KV store image. */
struct KvRecovery
{
    /** False only under Strict with at least one fault. */
    bool ok = false;

    /** First fault's description (when any). */
    std::string error;

    KvRecoveryMode mode = KvRecoveryMode::Strict;

    /** Entries served after the tier's policy was applied. */
    std::map<std::uint64_t, KvRecoveredEntry> entries;

    /** Every fault detected, in bucket order (pre-repair). */
    std::vector<BucketFault> faults;

    std::uint64_t tombstones = 0;

    /** Faulted buckets not rebuilt by the journal. */
    std::uint64_t discarded = 0;

    /** Journal-directed corrections (adoptions and erases). */
    std::uint64_t repaired = 0;

    /** Valid journal records decoded (Repair tier). */
    std::uint64_t log_records = 0;

    /** Staged txn records skipped as uncommitted/unresolved. */
    std::uint64_t txn_skipped = 0;

    /** The repair loop ran out of budget (corrections were dropped). */
    bool budget_exhausted = false;

    /** Faulted buckets of one kind. */
    std::uint64_t faultCount(BucketFaultKind kind) const;
};

/**
 * Recover a KV store from a crashed image: validate every bucket,
 * then apply @p options.mode (see file comment). Pure function of the
 * image — never throws on corrupt input, never returns a value whose
 * checksum did not validate.
 */
KvRecovery recoverKvStore(const MemoryImage &image,
                          const KvLayout &layout,
                          const KvRecoveryOptions &options);

/**
 * Order-independent accounting accumulated across the crash images an
 * invariant inspects. Atomics keep parallel campaign runs
 * bit-identical in their InjectionResult while still summing
 * identically to serial runs.
 */
struct KvInvariantStats
{
    std::atomic<std::uint64_t> images{0};
    std::atomic<std::uint64_t> quarantined{0};
    std::atomic<std::uint64_t> repaired{0};
    std::atomic<std::uint64_t> discarded{0};
    std::array<std::atomic<std::uint64_t>, bucket_fault_kinds>
        by_cause{};
};

/**
 * Build a fault-campaign invariant over the recovery ladder: recover
 * the image under @p options, then flag *silent corruption* — a
 * recovered (seq, value) pair absent from @p golden — and, under
 * Strict, any fault. Quarantine/repair/discard accumulate into
 * @p stats (optional) instead of being violations.
 */
std::function<std::string(const MemoryImage &)>
makeKvRecoveryInvariant(const KvLayout &layout,
                        std::shared_ptr<const KvGoldenHistory> golden,
                        const KvRecoveryOptions &options,
                        std::shared_ptr<KvInvariantStats> stats = nullptr);

} // namespace persim

#endif // PERSIM_KVSTORE_RECOVERY_HH
