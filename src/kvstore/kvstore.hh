/**
 * @file
 * A crash-consistent persistent key-value store with checksummed
 * buckets and variable-length values.
 *
 * KvStore generalizes pstruct's PersistentHashMap into a service-grade
 * structure: each 64-byte bucket carries a (key, value-reference,
 * sequence number, state, checksum) tuple, values live in a separate
 * persistent heap written through PBuffer, and every live bucket is
 * self-validating — the checksum covers the bucket index, key, value
 * reference, sequence number, AND the payload bytes, so a torn or
 * bit-rotted bucket is *detectable* instead of silently wrong.
 *
 * The update strategy is a config, because it is exactly the
 * durability tradeoff the paper's models price differently:
 *
 *  - `InPlace`: overwrite the payload in its heap region, then
 *    re-publish seq+checksum. Cheapest in space and persists, but a
 *    crash mid-update loses the old value: the bucket quarantines
 *    (checksum mismatch) with a window proportional to the payload.
 *  - `Cow`: write the new payload to a fresh heap region, barrier,
 *    then swing the bucket's value reference. The quarantine window
 *    shrinks to the bucket's own words; the old value survives any
 *    crash before the swing.
 *  - `LogStructured`: journal every mutation through a checksummed
 *    PersistentLog *before* applying it (write-ahead), then apply
 *    in-place/CoW. Quarantined buckets become repairable: recovery
 *    replays the journal suffix (see recovery.hh's `Repair` tier).
 *
 * Crash-atomicity honesty: a single checksummed bucket cannot be
 * updated atomically with ≤8-byte persists, so updates (not inserts,
 * not erases) have a crash window in which the bucket is *quarantined*
 * — detected, never silent. Inserts use update-then-publish (the
 * state word flips last) and erases are a single state-word persist,
 * so both are crash-atomic. The three-tier recovery ladder in
 * recovery.hh decides what quarantine means: fail (Strict), serve the
 * rest (DetectAndDiscard), or rebuild from the journal (Repair).
 *
 * All rejections are backpressure, not errors: a full table, full
 * heap, or full journal returns a KvStatus for the caller to shed
 * load — a fault campaign must never die on a capacity edge.
 */

#ifndef PERSIM_KVSTORE_KVSTORE_HH
#define PERSIM_KVSTORE_KVSTORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "pmem/pmem.hh"
#include "pstruct/bucket_fault.hh"
#include "pstruct/log.hh"
#include "sim/engine.hh"
#include "sim/memory_image.hh"
#include "sync/locks.hh"

namespace persim {

/** How put() makes an existing key's new value durable. */
enum class KvUpdateStrategy : std::uint8_t {
    InPlace = 0,   //!< Overwrite the payload region, re-checksum.
    Cow,           //!< Fresh region, barrier, swing the reference.
    LogStructured, //!< Journal first (WAL), then apply; repairable.
};

/** Human-readable strategy name ("in_place", "cow", ...). */
const char *kvUpdateStrategyName(KvUpdateStrategy strategy);

/** Parse a strategy name; returns false if unknown. */
bool kvUpdateStrategyByName(const std::string &name,
                            KvUpdateStrategy &strategy);

/** Outcome of a KvStore mutation. */
enum class KvStatus : std::uint8_t {
    Ok = 0,
    NotFound,      //!< erase() of an absent key.
    TableFull,     //!< No dead bucket on the probe chain; backpressure.
    HeapFull,      //!< Value heap exhausted; backpressure.
    LogFull,       //!< Journal exhausted; backpressure.
    ValueTooLarge, //!< Payload exceeds KvOptions::max_value_bytes.
};

/** Human-readable status name. */
const char *kvStatusName(KvStatus status);

/** Placement and geometry of a KV store. */
struct KvLayout
{
    Addr table = invalid_addr;      //!< Bucket array base.
    std::uint64_t buckets = 0;      //!< Bucket count (power of two).
    Addr heap = invalid_addr;       //!< Value heap base.
    std::uint64_t heap_bytes = 0;   //!< Value heap size.
    std::uint64_t max_value_bytes = 0;

    static constexpr std::uint64_t bucket_bytes = 64; // One cache line.
    static constexpr std::uint64_t key_off = 0;
    static constexpr std::uint64_t val_off_off = 8;  //!< Heap offset.
    static constexpr std::uint64_t val_len_off = 16;
    static constexpr std::uint64_t seq_off = 24;
    static constexpr std::uint64_t state_off = 32;
    static constexpr std::uint64_t cksum_off = 40;

    /** Bucket states. */
    static constexpr std::uint64_t state_empty = 0;
    static constexpr std::uint64_t state_live = 1;
    static constexpr std::uint64_t state_tombstone = 2;

    /** Base address of bucket @p index. */
    Addr
    bucketAddr(std::uint64_t index) const
    {
        return table + index * bucket_bytes;
    }

    /**
     * Checksum of a live bucket: FNV-1a over (bucket index, key,
     * value heap offset, value length, sequence number, payload
     * bytes), forced nonzero. Covering the bucket index pins the
     * tuple to its slot; covering the sequence number distinguishes
     * generations of the same slot; covering the payload makes heap
     * corruption visible from the bucket.
     */
    static std::uint64_t checksum(std::uint64_t bucket_index,
                                  std::uint64_t key,
                                  std::uint64_t val_off,
                                  std::uint64_t val_len,
                                  std::uint64_t seq,
                                  const std::uint8_t *payload);
};

/** KV store construction options. */
struct KvOptions
{
    /** Bucket count (power of two >= 2). */
    std::uint64_t buckets = 1024;

    /** Value heap bytes. */
    std::uint64_t heap_bytes = 1 << 20;

    /** Maximum payload size accepted by put(). */
    std::uint64_t max_value_bytes = 4096;

    /** Durability protocol for updates (see file comment). */
    KvUpdateStrategy strategy = KvUpdateStrategy::Cow;

    /** Journal capacity (LogStructured only). */
    std::uint64_t log_capacity = 1 << 20;

    /**
     * Create the journal even when the strategy is not LogStructured.
     * Cross-shard transactions stage their per-shard redo records
     * through the shard journal regardless of how single-key puts
     * make updates durable, so a router-managed shard always needs
     * one.
     */
    bool force_journal = false;

    /** Start a new persist strand at each mutation. */
    bool use_strands = true;

    /**
     * FAULT DEMONSTRATION ONLY: omit the barrier between preparing a
     * bucket (or its new payload) and publishing it.
     */
    bool omit_publish_barrier = false;

    /** Keep host-side golden history (disable for huge perf runs). */
    bool record_golden = true;
};

/** One issued version of a key, recorded host-side for invariants. */
struct KvGoldenVersion
{
    std::uint64_t seq = 0;
    bool erased = false;
    std::vector<std::uint8_t> value;
};

/** Per-key version history (host side, append-ordered per key). */
using KvGoldenHistory =
    std::map<std::uint64_t, std::vector<KvGoldenVersion>>;

/** One decoded journal record (WAL redo / staged txn mutation). */
struct KvJournalRecord
{
    static constexpr std::uint64_t kind_put = 1;
    static constexpr std::uint64_t kind_erase = 2;

    std::uint64_t kind = 0;
    std::uint64_t key = 0;
    std::uint64_t seq = 0;

    /**
     * Owning transaction (0 = standalone WAL record). A staged txn
     * record is redo authority only once its transaction's commit
     * record is durable in the group journal; recovery skips it
     * otherwise (see recoverKvStore's committed-set option).
     */
    std::uint64_t txn = 0;

    std::vector<std::uint8_t> value; //!< Empty for erases.

    /** Serialize to a log payload. */
    std::vector<std::uint8_t> encode() const;

    /** Parse a log payload; returns false if malformed. */
    static bool decode(const std::vector<std::uint8_t> &payload,
                       KvJournalRecord &record);
};

/** A fixed-geometry crash-consistent KV store. */
class KvStore
{
  public:
    KvStore() = default;

    /**
     * Allocate and initialize the store in persistent memory, with
     * MCS qnodes for @p threads writer slots. When @p shared_seq_cell
     * is valid, sequence numbers are drawn from that (volatile) cell
     * with an atomic fetch-add instead of a private one — a router
     * passes one cell to every shard so seqs are globally unique and
     * totally ordered across the group.
     */
    static KvStore create(ThreadCtx &ctx, const KvOptions &options,
                          std::size_t threads,
                          Addr shared_seq_cell = invalid_addr);

    /**
     * Insert or update @p key (nonzero) with @p len payload bytes.
     * Capacity rejections (TableFull/HeapFull/LogFull) leave the
     * store untouched.
     */
    [[nodiscard]] KvStatus put(ThreadCtx &ctx, std::size_t slot,
                               std::uint64_t key, const void *value,
                               std::uint64_t len);

    /** Remove @p key. Ok, or NotFound (LogFull under LogStructured). */
    [[nodiscard]] KvStatus erase(ThreadCtx &ctx, std::size_t slot,
                                 std::uint64_t key);

    /**
     * put() without acquiring the shard lock: the caller already
     * holds it (via mcsLock()/qnode()). A router takes the lock
     * itself so it can re-validate partition ownership after
     * acquisition — a migration may have moved the partition between
     * routing and locking.
     */
    [[nodiscard]] KvStatus putLocked(ThreadCtx &ctx, std::size_t slot,
                                     std::uint64_t key,
                                     const void *value,
                                     std::uint64_t len);

    /** erase() without acquiring the shard lock (see putLocked). */
    [[nodiscard]] KvStatus eraseLocked(ThreadCtx &ctx, std::size_t slot,
                                       std::uint64_t key);

    /** Lock-free lookup. @return True iff found (payload appended). */
    bool get(ThreadCtx &ctx, std::uint64_t key,
             std::vector<std::uint8_t> &value) const;

    /** Lock-free lookup that also reports the entry's seq. */
    bool getWithSeq(ThreadCtx &ctx, std::uint64_t key,
                    std::vector<std::uint8_t> &value,
                    std::uint64_t &seq) const;

    /** Number of live entries (walks the table with traced loads). */
    std::uint64_t count(ThreadCtx &ctx) const;

    /** @name Cross-shard transaction hooks (see src/kvstore/txn.hh)
     *
     * The commit protocol owns the shard lock across staging, the
     * commit flip, and application, so these entry points do NOT
     * acquire it — the caller must hold it (via mcsLock()/qnode()) —
     * and do NOT start a new strand: a commit's persists must stay on
     * one strand so its barriers order stage -> flip -> apply.
     */
    ///@{
    /**
     * Stage one txn mutation in the shard journal (no table effect).
     * Records the version in the golden history: once staged, a
     * commit cannot fail, so the version is "issued" from here on.
     * @return False when the journal is full (nothing written).
     */
    [[nodiscard]] bool journalStaged(ThreadCtx &ctx, std::size_t slot,
                                     const KvJournalRecord &record,
                                     std::uint64_t &lsn);

    /**
     * Apply a committed put at a caller-chosen @p seq: same table
     * protocol as put() (in-place / CoW / publish-by-state-flip) but
     * no journaling, no seq draw, and no golden record (the version
     * was recorded when staged). Skips (returns Ok) when the live
     * entry already has seq >= @p seq — roll-forward idempotence.
     * Capacity must have been pre-validated; exhaustion here fatals.
     */
    KvStatus applyCommitted(ThreadCtx &ctx, std::uint64_t key,
                            const void *value, std::uint64_t len,
                            std::uint64_t seq);

    /** Apply a committed erase at @p seq (skips if table is newer). */
    KvStatus applyCommittedErase(ThreadCtx &ctx, std::uint64_t key,
                                 std::uint64_t seq);

    /**
     * Physically tombstone @p key without a seq draw, journal record,
     * or golden entry: post-migration scrub of a copy that now lives
     * in another shard. The logical entry is unaffected — ownership
     * already routes readers to the new shard.
     */
    void scrub(ThreadCtx &ctx, std::uint64_t key);

    /**
     * Bucket base address of @p key's live entry (invalid_addr when
     * absent). A migration's end record re-reads the copied buckets'
     * state words so their persists order before it on a fresh strand.
     */
    Addr entryAddr(ThreadCtx &ctx, std::uint64_t key) const;

    /** Capacity probes for commit pre-validation (caller holds lock). */
    std::uint64_t liveCount(ThreadCtx &ctx) const;  //!< Live entries.
    std::uint64_t heapUsed(ThreadCtx &ctx) const;   //!< Bump cursor.
    std::uint64_t journalTail(ThreadCtx &ctx) const;

    bool hasJournal() const { return journal_.layout().capacity != 0; }

    const McsLock &mcsLock() const { return lock_; }
    Addr qnode(std::size_t slot) const { return qnodes_.at(slot); }
    ///@}

    const KvLayout &layout() const { return layout_; }
    const KvOptions &options() const { return options_; }

    /** Journal layout; valid only under LogStructured. */
    const LogLayout &journalLayout() const { return journal_.layout(); }

    /** Journal appends made so far (LogStructured, host side). */
    std::vector<GoldenLogRecord> journalGolden() const
    {
        return journal_.goldenRecords();
    }

    /** Snapshot of the per-key golden history (host side). */
    KvGoldenHistory goldenHistory() const;

    /** The probe start for @p key in a table of @p buckets. */
    static std::uint64_t hashIndex(std::uint64_t key,
                                   std::uint64_t buckets);

  private:
    struct Golden
    {
        std::mutex mutex;
        KvGoldenHistory history;
    };

    /** Reserve @p bytes from the value heap; false when exhausted. */
    bool heapAlloc(ThreadCtx &ctx, std::uint64_t bytes,
                   std::uint64_t &offset);

    /** Draw the next sequence number (atomic on the shared cell). */
    std::uint64_t drawSeq(ThreadCtx &ctx);

    /** Probe for @p key; returns found/insert bucket indices. */
    void probe(ThreadCtx &ctx, std::uint64_t key,
               std::uint64_t &found_at, std::uint64_t &insert_at) const;

    /** Table write shared by put() and applyCommitted(). */
    KvStatus writeEntry(ThreadCtx &ctx, std::uint64_t key,
                        const std::uint8_t *bytes_in, std::uint64_t len,
                        std::uint64_t seq, std::uint64_t found_at,
                        std::uint64_t insert_at);

    /** Journal one mutation (LogStructured); false when full. */
    bool journalAppend(ThreadCtx &ctx, std::size_t slot,
                       const KvJournalRecord &record);

    void recordGolden(std::uint64_t key, std::uint64_t seq, bool erased,
                      const std::uint8_t *value, std::uint64_t len);

    KvLayout layout_;
    KvOptions options_;
    PersistentLog journal_;          //!< LogStructured or forced.
    Addr seq_cell_ = invalid_addr;   //!< Volatile next-seq cell
                                     //!< (possibly group-shared).
    Addr heap_cell_ = invalid_addr;  //!< Volatile heap bump cursor.
    Addr live_cell_ = invalid_addr;  //!< Volatile live-entry count.
    McsLock lock_;
    std::vector<Addr> qnodes_;
    std::shared_ptr<Golden> golden_;
};

} // namespace persim

#endif // PERSIM_KVSTORE_KVSTORE_HH
