#include "kvstore/kvstore.hh"

#include <cstring>

#include "common/bitops.hh"
#include "common/error.hh"

namespace persim {

const char *
kvUpdateStrategyName(KvUpdateStrategy strategy)
{
    switch (strategy) {
      case KvUpdateStrategy::InPlace:
        return "in_place";
      case KvUpdateStrategy::Cow:
        return "cow";
      case KvUpdateStrategy::LogStructured:
        return "log_structured";
    }
    return "unknown";
}

bool
kvUpdateStrategyByName(const std::string &name,
                       KvUpdateStrategy &strategy)
{
    for (KvUpdateStrategy s : {KvUpdateStrategy::InPlace,
                               KvUpdateStrategy::Cow,
                               KvUpdateStrategy::LogStructured}) {
        if (name == kvUpdateStrategyName(s)) {
            strategy = s;
            return true;
        }
    }
    return false;
}

const char *
kvStatusName(KvStatus status)
{
    switch (status) {
      case KvStatus::Ok:
        return "ok";
      case KvStatus::NotFound:
        return "not-found";
      case KvStatus::TableFull:
        return "table-full";
      case KvStatus::HeapFull:
        return "heap-full";
      case KvStatus::LogFull:
        return "log-full";
      case KvStatus::ValueTooLarge:
        return "value-too-large";
    }
    return "unknown";
}

std::uint64_t
KvLayout::checksum(std::uint64_t bucket_index, std::uint64_t key,
                   std::uint64_t val_off, std::uint64_t val_len,
                   std::uint64_t seq, const std::uint8_t *payload)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t word) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (word >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    };
    mix(bucket_index);
    mix(key);
    mix(val_off);
    mix(val_len);
    mix(seq);
    for (std::uint64_t i = 0; i < val_len; ++i) {
        hash ^= payload[i];
        hash *= 0x100000001b3ULL;
    }
    // Zeroed memory must never validate.
    return hash == 0 ? 1 : hash;
}

std::vector<std::uint8_t>
KvJournalRecord::encode() const
{
    std::vector<std::uint8_t> payload(32 + value.size());
    auto word = [&payload](std::size_t off, std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            payload[off + i] = (v >> (8 * i)) & 0xff;
    };
    word(0, kind);
    word(8, key);
    word(16, seq);
    word(24, txn);
    if (!value.empty())
        std::memcpy(payload.data() + 32, value.data(), value.size());
    return payload;
}

bool
KvJournalRecord::decode(const std::vector<std::uint8_t> &payload,
                        KvJournalRecord &record)
{
    if (payload.size() < 32)
        return false;
    auto word = [&payload](std::size_t off) {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(payload[off + i]) << (8 * i);
        return v;
    };
    record.kind = word(0);
    record.key = word(8);
    record.seq = word(16);
    record.txn = word(24);
    record.value.assign(payload.begin() + 32, payload.end());
    if (record.kind != kind_put && record.kind != kind_erase)
        return false;
    if (record.key == 0 || record.seq == 0)
        return false;
    if (record.kind == kind_erase && !record.value.empty())
        return false;
    if (record.kind == kind_put && record.value.empty())
        return false;
    return true;
}

std::uint64_t
KvStore::hashIndex(std::uint64_t key, std::uint64_t buckets)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ULL;
    key ^= key >> 33;
    return key & (buckets - 1);
}

KvStore
KvStore::create(ThreadCtx &ctx, const KvOptions &options,
                std::size_t threads, Addr shared_seq_cell)
{
    PERSIM_REQUIRE(isPowerOfTwo(options.buckets) && options.buckets >= 2,
                   "bucket count must be a power of two >= 2");
    PERSIM_REQUIRE(options.heap_bytes >= 8 &&
                   options.heap_bytes % 8 == 0,
                   "heap bytes must be a multiple of 8, >= 8");
    PERSIM_REQUIRE(options.max_value_bytes >= 1 &&
                   options.max_value_bytes <= options.heap_bytes,
                   "max value bytes must fit the heap");
    PERSIM_REQUIRE(threads >= 1, "need at least one writer slot");

    KvStore store;
    store.options_ = options;
    store.layout_.buckets = options.buckets;
    store.layout_.table = ctx.pmalloc(
        options.buckets * KvLayout::bucket_bytes, 64);
    store.layout_.heap = ctx.pmalloc(options.heap_bytes, 64);
    store.layout_.heap_bytes = options.heap_bytes;
    store.layout_.max_value_bytes = options.max_value_bytes;
    // Fresh persistent memory reads zero (state_empty); make the
    // blank table the durable baseline.
    ctx.persistBarrier();

    if (options.strategy == KvUpdateStrategy::LogStructured ||
        options.force_journal) {
        LogOptions log_options;
        log_options.capacity = options.log_capacity;
        log_options.use_strands = options.use_strands;
        log_options.record_golden = options.record_golden;
        store.journal_ = PersistentLog::create(ctx, log_options, threads);
    }

    if (shared_seq_cell != invalid_addr) {
        // Group-shared cell: the router initialized it (to 1) once.
        store.seq_cell_ = shared_seq_cell;
    } else {
        store.seq_cell_ = ctx.vmalloc(8, 64);
        ctx.store(store.seq_cell_, 1); // Seq 0 means "never written".
    }
    store.heap_cell_ = ctx.vmalloc(8, 64);
    ctx.store(store.heap_cell_, 0);
    store.live_cell_ = ctx.vmalloc(8, 64);
    ctx.store(store.live_cell_, 0);
    store.lock_ = McsLock::create(ctx);
    for (std::size_t i = 0; i < threads; ++i)
        store.qnodes_.push_back(McsLock::createQnode(ctx));
    store.golden_ = std::make_shared<Golden>();
    return store;
}

bool
KvStore::heapAlloc(ThreadCtx &ctx, std::uint64_t bytes,
                   std::uint64_t &offset)
{
    const std::uint64_t aligned = alignUp(bytes, 8);
    const std::uint64_t cursor = ctx.load(heap_cell_);
    if (cursor + aligned > layout_.heap_bytes)
        return false;
    ctx.store(heap_cell_, cursor + aligned);
    offset = cursor;
    return true;
}

bool
KvStore::journalAppend(ThreadCtx &ctx, std::size_t slot,
                       const KvJournalRecord &record)
{
    const std::vector<std::uint8_t> payload = record.encode();
    const std::uint64_t bytes =
        LogLayout::recordBytes(payload.size());
    if (journal_.tailOffset(ctx) + bytes > journalLayout().capacity)
        return false;
    journal_.append(ctx, slot, payload.data(), payload.size());
    return true;
}

void
KvStore::recordGolden(std::uint64_t key, std::uint64_t seq, bool erased,
                      const std::uint8_t *value, std::uint64_t len)
{
    if (!options_.record_golden)
        return;
    std::lock_guard<std::mutex> guard(golden_->mutex);
    KvGoldenVersion version;
    version.seq = seq;
    version.erased = erased;
    if (!erased)
        version.value.assign(value, value + len);
    golden_->history[key].push_back(std::move(version));
}

KvGoldenHistory
KvStore::goldenHistory() const
{
    PERSIM_REQUIRE(golden_ != nullptr, "store was not created");
    std::lock_guard<std::mutex> guard(golden_->mutex);
    return golden_->history;
}

std::uint64_t
KvStore::drawSeq(ThreadCtx &ctx)
{
    // Atomic fetch-add: with a group-shared cell, shard workers and
    // snapshot readers race on this word, and a load/store pair would
    // hand two mutations the same seq.
    return ctx.rmwFetchAdd(seq_cell_, 1);
}

void
KvStore::probe(ThreadCtx &ctx, std::uint64_t key,
               std::uint64_t &found_at, std::uint64_t &insert_at) const
{
    // Probe for the key or the first dead bucket.
    const std::uint64_t buckets = layout_.buckets;
    std::uint64_t index = hashIndex(key, buckets);
    found_at = buckets;
    insert_at = buckets;
    for (std::uint64_t step = 0; step < buckets; ++step) {
        const Addr bucket = layout_.bucketAddr(index);
        const std::uint64_t state =
            ctx.load(bucket + KvLayout::state_off);
        if (state == KvLayout::state_live) {
            if (ctx.load(bucket + KvLayout::key_off) == key) {
                found_at = index;
                break;
            }
        } else {
            if (insert_at == buckets)
                insert_at = index;
            if (state == KvLayout::state_empty)
                break; // Key cannot be live past an empty bucket.
        }
        index = (index + 1) & (buckets - 1);
    }
}

KvStatus
KvStore::writeEntry(ThreadCtx &ctx, std::uint64_t key,
                    const std::uint8_t *bytes_in, std::uint64_t len,
                    std::uint64_t seq, std::uint64_t found_at,
                    std::uint64_t insert_at)
{
    const std::uint64_t buckets = layout_.buckets;
    const bool update = found_at != buckets;
    if (!update && insert_at == buckets)
        return KvStatus::TableFull;

    const Addr bucket =
        layout_.bucketAddr(update ? found_at : insert_at);
    const std::uint64_t bucket_index = update ? found_at : insert_at;

    // Reuse the payload region only for a same-length in-place
    // update; everything else allocates.
    std::uint64_t old_off = 0, old_len = 0;
    if (update) {
        old_off = ctx.load(bucket + KvLayout::val_off_off);
        old_len = ctx.load(bucket + KvLayout::val_len_off);
    }
    const bool in_place =
        update && old_len == len &&
        options_.strategy != KvUpdateStrategy::Cow;

    PBuffer heap(layout_.heap, layout_.heap_bytes);
    if (in_place) {
        // In-place update: overwrite the payload, then re-publish
        // seq+checksum. A crash anywhere in this window leaves a
        // checksum mismatch — detected, never silent — but the old
        // value is gone (the journal can rebuild it).
        heap.write(ctx, old_off, bytes_in, len);
        ctx.store(bucket + KvLayout::seq_off, seq);
        if (!options_.omit_publish_barrier)
            ctx.persistBarrier();
        ctx.store(bucket + KvLayout::cksum_off,
                  KvLayout::checksum(bucket_index, key, old_off, len,
                                     seq, bytes_in));
        return KvStatus::Ok;
    }

    std::uint64_t val_off = 0;
    if (!heapAlloc(ctx, len, val_off))
        return KvStatus::HeapFull;
    heap.write(ctx, val_off, bytes_in, len);

    if (update) {
        // CoW update: the new payload is complete (barrier), then the
        // bucket's reference words swing to it. The quarantine window
        // shrinks to the four word stores below; any crash before
        // them leaves the old value intact and valid.
        if (!options_.omit_publish_barrier)
            ctx.persistBarrier();
        ctx.store(bucket + KvLayout::val_off_off, val_off);
        ctx.store(bucket + KvLayout::val_len_off, len);
        ctx.store(bucket + KvLayout::seq_off, seq);
        ctx.store(bucket + KvLayout::cksum_off,
                  KvLayout::checksum(bucket_index, key, val_off, len,
                                     seq, bytes_in));
    } else {
        // Insert: fill the (empty or tombstone) bucket, barrier, then
        // publish by flipping the state word — crash-atomic. A crash
        // mid-fill of a reused tombstone leaves a tombstone whose
        // dead words changed: harmless, recovery ignores them.
        ctx.store(bucket + KvLayout::key_off, key);
        ctx.store(bucket + KvLayout::val_off_off, val_off);
        ctx.store(bucket + KvLayout::val_len_off, len);
        ctx.store(bucket + KvLayout::seq_off, seq);
        ctx.store(bucket + KvLayout::cksum_off,
                  KvLayout::checksum(bucket_index, key, val_off, len,
                                     seq, bytes_in));
        if (!options_.omit_publish_barrier)
            ctx.persistBarrier();
        ctx.store(bucket + KvLayout::state_off, KvLayout::state_live);
        ctx.rmwFetchAdd(live_cell_, 1);
    }
    return KvStatus::Ok;
}

KvStatus
KvStore::put(ThreadCtx &ctx, std::size_t slot, std::uint64_t key,
             const void *value, std::uint64_t len)
{
    PERSIM_REQUIRE(slot < qnodes_.size(), "bad writer slot");
    McsGuard guard(ctx, lock_, qnodes_[slot]);
    return putLocked(ctx, slot, key, value, len);
}

KvStatus
KvStore::putLocked(ThreadCtx &ctx, std::size_t slot, std::uint64_t key,
                   const void *value, std::uint64_t len)
{
    PERSIM_REQUIRE(key != 0, "keys must be nonzero");
    PERSIM_REQUIRE(slot < qnodes_.size(), "bad writer slot");
    PERSIM_REQUIRE(len >= 1, "values must be nonempty");
    if (len > options_.max_value_bytes)
        return KvStatus::ValueTooLarge;

    if (options_.use_strands)
        ctx.newStrand();

    std::uint64_t found_at = 0, insert_at = 0;
    probe(ctx, key, found_at, insert_at);
    const bool update = found_at != layout_.buckets;
    if (!update && insert_at == layout_.buckets)
        return KvStatus::TableFull;

    // All capacity rejections happen before any persistent store: a
    // rejected put leaves no trace in persistent memory or the
    // journal. (A seq can still be consumed on LogFull — gaps are
    // fine, the journal scan only requires monotonicity.)
    std::uint64_t old_len = 0;
    if (update) {
        const Addr bucket = layout_.bucketAddr(found_at);
        old_len = ctx.load(bucket + KvLayout::val_len_off);
    }
    const bool in_place =
        update && old_len == len &&
        options_.strategy != KvUpdateStrategy::Cow;
    if (!in_place &&
        ctx.load(heap_cell_) + alignUp(len, 8) > layout_.heap_bytes)
        return KvStatus::HeapFull;

    const auto *bytes_in = static_cast<const std::uint8_t *>(value);
    const std::uint64_t seq = drawSeq(ctx);
    if (options_.strategy == KvUpdateStrategy::LogStructured) {
        KvJournalRecord record;
        record.kind = KvJournalRecord::kind_put;
        record.key = key;
        record.seq = seq;
        record.value.assign(bytes_in, bytes_in + len);
        if (!journalAppend(ctx, slot, record))
            return KvStatus::LogFull;
    }

    const KvStatus status =
        writeEntry(ctx, key, bytes_in, len, seq, found_at, insert_at);
    PERSIM_ASSERT(status == KvStatus::Ok,
                  "capacity was pre-checked under the lock");
    recordGolden(key, seq, false, bytes_in, len);
    return status;
}

KvStatus
KvStore::erase(ThreadCtx &ctx, std::size_t slot, std::uint64_t key)
{
    PERSIM_REQUIRE(slot < qnodes_.size(), "bad writer slot");
    McsGuard guard(ctx, lock_, qnodes_[slot]);
    return eraseLocked(ctx, slot, key);
}

KvStatus
KvStore::eraseLocked(ThreadCtx &ctx, std::size_t slot, std::uint64_t key)
{
    PERSIM_REQUIRE(key != 0, "keys must be nonzero");
    PERSIM_REQUIRE(slot < qnodes_.size(), "bad writer slot");
    if (options_.use_strands)
        ctx.newStrand();

    const std::uint64_t buckets = layout_.buckets;
    std::uint64_t index = hashIndex(key, buckets);
    for (std::uint64_t probe = 0; probe < buckets; ++probe) {
        const Addr bucket = layout_.bucketAddr(index);
        const std::uint64_t state =
            ctx.load(bucket + KvLayout::state_off);
        if (state == KvLayout::state_empty)
            return KvStatus::NotFound;
        if (state == KvLayout::state_live &&
            ctx.load(bucket + KvLayout::key_off) == key) {
            const std::uint64_t seq = drawSeq(ctx);
            // Journal the erase whenever a journal exists (not just
            // LogStructured): the tombstone persist below carries no
            // seq, so without a record the Repair tier could replay
            // an older journaled put (a staged txn mutation) over a
            // later erase it cannot see.
            if (hasJournal()) {
                KvJournalRecord record;
                record.kind = KvJournalRecord::kind_erase;
                record.key = key;
                record.seq = seq;
                if (!journalAppend(ctx, slot, record))
                    return KvStatus::LogFull;
            }
            // A single atomic state persist: erase is crash-atomic
            // (strong persist atomicity orders same-address writes).
            // Recovery never checksums tombstones, so the stale live
            // words left behind are dead weight, not a fault.
            ctx.store(bucket + KvLayout::state_off,
                      KvLayout::state_tombstone);
            ctx.rmwFetchAdd(live_cell_,
                            static_cast<std::uint64_t>(-1));
            recordGolden(key, seq, true, nullptr, 0);
            return KvStatus::Ok;
        }
        index = (index + 1) & (buckets - 1);
    }
    return KvStatus::NotFound;
}

bool
KvStore::get(ThreadCtx &ctx, std::uint64_t key,
             std::vector<std::uint8_t> &value) const
{
    // Lock-free traced reads: a reader racing a writer can observe a
    // mid-update bucket, exactly as real code would; tests that
    // assert on values read without concurrent writers.
    const std::uint64_t buckets = layout_.buckets;
    std::uint64_t index = hashIndex(key, buckets);
    for (std::uint64_t probe = 0; probe < buckets; ++probe) {
        const Addr bucket = layout_.bucketAddr(index);
        const std::uint64_t state =
            ctx.load(bucket + KvLayout::state_off);
        if (state == KvLayout::state_empty)
            return false;
        if (state == KvLayout::state_live &&
            ctx.load(bucket + KvLayout::key_off) == key) {
            const std::uint64_t val_off =
                ctx.load(bucket + KvLayout::val_off_off);
            const std::uint64_t val_len =
                ctx.load(bucket + KvLayout::val_len_off);
            value.resize(val_len);
            PBuffer heap(layout_.heap, layout_.heap_bytes);
            heap.read(ctx, val_off, value.data(), val_len);
            return true;
        }
        index = (index + 1) & (buckets - 1);
    }
    return false;
}

bool
KvStore::getWithSeq(ThreadCtx &ctx, std::uint64_t key,
                    std::vector<std::uint8_t> &value,
                    std::uint64_t &seq) const
{
    const std::uint64_t buckets = layout_.buckets;
    std::uint64_t index = hashIndex(key, buckets);
    for (std::uint64_t step = 0; step < buckets; ++step) {
        const Addr bucket = layout_.bucketAddr(index);
        const std::uint64_t state =
            ctx.load(bucket + KvLayout::state_off);
        if (state == KvLayout::state_empty)
            return false;
        if (state == KvLayout::state_live &&
            ctx.load(bucket + KvLayout::key_off) == key) {
            const std::uint64_t val_off =
                ctx.load(bucket + KvLayout::val_off_off);
            const std::uint64_t val_len =
                ctx.load(bucket + KvLayout::val_len_off);
            seq = ctx.load(bucket + KvLayout::seq_off);
            value.resize(val_len);
            PBuffer heap(layout_.heap, layout_.heap_bytes);
            heap.read(ctx, val_off, value.data(), val_len);
            return true;
        }
        index = (index + 1) & (buckets - 1);
    }
    return false;
}

bool
KvStore::journalStaged(ThreadCtx &ctx, std::size_t slot,
                       const KvJournalRecord &record,
                       std::uint64_t &lsn)
{
    PERSIM_REQUIRE(hasJournal(), "staging needs a shard journal");
    PERSIM_REQUIRE(record.txn != 0, "staged records carry a txn id");
    const std::vector<std::uint8_t> payload = record.encode();
    const std::uint64_t bytes =
        LogLayout::recordBytes(payload.size());
    if (journal_.tailOffset(ctx) + bytes > journalLayout().capacity)
        return false;
    lsn = journal_.append(ctx, slot, payload.data(), payload.size());
    // Issued from here on: a staged mutation's commit can no longer
    // fail, and recovery may roll it forward, so the version enters
    // the golden history now (not at apply time).
    recordGolden(record.key, record.seq,
                 record.kind == KvJournalRecord::kind_erase,
                 record.value.data(), record.value.size());
    return true;
}

KvStatus
KvStore::applyCommitted(ThreadCtx &ctx, std::uint64_t key,
                        const void *value, std::uint64_t len,
                        std::uint64_t seq)
{
    PERSIM_REQUIRE(key != 0, "keys must be nonzero");
    PERSIM_REQUIRE(len >= 1 && len <= options_.max_value_bytes,
                   "staged values were size-checked");
    std::uint64_t found_at = 0, insert_at = 0;
    probe(ctx, key, found_at, insert_at);
    if (found_at != layout_.buckets) {
        const Addr bucket = layout_.bucketAddr(found_at);
        if (ctx.load(bucket + KvLayout::seq_off) >= seq)
            return KvStatus::Ok; // Table already newer: idempotent.
    }
    const auto *bytes_in = static_cast<const std::uint8_t *>(value);
    const KvStatus status =
        writeEntry(ctx, key, bytes_in, len, seq, found_at, insert_at);
    PERSIM_ASSERT(status == KvStatus::Ok,
                  "commit capacity was pre-validated");
    return status;
}

KvStatus
KvStore::applyCommittedErase(ThreadCtx &ctx, std::uint64_t key,
                             std::uint64_t seq)
{
    PERSIM_REQUIRE(key != 0, "keys must be nonzero");
    std::uint64_t found_at = 0, insert_at = 0;
    probe(ctx, key, found_at, insert_at);
    if (found_at == layout_.buckets)
        return KvStatus::NotFound;
    const Addr bucket = layout_.bucketAddr(found_at);
    if (ctx.load(bucket + KvLayout::seq_off) > seq)
        return KvStatus::Ok; // Table already newer: idempotent.
    ctx.store(bucket + KvLayout::state_off, KvLayout::state_tombstone);
    ctx.rmwFetchAdd(live_cell_, static_cast<std::uint64_t>(-1));
    return KvStatus::Ok;
}

void
KvStore::scrub(ThreadCtx &ctx, std::uint64_t key)
{
    std::uint64_t found_at = 0, insert_at = 0;
    probe(ctx, key, found_at, insert_at);
    if (found_at == layout_.buckets)
        return;
    const Addr bucket = layout_.bucketAddr(found_at);
    ctx.store(bucket + KvLayout::state_off, KvLayout::state_tombstone);
    ctx.rmwFetchAdd(live_cell_, static_cast<std::uint64_t>(-1));
}

Addr
KvStore::entryAddr(ThreadCtx &ctx, std::uint64_t key) const
{
    std::uint64_t found_at = 0, insert_at = 0;
    probe(ctx, key, found_at, insert_at);
    if (found_at == layout_.buckets)
        return invalid_addr;
    return layout_.bucketAddr(found_at);
}

std::uint64_t
KvStore::liveCount(ThreadCtx &ctx) const
{
    return ctx.load(live_cell_);
}

std::uint64_t
KvStore::heapUsed(ThreadCtx &ctx) const
{
    return ctx.load(heap_cell_);
}

std::uint64_t
KvStore::journalTail(ThreadCtx &ctx) const
{
    return journal_.tailOffset(ctx);
}

std::uint64_t
KvStore::count(ThreadCtx &ctx) const
{
    std::uint64_t live = 0;
    for (std::uint64_t i = 0; i < layout_.buckets; ++i) {
        if (ctx.load(layout_.bucketAddr(i) + KvLayout::state_off) ==
            KvLayout::state_live)
            ++live;
    }
    return live;
}

} // namespace persim
