#include "kvstore/recovery.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace persim {

const char *
kvRecoveryModeName(KvRecoveryMode mode)
{
    switch (mode) {
      case KvRecoveryMode::Strict:
        return "strict";
      case KvRecoveryMode::DetectAndDiscard:
        return "detect_and_discard";
      case KvRecoveryMode::Repair:
        return "repair";
      case KvRecoveryMode::TxnResolve:
        return "txn_resolve";
    }
    return "unknown";
}

std::uint64_t
KvRecovery::faultCount(BucketFaultKind kind) const
{
    std::uint64_t n = 0;
    for (const BucketFault &fault : faults)
        if (fault.kind == kind)
            ++n;
    return n;
}

namespace {

/** Final journal-implied state of one key. */
struct RedoEntry
{
    std::uint64_t seq = 0;
    bool erased = false;
    std::vector<std::uint8_t> value;
};

/**
 * Replay the journal image into a per-key final state. Decoding
 * stops at the first malformed payload (truncate-at-first-bad, like
 * the log scan itself). Standalone records (txn == 0) must carry
 * strictly increasing sequence numbers or the suffix is distrusted;
 * staged txn records are exempt from that rule — a transaction's
 * mutations share one commit seq, and a migration's copy records
 * preserve their source seqs — and replay only when their txn is in
 * the committed set (skipped, not distrusted, otherwise).
 */
std::map<std::uint64_t, RedoEntry>
redoFromJournal(const MemoryImage &image, const LogLayout &journal,
                std::uint64_t max_value_bytes,
                const std::set<std::uint64_t> *committed,
                std::uint64_t &decoded_records,
                std::uint64_t &txn_skipped)
{
    std::map<std::uint64_t, RedoEntry> redo;
    decoded_records = 0;
    txn_skipped = 0;
    const LogRecovery log = PersistentLog::recover(image, journal);
    std::uint64_t last_seq = 0;
    for (const RecoveredRecord &raw : log.records) {
        KvJournalRecord record;
        if (!KvJournalRecord::decode(raw.payload, record))
            break;
        if (record.value.size() > max_value_bytes)
            break;
        if (record.txn == 0) {
            if (record.seq <= last_seq)
                break;
            last_seq = record.seq;
        }
        ++decoded_records;
        if (record.txn != 0 &&
            (committed == nullptr ||
             committed->count(record.txn) == 0)) {
            ++txn_skipped;
            continue;
        }
        RedoEntry &entry = redo[record.key];
        // Scan order is append order (appends serialize on the shard
        // lock), so the last record for a key is its final state —
        // even when a migration copy's preserved seq is older than a
        // later local put's.
        entry.seq = record.seq;
        entry.erased = record.kind == KvJournalRecord::kind_erase;
        entry.value = record.value;
    }
    return redo;
}

} // namespace

KvRecovery
recoverKvStore(const MemoryImage &image, const KvLayout &layout,
               const KvRecoveryOptions &options)
{
    KvRecovery result;
    result.mode = options.mode;

    std::unordered_map<std::uint64_t, std::uint64_t> owner; // key->bucket
    std::vector<std::uint64_t> states(layout.buckets);
    std::vector<bool> healthy(layout.buckets, false);
    std::map<std::uint64_t, std::uint64_t> entry_bucket; // key->bucket

    auto fault = [&result](std::uint64_t bucket, BucketFaultKind kind,
                           std::string detail) {
        result.faults.push_back({bucket, kind, std::move(detail)});
    };

    // Pass 1: validate each bucket in isolation.
    for (std::uint64_t i = 0; i < layout.buckets; ++i) {
        const Addr bucket = layout.bucketAddr(i);
        const std::uint64_t state =
            image.load(bucket + KvLayout::state_off, 8);
        states[i] = state;
        if (state == KvLayout::state_empty)
            continue;
        if (state == KvLayout::state_tombstone) {
            // A tombstone is self-describing by its state word alone;
            // its other words are a dead previous generation.
            ++result.tombstones;
            continue;
        }
        if (state != KvLayout::state_live) {
            std::ostringstream oss;
            oss << "bucket " << i << " has invalid state " << state;
            fault(i, BucketFaultKind::InvalidState, oss.str());
            continue;
        }
        const std::uint64_t key =
            image.load(bucket + KvLayout::key_off, 8);
        if (key == 0) {
            std::ostringstream oss;
            oss << "live bucket " << i << " has a zero key";
            fault(i, BucketFaultKind::ZeroKey, oss.str());
            continue;
        }
        const std::uint64_t val_off =
            image.load(bucket + KvLayout::val_off_off, 8);
        const std::uint64_t val_len =
            image.load(bucket + KvLayout::val_len_off, 8);
        if (val_len == 0 || val_len > layout.max_value_bytes ||
            val_off % 8 != 0 || val_off >= layout.heap_bytes ||
            val_off + val_len > layout.heap_bytes) {
            std::ostringstream oss;
            oss << "live bucket " << i << " references heap ["
                << val_off << ", " << val_off + val_len
                << ") outside [0, " << layout.heap_bytes << ")";
            fault(i, BucketFaultKind::BadValueRef, oss.str());
            continue;
        }
        const std::uint64_t seq =
            image.load(bucket + KvLayout::seq_off, 8);
        std::vector<std::uint8_t> payload(val_len);
        image.readBytes(payload.data(), layout.heap + val_off, val_len);
        const std::uint64_t stored =
            image.load(bucket + KvLayout::cksum_off, 8);
        if (stored != KvLayout::checksum(i, key, val_off, val_len, seq,
                                         payload.data())) {
            std::ostringstream oss;
            oss << "live bucket " << i << " (key " << key
                << ") fails its checksum";
            fault(i, BucketFaultKind::BadChecksum, oss.str());
            continue;
        }
        auto claimed = owner.emplace(key, i);
        if (!claimed.second) {
            // Two valid live buckets for one key: keep the newer
            // generation (higher seq), quarantine the stale one.
            const std::uint64_t other = claimed.first->second;
            const std::uint64_t other_seq = result.entries[key].seq;
            const std::uint64_t stale = seq > other_seq ? other : i;
            const std::uint64_t keep = seq > other_seq ? i : other;
            std::ostringstream oss;
            oss << "key " << key << " is live in two buckets ("
                << other << " and " << i << "); keeping seq "
                << std::max(seq, other_seq);
            fault(stale, BucketFaultKind::DuplicateKey, oss.str());
            healthy[stale] = false;
            healthy[keep] = true;
            claimed.first->second = keep;
            entry_bucket[key] = keep;
            if (keep == i) {
                result.entries[key].seq = seq;
                result.entries[key].value = std::move(payload);
            }
            continue;
        }
        healthy[i] = true;
        entry_bucket[key] = i;
        result.entries[key].seq = seq;
        result.entries[key].value = std::move(payload);
    }

    // Pass 2: probe-chain reachability for healthy entries. Faulted
    // buckets still occupy their slot (a reader would probe past
    // them); only a raw empty state ends a chain.
    for (const auto &[key, bucket_index] : entry_bucket) {
        std::uint64_t index = KvStore::hashIndex(key, layout.buckets);
        bool reachable = false;
        for (std::uint64_t probe = 0; probe < layout.buckets; ++probe) {
            if (index == bucket_index) {
                reachable = true;
                break;
            }
            if (states[index] == KvLayout::state_empty)
                break;
            index = (index + 1) & (layout.buckets - 1);
        }
        if (!reachable) {
            std::ostringstream oss;
            oss << "live key " << key << " in bucket " << bucket_index
                << " is unreachable from its probe chain";
            fault(bucket_index, BucketFaultKind::Unreachable,
                  oss.str());
            result.entries.erase(key);
        }
    }

    if (!result.faults.empty())
        result.error = result.faults.front().detail;

    if (options.mode == KvRecoveryMode::Strict) {
        result.ok = result.faults.empty();
        result.discarded = 0; // Strict never serves degraded.
        return result;
    }

    result.ok = true;
    result.discarded = result.faults.size();
    if (options.mode == KvRecoveryMode::DetectAndDiscard)
        return result;

    // Repair tier: replay the journal's per-key final state over the
    // table. The journal is written *before* the table (WAL), so a
    // journal record with a newer seq than the table's entry is the
    // authority: adopt puts the table lost (torn insert/update),
    // apply erases the table missed. Without a journal this tier
    // degrades to DetectAndDiscard.
    if (options.journal.base == invalid_addr ||
        options.journal.capacity == 0)
        return result;

    const auto redo = redoFromJournal(image, options.journal,
                                      layout.max_value_bytes,
                                      options.committed_txns,
                                      result.log_records,
                                      result.txn_skipped);
    std::uint64_t budget = options.repair_budget;
    for (const auto &[key, entry] : redo) {
        auto it = result.entries.find(key);
        const std::uint64_t table_seq =
            it == result.entries.end() ? 0 : it->second.seq;
        if (entry.seq <= table_seq)
            continue; // The table already reflects this mutation.
        if (budget == 0) {
            result.budget_exhausted = true;
            break; // Bounded effort: fall back to discard.
        }
        --budget;
        if (entry.erased) {
            if (it != result.entries.end()) {
                result.entries.erase(it);
                ++result.repaired;
            }
            continue;
        }
        KvRecoveredEntry &recovered = result.entries[key];
        recovered.seq = entry.seq;
        recovered.value = entry.value;
        recovered.repaired = true;
        ++result.repaired;
    }
    if (result.repaired <= result.discarded)
        result.discarded -= result.repaired;
    else
        result.discarded = 0;
    return result;
}

std::function<std::string(const MemoryImage &)>
makeKvRecoveryInvariant(const KvLayout &layout,
                        std::shared_ptr<const KvGoldenHistory> golden,
                        const KvRecoveryOptions &options,
                        std::shared_ptr<KvInvariantStats> stats)
{
    return [layout, golden = std::move(golden), options,
            stats = std::move(stats)](const MemoryImage &image) {
        const KvRecovery recovery =
            recoverKvStore(image, layout, options);
        if (stats) {
            stats->images.fetch_add(1, std::memory_order_relaxed);
            stats->quarantined.fetch_add(recovery.faults.size(),
                                         std::memory_order_relaxed);
            stats->repaired.fetch_add(recovery.repaired,
                                      std::memory_order_relaxed);
            stats->discarded.fetch_add(recovery.discarded,
                                       std::memory_order_relaxed);
            for (const BucketFault &fault : recovery.faults)
                stats->by_cause[static_cast<std::size_t>(fault.kind)]
                    .fetch_add(1, std::memory_order_relaxed);
        }
        if (!recovery.ok)
            return "strict recovery failed: " + recovery.error;
        // Silent-corruption check: every served (seq, value) must be
        // a version some writer actually issued for that key.
        // Plausibility, not completeness — which versions persisted
        // depends on the crash point and the tier's policy.
        for (const auto &[key, entry] : recovery.entries) {
            auto history = golden->find(key);
            if (history == golden->end()) {
                std::ostringstream oss;
                oss << "recovered key " << key << " was never written";
                return oss.str();
            }
            bool matches = false;
            for (const KvGoldenVersion &version : history->second) {
                if (version.seq == entry.seq && !version.erased &&
                    version.value == entry.value) {
                    matches = true;
                    break;
                }
            }
            if (!matches) {
                std::ostringstream oss;
                oss << "silent corruption: key " << key << " seq "
                    << entry.seq
                    << " has a value no writer issued";
                return oss.str();
            }
        }
        return std::string();
    };
}

} // namespace persim
