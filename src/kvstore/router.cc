#include "kvstore/router.hh"

#include <algorithm>
#include <sstream>

#include "common/bitops.hh"
#include "common/error.hh"

namespace persim {

const char *
kvMigrateStatusName(KvMigrateStatus status)
{
    switch (status) {
      case KvMigrateStatus::Ok:
        return "ok";
      case KvMigrateStatus::NoOp:
        return "no-op";
      case KvMigrateStatus::OwnerChanged:
        return "owner-changed";
      case KvMigrateStatus::TableFull:
        return "table-full";
      case KvMigrateStatus::HeapFull:
        return "heap-full";
      case KvMigrateStatus::LogFull:
        return "log-full";
    }
    return "unknown";
}

std::uint64_t
KvRouterLayout::ownerChecksum(std::uint64_t partition,
                              std::uint64_t owner)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t word) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (word >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    };
    mix(partition);
    mix(owner);
    return hash == 0 ? 1 : hash;
}

std::uint64_t
KvRouterLayout::partitionOf(std::uint64_t key, std::uint32_t partitions)
{
    return KvStore::hashIndex(key, partitions);
}

KvRouter
KvRouter::create(ThreadCtx &ctx, const KvRouterOptions &options,
                 std::size_t threads)
{
    PERSIM_REQUIRE(options.shards >= 1, "need at least one shard");
    PERSIM_REQUIRE(isPowerOfTwo(options.partitions) &&
                   options.partitions >= 1,
                   "partition count must be a power of two >= 1");
    PERSIM_REQUIRE(options.max_txns >= 2,
                   "need at least one usable txn id");
    PERSIM_REQUIRE(threads >= 1, "need at least one writer slot");

    KvRouter router;
    router.options_ = options;
    router.layout_.shards = options.shards;
    router.layout_.partitions = options.partitions;
    router.layout_.max_txns = options.max_txns;
    router.layout_.max_value_bytes = options.store.max_value_bytes;

    // Ids start at 1 (0 means "never written" everywhere).
    router.seq_cell_ = ctx.vmalloc(8, 64);
    ctx.store(router.seq_cell_, 1);
    router.txn_id_cell_ = ctx.vmalloc(8, 64);
    ctx.store(router.txn_id_cell_, 1);
    router.active_cell_ = ctx.vmalloc(8, 64);
    ctx.store(router.active_cell_, 0);
    router.version_cell_ = ctx.vmalloc(8, 64);
    ctx.store(router.version_cell_, 0);

    // Fresh persistent memory reads zero: the blank status table is
    // its own durable baseline.
    router.layout_.txn_status = ctx.pmalloc(options.max_txns * 8, 64);
    router.layout_.owner_table =
        ctx.pmalloc(options.partitions * 16, 64);
    for (std::uint64_t p = 0; p < options.partitions; ++p) {
        const std::uint64_t owner = p % options.shards;
        ctx.store(router.layout_.ownerAddr(p), owner);
        ctx.store(router.layout_.ownerAddr(p) + 8,
                  KvRouterLayout::ownerChecksum(p, owner));
    }
    ctx.persistBarrier(); // Owner table durable before any traffic.

    LogOptions log_options;
    log_options.capacity = options.group_log_capacity;
    // The group journal always uses the strand append idiom. The
    // non-strand path ends every append with a trailing epoch
    // barrier, which would order the commit record before the status
    // flip and the applies on its own — silently substituting for
    // the commit barrier the protocol is supposed to provide. The
    // strand idiom carries only a leading barrier (inter-record and
    // order_after deps), so the record-before-apply edge belongs to
    // commit()/migrate() alone, and omitting their barriers is an
    // observable bug rather than a masked one.
    log_options.use_strands = true;
    log_options.record_golden = options.store.record_golden;
    router.group_journal_ =
        PersistentLog::create(ctx, log_options, threads);
    router.layout_.group_journal = router.group_journal_.layout();

    KvOptions store_options = options.store;
    store_options.force_journal = true; // Txns stage through it.
    for (std::uint32_t s = 0; s < options.shards; ++s) {
        auto store = std::make_shared<KvStore>(KvStore::create(
            ctx, store_options, threads, router.seq_cell_));
        router.layout_.shard_layouts.push_back(store->layout());
        router.layout_.shard_journals.push_back(store->journalLayout());
        router.stores_.push_back(std::move(store));
    }

    router.published_seq_ =
        std::make_shared<std::atomic<std::uint64_t>>(0);
    router.txn_golden_ = std::make_shared<TxnGolden>();
    return router;
}

std::uint32_t
KvRouter::ownerShard(ThreadCtx &ctx, std::uint64_t partition) const
{
    const std::uint64_t owner =
        ctx.load(layout_.ownerAddr(partition));
    PERSIM_ASSERT(owner < layout_.shards,
                  "live owner table entries are always valid");
    return static_cast<std::uint32_t>(owner);
}

std::uint32_t
KvRouter::shardOf(ThreadCtx &ctx, std::uint64_t key) const
{
    return ownerShard(
        ctx, KvRouterLayout::partitionOf(key, layout_.partitions));
}

void
KvRouter::beginMutation(ThreadCtx &ctx)
{
    ctx.rmwFetchAdd(active_cell_, 1);
}

void
KvRouter::endMutation(ThreadCtx &ctx)
{
    // Version first, then the active count: a reader that saw
    // active == 0 on both sides of its reads with an unchanged
    // version cannot have overlapped any mutation.
    ctx.rmwFetchAdd(version_cell_, 1);
    ctx.rmwFetchAdd(active_cell_, static_cast<std::uint64_t>(-1));
}

KvStatus
KvRouter::put(ThreadCtx &ctx, std::size_t slot, std::uint64_t key,
              const void *value, std::uint64_t len)
{
    const std::uint64_t p =
        KvRouterLayout::partitionOf(key, layout_.partitions);
    while (true) {
        const std::uint32_t s = ownerShard(ctx, p);
        KvStore &store = *stores_[s];
        McsGuard guard(ctx, store.mcsLock(), store.qnode(slot));
        if (ownerShard(ctx, p) != s)
            continue; // A migration moved the partition; re-route.
        beginMutation(ctx);
        const KvStatus status =
            store.putLocked(ctx, slot, key, value, len);
        endMutation(ctx);
        if (status == KvStatus::Ok)
            published_seq_->fetch_add(1, std::memory_order_release);
        return status;
    }
}

KvStatus
KvRouter::erase(ThreadCtx &ctx, std::size_t slot, std::uint64_t key)
{
    const std::uint64_t p =
        KvRouterLayout::partitionOf(key, layout_.partitions);
    while (true) {
        const std::uint32_t s = ownerShard(ctx, p);
        KvStore &store = *stores_[s];
        McsGuard guard(ctx, store.mcsLock(), store.qnode(slot));
        if (ownerShard(ctx, p) != s)
            continue;
        beginMutation(ctx);
        const KvStatus status = store.eraseLocked(ctx, slot, key);
        endMutation(ctx);
        if (status == KvStatus::Ok)
            published_seq_->fetch_add(1, std::memory_order_release);
        return status;
    }
}

bool
KvRouter::get(ThreadCtx &ctx, std::uint64_t key,
              std::vector<std::uint8_t> &value) const
{
    // Migration keeps reads consistent lock-free: copies land in the
    // destination *before* the owner flip, and the source is scrubbed
    // only after it, so whichever owner this load observes has the
    // key.
    return stores_[shardOf(ctx, key)]->get(ctx, key, value);
}

KvTxnStatus
KvRouter::commit(ThreadCtx &ctx, std::size_t slot, const KvTxn &txn,
                 std::uint64_t *txn_id)
{
    if (txn.empty())
        return KvTxnStatus::Empty;
    for (const auto &[key, op] : txn.ops()) {
        PERSIM_REQUIRE(key != 0, "keys must be nonzero");
        if (!op.erase && (op.value.empty() ||
                          op.value.size() > layout_.max_value_bytes))
            return KvTxnStatus::ValueTooLarge;
    }

    while (true) {
        // Route every key, then lock the participant set in ascending
        // shard order (deadlock-free against other commits and
        // migrations, which take the same order).
        std::map<std::uint64_t, std::uint32_t> route;
        std::set<std::uint32_t> shard_set;
        for (const auto &[key, op] : txn.ops()) {
            const std::uint32_t s = shardOf(ctx, key);
            route[key] = s;
            shard_set.insert(s);
        }
        const std::vector<std::uint32_t> locked(shard_set.begin(),
                                                shard_set.end());
        for (std::uint32_t s : locked)
            stores_[s]->mcsLock().lock(ctx, stores_[s]->qnode(slot));

        // Holding a shard's lock pins every partition it owns (a
        // migration needs both locks), so a stable re-read means the
        // route stays valid for the whole commit.
        bool stable = true;
        for (const auto &[key, s] : route) {
            if (shardOf(ctx, key) != s) {
                stable = false;
                break;
            }
        }
        KvTxnStatus status = KvTxnStatus::Empty;
        if (stable)
            status = commitLocked(ctx, slot, txn, route, txn_id);
        for (auto it = locked.rbegin(); it != locked.rend(); ++it)
            stores_[*it]->mcsLock().unlock(ctx,
                                           stores_[*it]->qnode(slot));
        if (stable)
            return status;
    }
}

KvTxnStatus
KvRouter::commitLocked(ThreadCtx &ctx, std::size_t slot,
                       const KvTxn &txn,
                       const std::map<std::uint64_t, std::uint32_t>
                           &route,
                       std::uint64_t *txn_id)
{
    // Exact capacity pre-validation per participant shard: once the
    // first staged record is journaled, the commit can no longer
    // fail, so every rejection must happen here, before any
    // persistent store.
    std::map<std::uint32_t, std::vector<std::uint64_t>> by_shard;
    for (const auto &[key, s] : route)
        by_shard[s].push_back(key);
    std::vector<std::uint8_t> scratch;
    for (const auto &[s, keys] : by_shard) {
        KvStore &store = *stores_[s];
        std::uint64_t new_inserts = 0, heap_need = 0, journal_need = 0;
        for (std::uint64_t key : keys) {
            const KvTxn::Op &op = txn.ops().at(key);
            journal_need +=
                LogLayout::recordBytes(32 + op.value.size());
            if (op.erase)
                continue;
            std::uint64_t seq = 0;
            const bool present =
                store.getWithSeq(ctx, key, scratch, seq);
            if (!present)
                ++new_inserts;
            const bool in_place =
                present && scratch.size() == op.value.size() &&
                store.options().strategy != KvUpdateStrategy::Cow;
            if (!in_place)
                heap_need += alignUp(op.value.size(), 8);
        }
        if (store.liveCount(ctx) + new_inserts >
            store.layout().buckets)
            return KvTxnStatus::TableFull;
        if (store.heapUsed(ctx) + heap_need >
            store.layout().heap_bytes)
            return KvTxnStatus::HeapFull;
        if (store.journalTail(ctx) + journal_need >
            store.journalLayout().capacity)
            return KvTxnStatus::LogFull;
    }
    const std::uint64_t commit_bytes =
        LogLayout::recordBytes(32 + 16 * txn.size());
    if (group_journal_.tailOffset(ctx) + commit_bytes >
        layout_.group_journal.capacity)
        return KvTxnStatus::LogFull;

    const std::uint64_t id = ctx.rmwFetchAdd(txn_id_cell_, 1);
    if (id >= layout_.max_txns)
        return KvTxnStatus::TooManyTxns;

    beginMutation(ctx);
    const std::uint64_t seq = ctx.rmwFetchAdd(seq_cell_, 1);
    ctx.store(layout_.statusAddr(id),
              KvRouterLayout::statusWord(
                  id, KvRouterLayout::status_pending));

    // Stage every mutation in its shard's journal. The staged records
    // are not redo authority yet — per-shard recovery skips txn
    // records whose commit record is not durable.
    std::vector<KvTxnParticipant> participants;
    std::vector<Addr> staged_words;
    for (const auto &[key, s] : route) {
        const KvTxn::Op &op = txn.ops().at(key);
        KvJournalRecord record;
        record.kind = op.erase ? KvJournalRecord::kind_erase
                               : KvJournalRecord::kind_put;
        record.key = key;
        record.seq = seq;
        record.txn = id;
        record.value = op.value;
        std::uint64_t lsn = 0;
        const bool staged =
            stores_[s]->journalStaged(ctx, slot, record, lsn);
        PERSIM_ASSERT(staged, "journal capacity was pre-validated");
        participants.push_back({s, lsn});
        staged_words.push_back(layout_.shard_journals[s].base + lsn);
    }

    // The commit record: the durable commit point. Ordered after every
    // staged record via conflict re-reads (strand persistency orders
    // across strands only through conflicts).
    KvTxnRecord commit_record;
    commit_record.kind = KvTxnRecord::kind_commit;
    commit_record.txn = id;
    commit_record.seq = seq;
    commit_record.participants = participants;
    const std::vector<std::uint8_t> payload = commit_record.encode();
    group_journal_.append(ctx, slot, payload.data(), payload.size(),
                          staged_words);

    // Record durable before publication, publication before the table
    // applications — the two barriers the mutant omits.
    if (!options_.omit_commit_barrier)
        ctx.persistBarrier();
    ctx.rmwCas(layout_.statusAddr(id),
               KvRouterLayout::statusWord(
                   id, KvRouterLayout::status_pending),
               KvRouterLayout::statusWord(
                   id, KvRouterLayout::status_committed));
    if (!options_.omit_commit_barrier)
        ctx.persistBarrier();

    // Apply on the same strand, so the applies stay ordered after the
    // flip (and transitively after the commit record).
    for (const auto &[key, s] : route) {
        const KvTxn::Op &op = txn.ops().at(key);
        if (op.erase)
            stores_[s]->applyCommittedErase(ctx, key, seq);
        else
            stores_[s]->applyCommitted(ctx, key, op.value.data(),
                                       op.value.size(), seq);
    }

    if (options_.store.record_golden) {
        std::lock_guard<std::mutex> guard(txn_golden_->mutex);
        KvTxnGolden golden;
        golden.txn = id;
        golden.seq = seq;
        golden.ops = txn.ops();
        txn_golden_->txns.push_back(std::move(golden));
    }

    endMutation(ctx);
    published_seq_->fetch_add(1, std::memory_order_release);
    if (txn_id != nullptr)
        *txn_id = id;
    return KvTxnStatus::Committed;
}

bool
KvRouter::multiGet(ThreadCtx &ctx,
                   const std::vector<std::uint64_t> &keys,
                   std::map<std::uint64_t,
                            std::vector<std::uint8_t>> &out,
                   std::uint64_t &snapshot_seq,
                   unsigned max_retries) const
{
    std::vector<std::uint8_t> value;
    for (unsigned attempt = 0; attempt < max_retries; ++attempt) {
        const std::uint64_t version = ctx.load(version_cell_);
        if (ctx.load(active_cell_) != 0)
            continue; // A writer is inside its mutation window.
        // Pin the snapshot: it contains exactly the mutations whose
        // seq draw preceded this read (any mutation overlapping our
        // reads would trip the recheck below).
        const std::uint64_t pinned = ctx.load(seq_cell_);
        out.clear();
        for (std::uint64_t key : keys) {
            if (stores_[shardOf(ctx, key)]->get(ctx, key, value))
                out[key] = value;
        }
        if (ctx.load(active_cell_) != 0 ||
            ctx.load(version_cell_) != version)
            continue;
        snapshot_seq = pinned;
        return true;
    }
    return false;
}

KvMigrateStatus
KvRouter::migrate(ThreadCtx &ctx, std::size_t slot,
                  std::uint32_t partition, std::uint32_t to_shard)
{
    PERSIM_REQUIRE(partition < layout_.partitions, "bad partition");
    PERSIM_REQUIRE(to_shard < layout_.shards, "bad target shard");

    while (true) {
        const std::uint32_t from = ownerShard(ctx, partition);
        if (from == to_shard)
            return KvMigrateStatus::NoOp;
        const std::uint32_t lo = std::min(from, to_shard);
        const std::uint32_t hi = std::max(from, to_shard);
        McsGuard lo_guard(ctx, stores_[lo]->mcsLock(),
                          stores_[lo]->qnode(slot));
        McsGuard hi_guard(ctx, stores_[hi]->mcsLock(),
                          stores_[hi]->qnode(slot));
        if (ownerShard(ctx, partition) != from)
            continue; // Raced another migration; re-evaluate.

        KvStore &src = *stores_[from];
        KvStore &dst = *stores_[to_shard];

        // Collect the partition's live keys from the source table.
        std::vector<std::uint64_t> keys;
        const KvLayout &src_layout = layout_.shard_layouts[from];
        for (std::uint64_t i = 0; i < src_layout.buckets; ++i) {
            const Addr bucket = src_layout.bucketAddr(i);
            if (ctx.load(bucket + KvLayout::state_off) !=
                KvLayout::state_live)
                continue;
            const std::uint64_t key =
                ctx.load(bucket + KvLayout::key_off);
            if (KvRouterLayout::partitionOf(
                    key, layout_.partitions) == partition)
                keys.push_back(key);
        }
        std::sort(keys.begin(), keys.end());

        struct Copy
        {
            std::uint64_t key = 0;
            std::uint64_t seq = 0;
            std::vector<std::uint8_t> value;
        };
        std::vector<Copy> copies;
        std::uint64_t heap_need = 0, journal_need = 0;
        for (std::uint64_t key : keys) {
            Copy copy;
            copy.key = key;
            const bool found =
                src.getWithSeq(ctx, key, copy.value, copy.seq);
            PERSIM_ASSERT(found, "key was live under the lock");
            heap_need += alignUp(copy.value.size(), 8);
            journal_need +=
                LogLayout::recordBytes(32 + copy.value.size());
            copies.push_back(std::move(copy));
        }
        if (dst.liveCount(ctx) + copies.size() >
            layout_.shard_layouts[to_shard].buckets)
            return KvMigrateStatus::TableFull;
        if (dst.heapUsed(ctx) + heap_need >
            layout_.shard_layouts[to_shard].heap_bytes)
            return KvMigrateStatus::HeapFull;
        if (dst.journalTail(ctx) + journal_need >
            layout_.shard_journals[to_shard].capacity)
            return KvMigrateStatus::LogFull;
        if (group_journal_.tailOffset(ctx) +
                2 * LogLayout::recordBytes(48) >
            layout_.group_journal.capacity)
            return KvMigrateStatus::LogFull;

        beginMutation(ctx);
        const std::uint64_t id = ctx.rmwFetchAdd(txn_id_cell_, 1);

        KvTxnRecord begin;
        begin.kind = KvTxnRecord::kind_migrate_begin;
        begin.txn = id;
        begin.partition = partition;
        begin.from_shard = from;
        begin.to_shard = to_shard;
        begin.moved_keys = copies.size();
        const std::vector<std::uint8_t> begin_payload = begin.encode();
        group_journal_.append(ctx, slot, begin_payload.data(),
                              begin_payload.size());

        // Copy each key into the destination, preserving (seq, value):
        // journal the copy (redo authority once the end record is
        // durable), apply it, and remember the words the end record
        // must order after.
        std::vector<Addr> copied_words;
        for (const Copy &copy : copies) {
            KvJournalRecord record;
            record.kind = KvJournalRecord::kind_put;
            record.key = copy.key;
            record.seq = copy.seq;
            record.txn = id;
            record.value = copy.value;
            std::uint64_t lsn = 0;
            const bool staged =
                dst.journalStaged(ctx, slot, record, lsn);
            PERSIM_ASSERT(staged,
                          "journal capacity was pre-validated");
            copied_words.push_back(
                layout_.shard_journals[to_shard].base + lsn);
            dst.applyCommitted(ctx, copy.key, copy.value.data(),
                               copy.value.size(), copy.seq);
            const Addr entry = dst.entryAddr(ctx, copy.key);
            PERSIM_ASSERT(entry != invalid_addr,
                          "the copy was just applied");
            copied_words.push_back(entry + KvLayout::state_off);
        }

        // End record after every copy (records AND table state), then
        // barrier, then the owner flip, then barrier, then the source
        // scrub: a crash cut anywhere resolves to exactly one owner
        // that has every key.
        KvTxnRecord end = begin;
        end.kind = KvTxnRecord::kind_migrate_end;
        const std::vector<std::uint8_t> end_payload = end.encode();
        group_journal_.append(ctx, slot, end_payload.data(),
                              end_payload.size(), copied_words);
        ctx.persistBarrier();

        const Addr owner_addr = layout_.ownerAddr(partition);
        ctx.rmwCas(owner_addr, from, to_shard);
        ctx.store(owner_addr + 8,
                  KvRouterLayout::ownerChecksum(partition, to_shard));
        ctx.persistBarrier();

        for (const Copy &copy : copies)
            src.scrub(ctx, copy.key);

        endMutation(ctx);
        published_seq_->fetch_add(1, std::memory_order_release);
        return KvMigrateStatus::Ok;
    }
}

std::shared_ptr<const KvGoldenHistory>
KvRouter::goldenHistory() const
{
    auto merged = std::make_shared<KvGoldenHistory>();
    for (const auto &store : stores_) {
        for (auto &[key, versions] : store->goldenHistory()) {
            auto &dst = (*merged)[key];
            dst.insert(dst.end(), versions.begin(), versions.end());
        }
    }
    return merged;
}

std::shared_ptr<const KvTxnGoldenList>
KvRouter::txnGolden() const
{
    PERSIM_REQUIRE(txn_golden_ != nullptr, "router was not created");
    std::lock_guard<std::mutex> guard(txn_golden_->mutex);
    return std::make_shared<const KvTxnGoldenList>(txn_golden_->txns);
}

namespace {

/** One staged (txn != 0) record found in a shard journal prefix. */
struct StagedRecord
{
    std::uint32_t shard = 0;
    std::uint64_t lsn = 0;
    std::uint64_t key = 0;
    std::uint64_t seq = 0;
    std::uint64_t txn = 0;
};

} // namespace

KvGroupRecovery
recoverKvRouter(const MemoryImage &image, const KvRouterLayout &layout,
                const KvGroupRecoveryOptions &options)
{
    KvGroupRecovery rec;
    rec.mode = options.mode;

    // --- 1. Group journal: commit + migration records. ------------
    std::map<std::uint64_t, KvTxnRecord> commit_records;
    struct MigrationEnd
    {
        std::uint32_t to_shard = 0;
        std::uint64_t moved_keys = 0;
    };
    std::map<std::uint64_t, MigrationEnd> migration_ends;
    // Last migration record per partition, for owner fallback.
    std::map<std::uint64_t, std::uint32_t> owner_fallback;
    const LogRecovery group_log =
        PersistentLog::recover(image, layout.group_journal);
    for (const RecoveredRecord &raw : group_log.records) {
        KvTxnRecord record;
        if (!KvTxnRecord::decode(raw.payload, record))
            break; // Truncate-at-first-bad, like the scan itself.
        ++rec.txn_records;
        if (record.kind == KvTxnRecord::kind_commit) {
            bool sane = true;
            for (const KvTxnParticipant &part : record.participants)
                sane = sane && part.shard < layout.shards;
            if (!sane) {
                rec.txns[record.txn].faulted = true;
                ++rec.txn_lost;
                continue;
            }
            commit_records[record.txn] = record;
            rec.committed.insert(record.txn);
            rec.txns[record.txn].committed = true;
            continue;
        }
        if (record.partition >= layout.partitions ||
            record.from_shard >= layout.shards ||
            record.to_shard >= layout.shards)
            continue; // Checksummed but not for this layout: ignore.
        if (record.kind == KvTxnRecord::kind_migrate_begin) {
            // Begin durable, end not (yet): the flip cannot be
            // durable either, so the source still owns it.
            owner_fallback[record.partition] =
                static_cast<std::uint32_t>(record.from_shard);
        } else {
            owner_fallback[record.partition] =
                static_cast<std::uint32_t>(record.to_shard);
            migration_ends[record.txn] = {
                static_cast<std::uint32_t>(record.to_shard),
                record.moved_keys};
            rec.committed.insert(record.txn);
            rec.txns[record.txn].committed = true;
        }
    }

    // --- 2. Owner resolution: exactly one owner per partition. -----
    rec.owners.resize(layout.partitions, 0);
    for (std::uint64_t p = 0; p < layout.partitions; ++p) {
        const std::uint64_t word =
            image.load(layout.ownerAddr(p), 8);
        const std::uint64_t stored =
            image.load(layout.ownerAddr(p) + 8, 8);
        if (word < layout.shards &&
            stored == KvRouterLayout::ownerChecksum(p, word)) {
            rec.owners[p] = static_cast<std::uint32_t>(word);
            continue;
        }
        ++rec.owner_faults;
        auto fallback = owner_fallback.find(p);
        rec.owners[p] = fallback != owner_fallback.end()
                            ? fallback->second
                            : static_cast<std::uint32_t>(
                                  p % layout.shards);
    }

    // --- 3. Status table: in-doubt detection. ----------------------
    for (std::uint64_t t = 1; t < layout.max_txns; ++t) {
        const std::uint64_t word = image.load(layout.statusAddr(t), 8);
        if (word == 0)
            continue; // Never written.
        const std::uint64_t state = word & 3;
        if (word >> 2 != t ||
            (state != KvRouterLayout::status_pending &&
             state != KvRouterLayout::status_committed)) {
            ++rec.status_faults;
            continue;
        }
        if (state == KvRouterLayout::status_committed &&
            rec.committed.count(t) == 0) {
            // The volatile publication point persisted but the commit
            // record did not: in doubt. The record is the authority —
            // the transaction rolls back — but the conflict is
            // counted, never silent.
            ++rec.in_doubt;
            rec.txns[t].faulted = true;
        }
    }

    // --- 4. Per-shard recovery ladder with the committed set. ------
    const KvRecoveryMode shard_mode =
        options.mode == KvRecoveryMode::TxnResolve
            ? KvRecoveryMode::Repair
            : options.mode;
    for (std::uint32_t s = 0; s < layout.shards; ++s) {
        KvRecoveryOptions shard_options;
        shard_options.mode = shard_mode;
        shard_options.journal = layout.shard_journals[s];
        shard_options.repair_budget = options.repair_budget;
        shard_options.committed_txns = &rec.committed;
        rec.shards.push_back(recoverKvStore(
            image, layout.shard_layouts[s], shard_options));
    }

    // --- 5. Staged-record evidence from the shard journal prefixes. -
    std::vector<std::map<std::uint64_t, KvJournalRecord>> by_lsn(
        layout.shards);
    std::vector<StagedRecord> staged;
    for (std::uint32_t s = 0; s < layout.shards; ++s) {
        const LogRecovery shard_log =
            PersistentLog::recover(image, layout.shard_journals[s]);
        for (const RecoveredRecord &raw : shard_log.records) {
            KvJournalRecord record;
            if (!KvJournalRecord::decode(raw.payload, record))
                break;
            if (record.value.size() > layout.max_value_bytes)
                break;
            if (record.txn != 0) {
                staged.push_back({s, raw.offset, record.key,
                                  record.seq, record.txn});
                rec.txns[record.txn]; // Seen.
            }
            by_lsn[s].emplace(raw.offset, std::move(record));
        }
    }

    // --- 6. Committed evidence validation. --------------------------
    // A committed transaction whose staged records are not all inside
    // their journals' valid prefixes cannot be fully rolled forward:
    // detected loss, atomicity claims suspended.
    for (const auto &[t, record] : commit_records) {
        for (const KvTxnParticipant &part : record.participants) {
            auto it = by_lsn[part.shard].find(part.lsn);
            if (it == by_lsn[part.shard].end() ||
                it->second.txn != t) {
                ++rec.txn_lost;
                rec.txns[t].faulted = true;
            }
        }
    }
    for (const auto &[m, end] : migration_ends) {
        std::uint64_t found = 0;
        for (const auto &[lsn, record] : by_lsn[end.to_shard])
            if (record.txn == m)
                ++found;
        if (found < end.moved_keys) {
            ++rec.txn_lost;
            rec.txns[m].faulted = true;
        }
    }

    // --- 7. Uncommitted scrub (TxnResolve only). --------------------
    // A staged-but-uncommitted mutation that reached the table (the
    // crash landed between application-ordering violations or, for an
    // in-doubt transaction, after its applies) is rolled back: the
    // (key, seq) pair is unique to the staged mutation, so the match
    // is exact. Under Repair the partial state is left in place —
    // that is the tier the differential battery uses to expose the
    // no-commit-barrier mutant.
    if (options.mode == KvRecoveryMode::TxnResolve) {
        for (const StagedRecord &st : staged) {
            if (rec.committed.count(st.txn) != 0)
                continue;
            auto &entries = rec.shards[st.shard].entries;
            auto it = entries.find(st.key);
            if (it != entries.end() && it->second.seq == st.seq) {
                entries.erase(it);
                ++rec.txn_partial;
                rec.txns[st.txn].faulted = true;
            }
        }
    }

    // --- 8. Served state: owner-filtered union. ---------------------
    for (std::uint32_t s = 0; s < layout.shards; ++s) {
        for (const auto &[key, entry] : rec.shards[s].entries) {
            const std::uint64_t p =
                KvRouterLayout::partitionOf(key, layout.partitions);
            if (rec.owners[p] == s)
                rec.entries.emplace(key, entry);
            else
                ++rec.stale_copies; // Scrub the crash interrupted.
        }
    }

    if (options.mode == KvRecoveryMode::Strict) {
        rec.ok = !rec.anyTxnFaults();
        for (const KvRecovery &shard : rec.shards) {
            if (!shard.ok) {
                rec.ok = false;
                if (rec.error.empty())
                    rec.error = shard.error;
            }
        }
        if (!rec.ok && rec.error.empty()) {
            std::ostringstream oss;
            oss << "transaction faults: " << rec.in_doubt
                << " in doubt, " << rec.txn_lost << " lost, "
                << rec.txn_partial << " partial, " << rec.owner_faults
                << " owner, " << rec.status_faults << " status";
            rec.error = oss.str();
        }
    } else {
        rec.ok = true;
    }
    return rec;
}

namespace {

/** Does @p golden record an erase of @p key after @p seq? */
bool
laterGoldenErase(const KvGoldenHistory &golden, std::uint64_t key,
                 std::uint64_t seq)
{
    auto history = golden.find(key);
    if (history == golden.end())
        return false;
    for (const KvGoldenVersion &version : history->second)
        if (version.erased && version.seq > seq)
            return true;
    return false;
}

} // namespace

std::function<std::string(const MemoryImage &)>
makeKvRouterInvariant(const KvRouterLayout &layout,
                      std::shared_ptr<const KvGoldenHistory> golden,
                      std::shared_ptr<const KvTxnGoldenList> txn_golden,
                      const KvGroupRecoveryOptions &options,
                      std::shared_ptr<KvRouterInvariantStats> stats)
{
    return [layout, golden = std::move(golden),
            txn_golden = std::move(txn_golden), options,
            stats = std::move(stats)](const MemoryImage &image) {
        const KvGroupRecovery rec =
            recoverKvRouter(image, layout, options);
        bool budget_exhausted = false;
        for (const KvRecovery &shard : rec.shards)
            budget_exhausted |= shard.budget_exhausted;
        if (stats) {
            stats->shard.images.fetch_add(1,
                                          std::memory_order_relaxed);
            for (const KvRecovery &shard : rec.shards) {
                stats->shard.quarantined.fetch_add(
                    shard.faults.size(), std::memory_order_relaxed);
                stats->shard.repaired.fetch_add(
                    shard.repaired, std::memory_order_relaxed);
                stats->shard.discarded.fetch_add(
                    shard.discarded, std::memory_order_relaxed);
                for (const BucketFault &fault : shard.faults)
                    stats->shard
                        .by_cause[static_cast<std::size_t>(fault.kind)]
                        .fetch_add(1, std::memory_order_relaxed);
            }
            stats->in_doubt.fetch_add(rec.in_doubt,
                                      std::memory_order_relaxed);
            stats->txn_partial.fetch_add(rec.txn_partial,
                                         std::memory_order_relaxed);
            stats->txn_lost.fetch_add(rec.txn_lost,
                                      std::memory_order_relaxed);
            stats->owner_faults.fetch_add(rec.owner_faults,
                                          std::memory_order_relaxed);
            stats->stale_copies.fetch_add(rec.stale_copies,
                                          std::memory_order_relaxed);
        }
        if (!rec.ok)
            return "strict group recovery failed: " + rec.error;

        // Silent value corruption: every served (seq, value) must be
        // a version some writer issued (single-key, staged txn, or
        // migration copy — all recorded at issue time).
        for (const auto &[key, entry] : rec.entries) {
            auto history = golden->find(key);
            if (history == golden->end()) {
                std::ostringstream oss;
                oss << "recovered key " << key << " was never written";
                return oss.str();
            }
            bool matches = false;
            for (const KvGoldenVersion &version : history->second) {
                if (version.seq == entry.seq && !version.erased &&
                    version.value == entry.value) {
                    matches = true;
                    break;
                }
            }
            if (!matches) {
                std::ostringstream oss;
                oss << "silent corruption: key " << key << " seq "
                    << entry.seq << " has a value no writer issued";
                return oss.str();
            }
        }

        // Atomicity: only meaningful for the repairing tiers, and
        // only from evidence that validated end to end — any detected
        // damage (lost participants, in-doubt flips, owner faults,
        // exhausted budgets) suspends the claim: counted, not silent.
        const bool repairing =
            options.mode == KvRecoveryMode::Repair ||
            options.mode == KvRecoveryMode::TxnResolve;
        const bool evidence_clean =
            !rec.anyTxnFaults() && !budget_exhausted;
        for (const KvTxnGolden &txn : *txn_golden) {
            auto resolution = rec.txns.find(txn.txn);
            if (resolution != rec.txns.end() &&
                resolution->second.faulted)
                continue;
            const bool committed = rec.committed.count(txn.txn) != 0;
            if (committed && repairing && evidence_clean) {
                // All: every op reflected at or after the commit seq.
                for (const auto &[key, op] : txn.ops) {
                    auto entry = rec.entries.find(key);
                    if (op.erase) {
                        if (entry != rec.entries.end() &&
                            entry->second.seq < txn.seq) {
                            std::ostringstream oss;
                            oss << "committed txn " << txn.txn
                                << " partially applied: key " << key
                                << " not erased at seq " << txn.seq;
                            return oss.str();
                        }
                        continue;
                    }
                    if (entry == rec.entries.end()) {
                        if (!laterGoldenErase(*golden, key, txn.seq)) {
                            std::ostringstream oss;
                            oss << "committed txn " << txn.txn
                                << " partially applied: key " << key
                                << " missing below seq " << txn.seq;
                            return oss.str();
                        }
                    } else if (entry->second.seq < txn.seq) {
                        std::ostringstream oss;
                        oss << "committed txn " << txn.txn
                            << " partially applied: key " << key
                            << " stuck at seq " << entry->second.seq;
                        return oss.str();
                    }
                }
            } else if (!committed &&
                       options.mode == KvRecoveryMode::Repair) {
                // Nothing — or at least not *some*: partial
                // visibility of an uncommitted transaction at its
                // commit seq means the applies outran the commit
                // record, which the hardened barriers make
                // impossible. The no-commit-barrier mutant lands
                // exactly here.
                std::size_t visible = 0, checkable = 0;
                for (const auto &[key, op] : txn.ops) {
                    if (op.erase)
                        continue; // Absence is indistinguishable.
                    ++checkable;
                    auto entry = rec.entries.find(key);
                    if (entry != rec.entries.end() &&
                        entry->second.seq == txn.seq)
                        ++visible;
                }
                if (visible != 0 && visible != checkable) {
                    std::ostringstream oss;
                    oss << "uncommitted txn " << txn.txn
                        << " partially visible at seq " << txn.seq
                        << " (" << visible << "/" << checkable
                        << " puts applied, no commit record)";
                    return oss.str();
                }
            }
        }
        return std::string();
    };
}

} // namespace persim
