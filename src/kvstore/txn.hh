/**
 * @file
 * Cross-shard transaction primitives: staging, commit records, and
 * the host-side golden transaction history.
 *
 * A KvTxn stages puts/erases against any keys of a KvRouter group
 * (last write per key wins). Commit is two-phase over the existing
 * persistent-log machinery:
 *
 *  1. *Stage*: with every participant shard's MCS lock held (acquired
 *     in ascending shard order — deadlock-free), capacity is
 *     pre-validated exactly, one commit seq S is drawn from the
 *     group-shared counter, and each mutation is appended to its
 *     shard's journal as a staged record (txn id + S). Staged records
 *     are not redo authority yet: per-shard recovery skips them.
 *  2. *Commit*: a single commit record naming every participant
 *     (shard, LSN) pair is appended to the group journal, ordered
 *     after the staged records (strand conflict re-reads + barrier);
 *     then the transaction's status word flips pending -> committed
 *     with an rmwCas — the volatile publication point — and a second
 *     barrier orders the flip before the table applications that
 *     follow.
 *
 * The *durable* commit point is the commit record itself: recovery
 * treats a transaction as committed iff its commit record validates
 * in the group-journal scan. The status flip is an in-doubt detector
 * — a status word that says committed while the record is unreadable
 * is counted, never silently served (see router.hh's
 * recoverKvRouter).
 *
 * Migration rides the same journal with begin/end records; see
 * KvRouter::migrate.
 */

#ifndef PERSIM_KVSTORE_TXN_HH
#define PERSIM_KVSTORE_TXN_HH

#include <cstdint>
#include <map>
#include <vector>

namespace persim {

/** One (shard, journal offset) participant named by a commit record. */
struct KvTxnParticipant
{
    std::uint64_t shard = 0;
    std::uint64_t lsn = 0; //!< Byte offset in the shard's journal.
};

/** One decoded group-journal record (commit / migration). */
struct KvTxnRecord
{
    static constexpr std::uint64_t kind_commit = 3;
    static constexpr std::uint64_t kind_migrate_begin = 4;
    static constexpr std::uint64_t kind_migrate_end = 5;

    std::uint64_t kind = 0;
    std::uint64_t txn = 0; //!< Transaction or migration id (nonzero).
    std::uint64_t seq = 0; //!< Commit seq (0 for migration records).

    /** Participants, in staging order (commit records only). */
    std::vector<KvTxnParticipant> participants;

    /** Migration fields (begin/end records only). */
    std::uint64_t partition = 0;
    std::uint64_t from_shard = 0;
    std::uint64_t to_shard = 0;
    std::uint64_t moved_keys = 0;

    /** Serialize to a log payload. */
    std::vector<std::uint8_t> encode() const;

    /** Parse a log payload; returns false if malformed. */
    static bool decode(const std::vector<std::uint8_t> &payload,
                       KvTxnRecord &record);
};

/** Outcome of KvRouter::commit. */
enum class KvTxnStatus : std::uint8_t {
    Committed = 0,
    Empty,         //!< No staged mutations; nothing to do.
    TooManyTxns,   //!< Status table exhausted; backpressure.
    TableFull,     //!< Some shard's table cannot take the inserts.
    HeapFull,      //!< Some shard's value heap cannot take the values.
    LogFull,       //!< A shard journal or the group journal is full.
    ValueTooLarge, //!< A staged value exceeds max_value_bytes.
};

/** Human-readable status name. */
const char *kvTxnStatusName(KvTxnStatus status);

/** A multi-key cross-shard transaction, staged host-side. */
class KvTxn
{
  public:
    struct Op
    {
        bool erase = false;
        std::vector<std::uint8_t> value;
    };

    /** Stage a put; the last op staged for a key wins. */
    void
    put(std::uint64_t key, const void *value, std::uint64_t len)
    {
        Op op;
        const auto *bytes = static_cast<const std::uint8_t *>(value);
        op.value.assign(bytes, bytes + len);
        ops_[key] = std::move(op);
    }

    /** Stage an erase; the last op staged for a key wins. */
    void
    erase(std::uint64_t key)
    {
        Op op;
        op.erase = true;
        ops_[key] = std::move(op);
    }

    bool empty() const { return ops_.empty(); }
    std::size_t size() const { return ops_.size(); }

    /** Staged ops by key (deterministic order). */
    const std::map<std::uint64_t, Op> &ops() const { return ops_; }

  private:
    std::map<std::uint64_t, Op> ops_;
};

/** One committed-by-execution transaction, recorded host-side. */
struct KvTxnGolden
{
    std::uint64_t txn = 0;
    std::uint64_t seq = 0; //!< The shared commit seq.
    std::map<std::uint64_t, KvTxn::Op> ops;
};

/** Host-side golden list of every transaction that reached staging. */
using KvTxnGoldenList = std::vector<KvTxnGolden>;

} // namespace persim

#endif // PERSIM_KVSTORE_TXN_HH
