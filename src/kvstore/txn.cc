#include "kvstore/txn.hh"

namespace persim {

const char *
kvTxnStatusName(KvTxnStatus status)
{
    switch (status) {
      case KvTxnStatus::Committed:
        return "committed";
      case KvTxnStatus::Empty:
        return "empty";
      case KvTxnStatus::TooManyTxns:
        return "too-many-txns";
      case KvTxnStatus::TableFull:
        return "table-full";
      case KvTxnStatus::HeapFull:
        return "heap-full";
      case KvTxnStatus::LogFull:
        return "log-full";
      case KvTxnStatus::ValueTooLarge:
        return "value-too-large";
    }
    return "unknown";
}

namespace {

void
putWord(std::vector<std::uint8_t> &payload, std::size_t off,
        std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        payload[off + i] = (v >> (8 * i)) & 0xff;
}

std::uint64_t
getWord(const std::vector<std::uint8_t> &payload, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(payload[off + i]) << (8 * i);
    return v;
}

} // namespace

// Commit:        [kind][txn][seq][count] then count x [shard][lsn].
// Migrate begin/end: [kind][txn][partition][from][to][moved_keys].
std::vector<std::uint8_t>
KvTxnRecord::encode() const
{
    if (kind == kind_commit) {
        std::vector<std::uint8_t> payload(32 +
                                          16 * participants.size());
        putWord(payload, 0, kind);
        putWord(payload, 8, txn);
        putWord(payload, 16, seq);
        putWord(payload, 24, participants.size());
        for (std::size_t i = 0; i < participants.size(); ++i) {
            putWord(payload, 32 + 16 * i, participants[i].shard);
            putWord(payload, 40 + 16 * i, participants[i].lsn);
        }
        return payload;
    }
    std::vector<std::uint8_t> payload(48);
    putWord(payload, 0, kind);
    putWord(payload, 8, txn);
    putWord(payload, 16, partition);
    putWord(payload, 24, from_shard);
    putWord(payload, 32, to_shard);
    putWord(payload, 40, moved_keys);
    return payload;
}

bool
KvTxnRecord::decode(const std::vector<std::uint8_t> &payload,
                    KvTxnRecord &record)
{
    if (payload.size() < 32)
        return false;
    record = KvTxnRecord();
    record.kind = getWord(payload, 0);
    record.txn = getWord(payload, 8);
    if (record.txn == 0)
        return false;
    if (record.kind == kind_commit) {
        record.seq = getWord(payload, 16);
        const std::uint64_t count = getWord(payload, 24);
        if (record.seq == 0 || count == 0 ||
            payload.size() != 32 + 16 * count)
            return false;
        record.participants.resize(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            record.participants[i].shard = getWord(payload, 32 + 16 * i);
            record.participants[i].lsn = getWord(payload, 40 + 16 * i);
        }
        return true;
    }
    if (record.kind != kind_migrate_begin &&
        record.kind != kind_migrate_end)
        return false;
    if (payload.size() != 48)
        return false;
    record.partition = getWord(payload, 16);
    record.from_shard = getWord(payload, 24);
    record.to_shard = getWord(payload, 32);
    record.moved_keys = getWord(payload, 40);
    return record.from_shard != record.to_shard;
}

} // namespace persim
