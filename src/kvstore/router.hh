/**
 * @file
 * KvRouter: a hash-partitioned front end over N KvStore shards, with
 * cross-shard transactions, consistent snapshots, and crash-consistent
 * shard rebalancing.
 *
 * This is the first subsystem where one *logical* operation's persists
 * span engine threads and shard strands, i.e. where the paper's models
 * (strict / epoch / strand / Px86) actually disagree at service scale:
 *
 *  - **Routing**: keys hash to one of `partitions` partitions; a
 *    persistent owner table (one checksummed entry per partition) maps
 *    partitions to shards. Single-key ops take the owning shard's MCS
 *    lock, re-validate ownership under it (a migration may have moved
 *    the partition between routing and locking), and run the ordinary
 *    KvStore protocol.
 *
 *  - **Transactions** (KvTxn): two-phase commit over the existing log
 *    machinery. With every participant's lock held (ascending shard
 *    order), capacity is pre-validated exactly, one commit seq S is
 *    drawn from the group-shared counter, the txn's status word is set
 *    pending, and each mutation is staged in its shard's journal
 *    (txn id + S). A single commit record naming every (shard, LSN)
 *    participant then goes to the group journal, *ordered after* the
 *    staged records via conflict re-reads (strand-proof); a persist
 *    barrier makes it durable-before-publication; an rmwCas flips the
 *    status word pending -> committed; a second barrier orders the
 *    flip before the table applications. The commit record is the
 *    durable commit point; the flip is the volatile publication point
 *    and recovery's in-doubt detector.
 *
 *  - **Snapshots**: multiGet is a seqlock reader over the group
 *    (writers bump active/version cells around every mutation); the
 *    snapshot is pinned by the global seq counter read inside the
 *    stable window.
 *
 *  - **Migration**: rebalancing partition p from shard A to B journals
 *    a begin record, stages+applies every copied key into B (preserving
 *    (seq, value)), journals an end record ordered after the copies,
 *    barriers, flips the owner entry, barriers, then scrubs A's
 *    copies. A crash anywhere recovers to exactly one owner: the valid
 *    checksummed owner entry wins; an invalid entry falls back to the
 *    journal (end record durable -> B, else A).
 *
 * recoverKvRouter extends the per-shard recovery ladder with the
 * fourth tier (TxnResolve): committed transactions roll forward from
 * their staged records, in-doubt transactions (status flip durable,
 * commit record lost) are counted, partial state of uncommitted
 * transactions is scrubbed shard-by-shard from the staged-record
 * evidence, and the served map is the owner-filtered union of the
 * shards. Under `Repair` the same group evidence drives roll-forward
 * but uncommitted staged state is *not* scrubbed — the tier the
 * differential atomicity battery uses to expose the no-commit-barrier
 * mutant.
 */

#ifndef PERSIM_KVSTORE_ROUTER_HH
#define PERSIM_KVSTORE_ROUTER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "kvstore/kvstore.hh"
#include "kvstore/recovery.hh"
#include "kvstore/txn.hh"
#include "pstruct/log.hh"
#include "sim/engine.hh"

namespace persim {

/** Router construction options. */
struct KvRouterOptions
{
    std::uint32_t shards = 2;      //!< KvStore shard count (>= 1).
    std::uint32_t partitions = 16; //!< Power of two >= shards.

    /** Per-shard geometry; force_journal is turned on internally. */
    KvOptions store;

    /** Group (commit/migration) journal capacity in bytes. */
    std::uint64_t group_log_capacity = 1 << 18;

    /** Status-table slots; txn ids beyond this are backpressured. */
    std::uint64_t max_txns = 4096;

    /**
     * FAULT DEMONSTRATION ONLY: omit the two commit barriers (record
     * durable before flip, flip before applies). The commit record
     * then races its own transaction's table applications — exactly
     * the bug the differential atomicity battery must flag.
     */
    bool omit_commit_barrier = false;
};

/** Placement of a router group (everything recovery needs). */
struct KvRouterLayout
{
    std::uint32_t shards = 0;
    std::uint32_t partitions = 0;
    std::uint64_t max_txns = 0;
    std::uint64_t max_value_bytes = 0;

    std::vector<KvLayout> shard_layouts;
    std::vector<LogLayout> shard_journals;
    LogLayout group_journal;

    Addr txn_status = invalid_addr;  //!< max_txns words.
    Addr owner_table = invalid_addr; //!< partitions x 16 bytes.

    /** Status-word states (low 2 bits; high bits echo the txn id). */
    static constexpr std::uint64_t status_pending = 1;
    static constexpr std::uint64_t status_committed = 2;

    Addr statusAddr(std::uint64_t txn) const
    {
        return txn_status + txn * 8;
    }

    /** The status word for @p txn in @p state: id echoed above the
        state bits so a stale or torn word cannot impersonate another
        transaction's slot. */
    static std::uint64_t statusWord(std::uint64_t txn,
                                    std::uint64_t state)
    {
        return txn * 4 + state;
    }

    Addr ownerAddr(std::uint64_t partition) const
    {
        return owner_table + partition * 16;
    }

    /** FNV-1a over (partition, owner), forced nonzero: a torn owner
        entry is detectable, and zeroed memory never validates. */
    static std::uint64_t ownerChecksum(std::uint64_t partition,
                                       std::uint64_t owner);

    /** The partition @p key hashes to. */
    static std::uint64_t partitionOf(std::uint64_t key,
                                     std::uint32_t partitions);
};

/** Outcome of KvRouter::migrate. */
enum class KvMigrateStatus : std::uint8_t {
    Ok = 0,
    NoOp,         //!< The target shard already owns the partition.
    OwnerChanged, //!< Lost an ownership race; caller may retry.
    TableFull,    //!< Destination table cannot take the copies.
    HeapFull,     //!< Destination heap cannot take the values.
    LogFull,      //!< Destination or group journal is full.
};

/** Human-readable status name. */
const char *kvMigrateStatusName(KvMigrateStatus status);

/** A hash-partitioned KV service over N crash-consistent shards. */
class KvRouter
{
  public:
    KvRouter() = default;

    /** Allocate the group: shards (journals forced), group journal,
        status + owner tables, seqlock cells, shared seq counter. */
    static KvRouter create(ThreadCtx &ctx,
                           const KvRouterOptions &options,
                           std::size_t threads);

    /** Routed single-key ops (lock, re-validate owner, mutate). */
    [[nodiscard]] KvStatus put(ThreadCtx &ctx, std::size_t slot,
                               std::uint64_t key, const void *value,
                               std::uint64_t len);
    [[nodiscard]] KvStatus erase(ThreadCtx &ctx, std::size_t slot,
                                 std::uint64_t key);
    bool get(ThreadCtx &ctx, std::uint64_t key,
             std::vector<std::uint8_t> &value) const;

    /**
     * Commit a staged transaction (see file comment). On Committed,
     * every mutation is durable-atomically applied; any other status
     * is pure backpressure — no persistent state changed. @p txn_id
     * (optional) receives the transaction id.
     */
    KvTxnStatus commit(ThreadCtx &ctx, std::size_t slot,
                       const KvTxn &txn,
                       std::uint64_t *txn_id = nullptr);

    /**
     * Consistent multi-shard snapshot read: retries the seqlock
     * window until no mutation overlapped it (bounded by
     * @p max_retries). Found keys land in @p out; @p snapshot_seq is
     * the global seq counter pinned inside the stable window.
     * @return False when the retry budget ran out.
     */
    bool multiGet(ThreadCtx &ctx,
                  const std::vector<std::uint64_t> &keys,
                  std::map<std::uint64_t, std::vector<std::uint8_t>> &out,
                  std::uint64_t &snapshot_seq,
                  unsigned max_retries = 64) const;

    /**
     * Move @p partition to @p to_shard, crash-consistently (see file
     * comment). Rejections are backpressure; nothing moved.
     */
    KvMigrateStatus migrate(ThreadCtx &ctx, std::size_t slot,
                            std::uint32_t partition,
                            std::uint32_t to_shard);

    /** The shard currently owning @p key (traced owner-table read). */
    std::uint32_t shardOf(ThreadCtx &ctx, std::uint64_t key) const;

    /**
     * Mutations published so far — host-side acquire read, safe from
     * any OS thread (a poller may race the engine's workers; the
     * release increment in the writers pairs with this acquire).
     */
    std::uint64_t publishedSeq() const
    {
        return published_seq_->load(std::memory_order_acquire);
    }

    const KvRouterLayout &layout() const { return layout_; }
    const KvRouterOptions &options() const { return options_; }
    KvStore &shard(std::size_t i) { return *stores_.at(i); }
    const KvStore &shard(std::size_t i) const { return *stores_.at(i); }

    /** Merged per-key golden history across all shards (host side). */
    std::shared_ptr<const KvGoldenHistory> goldenHistory() const;

    /** Every transaction that reached staging (host side). */
    std::shared_ptr<const KvTxnGoldenList> txnGolden() const;

    /** Group-journal appends (host side, for log cross-checks). */
    std::vector<GoldenLogRecord> groupJournalGolden() const
    {
        return group_journal_.goldenRecords();
    }

  private:
    /** Owner of @p partition (traced load; valid during execution). */
    std::uint32_t ownerShard(ThreadCtx &ctx,
                             std::uint64_t partition) const;

    /** Seqlock writer window around every mutation. */
    void beginMutation(ThreadCtx &ctx);
    void endMutation(ThreadCtx &ctx);

    /** Stage + commit with all participant locks already held. */
    KvTxnStatus commitLocked(ThreadCtx &ctx, std::size_t slot,
                             const KvTxn &txn,
                             const std::map<std::uint64_t,
                                            std::uint32_t> &route,
                             std::uint64_t *txn_id);

    KvRouterOptions options_;
    KvRouterLayout layout_;
    std::vector<std::shared_ptr<KvStore>> stores_;
    PersistentLog group_journal_;

    Addr seq_cell_ = invalid_addr;     //!< Group-shared seq counter.
    Addr txn_id_cell_ = invalid_addr;  //!< Next txn/migration id.
    Addr active_cell_ = invalid_addr;  //!< Seqlock: writers inside.
    Addr version_cell_ = invalid_addr; //!< Seqlock: mutations done.

    /** Host-side mutation count: written by engine worker threads,
        polled by ordinary OS threads (release/acquire pair). */
    std::shared_ptr<std::atomic<std::uint64_t>> published_seq_;

    struct TxnGolden
    {
        std::mutex mutex;
        KvTxnGoldenList txns;
    };
    std::shared_ptr<TxnGolden> txn_golden_;
};

/** Group recovery knobs. */
struct KvGroupRecoveryOptions
{
    KvRecoveryMode mode = KvRecoveryMode::TxnResolve;
    std::uint64_t repair_budget = 1 << 20;
};

/** How one staged transaction (or migration) resolved at recovery. */
struct KvTxnResolution
{
    bool committed = false; //!< Commit/end record durable and valid.

    /**
     * Detected damage (lost participant, in-doubt status, exhausted
     * repair budget): the transaction's atomicity claims are
     * suspended — counted, never silent.
     */
    bool faulted = false;
};

/** Result of recovering a router group image. */
struct KvGroupRecovery
{
    bool ok = false;          //!< False only under Strict with faults.
    std::string error;        //!< First failure description.
    KvRecoveryMode mode = KvRecoveryMode::TxnResolve;

    std::vector<KvRecovery> shards; //!< Per-shard ladder results.

    /** Resolved owner of each partition (always < shards). */
    std::vector<std::uint32_t> owners;

    /** Served entries: owner-filtered union of the shards. */
    std::map<std::uint64_t, KvRecoveredEntry> entries;

    /** Ids (txn + migration) whose commit/end record is durable. */
    std::set<std::uint64_t> committed;

    /** Every id seen in any journal, with its resolution. */
    std::map<std::uint64_t, KvTxnResolution> txns;

    std::uint64_t txn_records = 0;  //!< Valid group-journal records.
    std::uint64_t in_doubt = 0;     //!< Flip durable, record lost.
    std::uint64_t txn_partial = 0;  //!< Uncommitted staged entries
                                    //!< scrubbed (TxnResolve).
    std::uint64_t txn_lost = 0;     //!< Committed participants
                                    //!< unreadable.
    std::uint64_t owner_faults = 0; //!< Invalid owner entries.
    std::uint64_t status_faults = 0;//!< Corrupt status words.
    std::uint64_t stale_copies = 0; //!< Entries filtered out by
                                    //!< ownership.

    /** Any transaction-level damage detected. */
    bool
    anyTxnFaults() const
    {
        return in_doubt != 0 || txn_partial != 0 || txn_lost != 0 ||
               owner_faults != 0 || status_faults != 0;
    }
};

/**
 * Recover a router group from a crashed image: scan the group journal
 * (commit + migration records), resolve partition owners, run the
 * per-shard ladder with the committed set, validate committed
 * participants, scrub uncommitted staged state (TxnResolve), and
 * build the owner-filtered union. Pure function of the image; never
 * throws on corrupt input.
 */
KvGroupRecovery recoverKvRouter(const MemoryImage &image,
                                const KvRouterLayout &layout,
                                const KvGroupRecoveryOptions &options);

/** Group-level accounting for campaign surfaces (see KvInvariantStats
    for the bit-identity rationale). */
struct KvRouterInvariantStats
{
    KvInvariantStats shard; //!< Per-shard ladder accounting.
    std::atomic<std::uint64_t> in_doubt{0};
    std::atomic<std::uint64_t> txn_partial{0};
    std::atomic<std::uint64_t> txn_lost{0};
    std::atomic<std::uint64_t> owner_faults{0};
    std::atomic<std::uint64_t> stale_copies{0};
};

/**
 * Build a fault-campaign invariant over group recovery. A violation
 * is silent corruption, in order of severity:
 *
 *  - a served (seq, value) no writer issued (as makeKvRecoveryInvariant);
 *  - a committed, un-faulted transaction only partially reflected
 *    below its commit seq — roll-forward failed although every bit of
 *    evidence validated;
 *  - under Repair (no scrub): an uncommitted, un-faulted transaction
 *    *partially* visible at its commit seq — some ops applied, some
 *    not, with no commit record. The hardened protocol's barriers
 *    make this unreachable; the no-commit-barrier mutant lands here.
 *
 * Detected states (quarantine, in-doubt, scrubbed partials, lost
 * participants) accumulate into @p stats, not violations.
 */
std::function<std::string(const MemoryImage &)>
makeKvRouterInvariant(const KvRouterLayout &layout,
                      std::shared_ptr<const KvGoldenHistory> golden,
                      std::shared_ptr<const KvTxnGoldenList> txn_golden,
                      const KvGroupRecoveryOptions &options,
                      std::shared_ptr<KvRouterInvariantStats> stats =
                          nullptr);

} // namespace persim

#endif // PERSIM_KVSTORE_ROUTER_HH
