#include "nvram/drain_sim.hh"

#include <algorithm>
#include <vector>

#include "common/error.hh"

namespace persim {

double
DrainResult::persistsPerSecond() const
{
    return total_ns > 0.0
        ? static_cast<double>(persists) * 1e9 / total_ns : 0.0;
}

double
DrainResult::stallFraction() const
{
    return total_ns > 0.0 ? stall_ns / total_ns : 0.0;
}

DrainResult
simulateDrain(const DrainConfig &config, std::uint64_t persists)
{
    PERSIM_REQUIRE(config.persist_latency_ns > 0.0,
                   "persist latency must be positive");
    PERSIM_REQUIRE(config.ns_between_persists >= 0.0,
                   "execution time cannot be negative");

    DrainResult result;
    result.persists = persists;

    // The buffer drains one persist every latency ns, FIFO. Execution
    // issues a persist every ns_between_persists, stalling when the
    // buffer holds buffer_depth entries (an unbuffered system, depth
    // 0, stalls until the persist itself completes).
    double exec_clock = 0.0;    // When execution can issue next.
    double drain_clock = 0.0;   // When the device frees up.
    double stall = 0.0;
    std::uint64_t since_sync = 0;

    // Completion time of each buffered persist, as a ring of the
    // last `depth` finish times; with depth D, issuing persist i must
    // wait for persist i-D to finish.
    const std::uint64_t depth = config.buffer_depth;
    std::vector<double> finish;
    finish.reserve(persists);

    for (std::uint64_t i = 0; i < persists; ++i) {
        exec_clock += config.ns_between_persists;

        // Wait for buffer space: persist i needs persist i-depth done.
        if (depth > 0 && i >= depth && finish[i - depth] > exec_clock) {
            stall += finish[i - depth] - exec_clock;
            exec_clock = finish[i - depth];
        }

        const double start = std::max(exec_clock, drain_clock);
        const double done = start + config.persist_latency_ns;
        finish.push_back(done);
        drain_clock = done;

        if (depth == 0) {
            // Unbuffered: execution waits for the persist itself.
            stall += done - exec_clock;
            exec_clock = done;
        }

        ++since_sync;
        if (config.persists_per_sync > 0 &&
            since_sync == config.persists_per_sync) {
            since_sync = 0;
            if (done > exec_clock) {
                stall += done - exec_clock;
                exec_clock = done;
            }
        }
    }

    result.total_ns = std::max(exec_clock, drain_clock);
    result.stall_ns = stall;
    return result;
}

std::vector<std::size_t>
pendingAtCrash(const std::vector<double> &issue_times, double crash_time,
               double drain_latency)
{
    PERSIM_REQUIRE(drain_latency > 0.0,
                   "drain latency must be positive");
    std::vector<std::size_t> pending;
    double drain_clock = 0.0; // When the device frees up.
    for (std::size_t i = 0; i < issue_times.size(); ++i) {
        PERSIM_REQUIRE(i == 0 || issue_times[i] >= issue_times[i - 1],
                       "issue times must be non-decreasing");
        const double issued = issue_times[i];
        if (issued > crash_time)
            break; // Never reached the buffer; nothing to lose.
        drain_clock = std::max(drain_clock, issued) + drain_latency;
        if (drain_clock > crash_time)
            pending.push_back(i);
    }
    return pending;
}

} // namespace persim
