/**
 * @file
 * NVRAM write-endurance accounting.
 *
 * NVRAM cells tolerate a limited number of writes (Section 2.1); the
 * paper notes that persist coalescing "reduces the total number of
 * NVRAM writes, which may be important for NVRAM devices that are
 * subject to wear" (Section 3). EnduranceTracker counts raw persist
 * traffic per cell block from a trace; countDeviceWrites counts the
 * writes that actually reach the device after coalescing, from a
 * persist log, so the two can be compared.
 */

#ifndef PERSIM_NVRAM_ENDURANCE_HH
#define PERSIM_NVRAM_ENDURANCE_HH

#include <cstdint>
#include <unordered_map>

#include "memtrace/sink.hh"
#include "persistency/persist_log.hh"

namespace persim {

/** Per-block persistent write counts over a trace (pre-coalescing). */
class EnduranceTracker : public TraceSink
{
  public:
    /** @param block_bytes Wear-tracking block size (power of two). */
    explicit EnduranceTracker(std::uint64_t block_bytes = 64);

    void onEvent(const TraceEvent &event) override;

    /** Total persistent-space write events. */
    std::uint64_t totalWrites() const { return total_writes_; }

    /** Writes to the most-written block. */
    std::uint64_t maxBlockWrites() const { return max_block_writes_; }

    /** Distinct blocks ever written. */
    std::size_t blocksTouched() const { return counts_.size(); }

    /** Write count of the block containing @p addr. */
    std::uint64_t writesTo(Addr addr) const;

    /** Wear-tracking block size in bytes. */
    std::uint64_t blockBytes() const { return block_bytes_; }

    /** Raw per-block write counts (block index -> writes); feeds the
        wear-scaled media-error model in src/nvram/faults.hh. */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    counts() const
    {
        return counts_;
    }

    /**
     * Wear imbalance: max block writes / mean block writes (1.0 is
     * perfectly even; large values motivate wear leveling [24]).
     */
    double imbalance() const;

  private:
    std::uint64_t block_bytes_;
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
    std::uint64_t total_writes_ = 0;
    std::uint64_t max_block_writes_ = 0;
};

/** Device writes after coalescing (coalesced pieces merge). */
std::uint64_t countDeviceWrites(const PersistLog &log);

} // namespace persim

#endif // PERSIM_NVRAM_ENDURANCE_HH
