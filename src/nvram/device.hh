/**
 * @file
 * NVRAM device timing model.
 *
 * The paper's headline evaluation assumes an idealized device:
 * infinite bandwidth and banks, so persist throughput is limited only
 * by the ordering-constraint critical path. This module supplies the
 * device parameters (persist latency, per Section 2.1 up to ~1us for
 * PCM-class cells) and a finite-bank scheduler ablation that replays
 * a persist log through B banks to show where device contention, not
 * ordering, becomes the bottleneck.
 */

#ifndef PERSIM_NVRAM_DEVICE_HH
#define PERSIM_NVRAM_DEVICE_HH

#include <cstdint>
#include <string>

#include "persistency/persist_log.hh"

namespace persim {

/** Device parameters. */
struct NvramConfig
{
    /** Persist latency in nanoseconds. */
    double persist_latency_ns = 500.0;

    /** Number of independent banks (0 = infinite, the paper's model). */
    std::uint32_t banks = 0;

    /** Bytes per bank interleave granule. */
    std::uint64_t bank_interleave = 256;

    /** @name Technology presets (Section 2.1) */
    ///@{
    /** DRAM-like write latency. */
    static NvramConfig dramLike();
    /** Spin-transfer torque memory. */
    static NvramConfig sttRam();
    /** Single-level-cell phase change memory. */
    static NvramConfig pcmSlc();
    /** Multi-level-cell phase change memory (iterative writes). */
    static NvramConfig pcmMlc();
    ///@}
};

/** Result of replaying a persist log through the device model. */
struct DeviceReplayResult
{
    /** Wall-clock nanoseconds until the last persist completes. */
    double total_ns = 0.0;

    /** Lower bound from ordering alone (critical path * latency). */
    double ordering_bound_ns = 0.0;

    /** Persists executed (coalesced pieces merge into one persist). */
    std::uint64_t device_writes = 0;

    /** Persists that waited on a busy bank. */
    std::uint64_t bank_stalls = 0;
};

/**
 * Replay a level-clock persist log through a finite-bank device.
 *
 * Each persist may start once its ordering level allows (level L
 * starts no earlier than (L-1) completion, approximated as
 * (L-1) * latency, which is exact for the infinite-bank model) and
 * once its bank is free. Coalesced pieces do not occupy a bank slot.
 * With banks == 0 this reduces to critical_path * latency.
 */
DeviceReplayResult replayThroughDevice(const PersistLog &log,
                                       const NvramConfig &config);

} // namespace persim

#endif // PERSIM_NVRAM_DEVICE_HH
