#include "nvram/faults.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/bitops.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "nvram/drain_sim.hh"
#include "nvram/endurance.hh"

namespace persim {
namespace {

// Domain-separation salts so the three fault classes draw from
// unrelated streams even under the same fault seed.
constexpr std::uint64_t tear_salt = 0x7465617270727374ULL;
constexpr std::uint64_t media_salt = 0x6d656469616572ULL;
constexpr std::uint64_t drain_salt = 0x647261696e647270ULL;

} // namespace

const char *
mediaFaultKindName(MediaFaultKind kind)
{
    switch (kind) {
    case MediaFaultKind::BitFlip:
        return "bit-flip";
    case MediaFaultKind::StuckAtZero:
        return "stuck-at-0";
    case MediaFaultKind::StuckAtOne:
        return "stuck-at-1";
    }
    return "?";
}

void
FaultConfig::validate() const
{
    PERSIM_REQUIRE(isPowerOfTwo(atomic_write_unit) &&
                       atomic_write_unit <= max_access_size,
                   "atomic write unit must be a power of two in 1..8");
    PERSIM_REQUIRE(tear_land_p >= 0.0 && tear_land_p <= 1.0,
                   "tear land probability must be in [0, 1]");
    PERSIM_REQUIRE(media_error_per_write >= 0.0 &&
                       media_error_per_write <= 1.0,
                   "media error probability must be in [0, 1]");
    PERSIM_REQUIRE(isPowerOfTwo(wear_block_bytes),
                   "wear block size must be a power of two");
    PERSIM_REQUIRE(drop_drain_p >= 0.0 && drop_drain_p <= 1.0,
                   "drain drop probability must be in [0, 1]");
    PERSIM_REQUIRE(drop_drain_p == 0.0 || drain_latency > 0.0,
                   "drain latency must be positive");
}

std::string
FaultInjection::describe() const
{
    char buf[128];
    switch (kind) {
    case Kind::TornPersist:
        std::snprintf(buf, sizeof(buf),
                      "torn persist %llu @0x%llx (%u/%u units landed)",
                      static_cast<unsigned long long>(persist),
                      static_cast<unsigned long long>(addr),
                      static_cast<unsigned>(landed_units),
                      static_cast<unsigned>(total_units));
        break;
    case Kind::MediaError:
        std::snprintf(buf, sizeof(buf), "media error @0x%llx bit %u",
                      static_cast<unsigned long long>(addr),
                      static_cast<unsigned>(bit));
        break;
    case Kind::DroppedDrain:
        std::snprintf(buf, sizeof(buf),
                      "dropped drain of persist %llu @0x%llx",
                      static_cast<unsigned long long>(persist),
                      static_cast<unsigned long long>(addr));
        break;
    }
    return buf;
}

void
FaultOutcome::record(const FaultInjection &injection)
{
    switch (injection.kind) {
    case FaultInjection::Kind::TornPersist:
        ++torn_persists;
        break;
    case FaultInjection::Kind::MediaError:
        ++media_errors;
        break;
    case FaultInjection::Kind::DroppedDrain:
        ++dropped_drains;
        break;
    }
    if (injected.size() < max_recorded)
        injected.push_back(injection);
}

std::string
FaultOutcome::summary() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%llu faults (%llu torn, %llu media, %llu dropped)",
                  static_cast<unsigned long long>(total()),
                  static_cast<unsigned long long>(torn_persists),
                  static_cast<unsigned long long>(media_errors),
                  static_cast<unsigned long long>(dropped_drains));
    std::string out = buf;
    const char *sep = ": ";
    for (const FaultInjection &injection : injected) {
        out += sep;
        out += injection.describe();
        sep = "; ";
    }
    return out;
}

std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    // splitmix64 finalizer over a combination of both halves; the
    // golden-ratio offsets keep (0, 0) and friends well away from 0.
    std::uint64_t z = a + 0x9e3779b97f4a7c15ULL +
                      (b ^ 0xbf58476d1ce4e5b9ULL) * 0x94d049bb133111ebULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

FaultModel::FaultModel(
    const FaultConfig &config,
    std::unordered_map<std::uint64_t, std::uint64_t> wear)
    : config_(config)
{
    config_.validate();
    wear_.assign(wear.begin(), wear.end());
    std::sort(wear_.begin(), wear_.end());
}

FaultModel::FaultModel(const FaultConfig &config,
                       const InMemoryTrace &trace)
    : config_(config)
{
    config_.validate();
    if (config_.media_error_per_write > 0.0) {
        EnduranceTracker tracker(config_.wear_block_bytes);
        trace.replay(tracker);
        wear_.assign(tracker.counts().begin(), tracker.counts().end());
        std::sort(wear_.begin(), wear_.end());
    }
}

std::vector<std::size_t>
FaultModel::groupOf(const PersistLog &log)
{
    // Coalesced records chain to the previous member of their device
    // write; everyone else founds a group of their own.
    std::vector<std::size_t> group(log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        const PersistRecord &record = log[i];
        if (record.binding_source == DepSource::Coalesced &&
            record.binding < i) {
            group[i] = group[record.binding];
        } else {
            group[i] = i;
        }
    }
    return group;
}

std::vector<char>
FaultModel::droppedRecords(const PersistLog &log, double crash_time,
                           std::uint64_t fault_seed,
                           FaultOutcome *outcome) const
{
    std::vector<char> dropped(log.size(), 0);
    if (config_.drop_drain_p <= 0.0 || log.empty())
        return dropped;

    // The drain buffer holds device writes, i.e. coalescing groups:
    // all pieces of one group drain (or vanish) together.
    const std::vector<std::size_t> group = groupOf(log);
    std::vector<std::size_t> founders;
    for (std::size_t i = 0; i < log.size(); ++i) {
        if (group[i] == i && log[i].time <= crash_time)
            founders.push_back(i);
    }
    // Drain order is completion order, which need not be log order
    // across threads; ties resolve by persist id.
    std::sort(founders.begin(), founders.end(),
              [&log](std::size_t a, std::size_t b) {
                  if (log[a].time != log[b].time)
                      return log[a].time < log[b].time;
                  return a < b;
              });

    std::vector<double> issue_times;
    issue_times.reserve(founders.size());
    for (std::size_t founder : founders)
        issue_times.push_back(log[founder].time);

    const std::vector<std::size_t> pending = pendingAtCrash(
        issue_times, crash_time, config_.drain_latency);

    Rng rng(mixSeed(fault_seed, drain_salt));
    std::vector<char> dropped_group(log.size(), 0);
    for (std::size_t idx : pending) {
        if (!rng.nextBool(config_.drop_drain_p))
            continue;
        const std::size_t founder = founders[idx];
        dropped_group[founder] = 1;
        if (outcome) {
            FaultInjection injection;
            injection.kind = FaultInjection::Kind::DroppedDrain;
            injection.persist = log[founder].id;
            injection.addr = log[founder].addr;
            outcome->record(injection);
        }
    }
    for (std::size_t i = 0; i < log.size(); ++i)
        dropped[i] = dropped_group[group[i]];
    return dropped;
}

void
FaultModel::tearPiece(MemoryImage &image, const PersistRecord &record,
                      std::uint64_t fault_seed,
                      FaultOutcome *outcome) const
{
    // Each aligned atomic unit of the piece lands independently; the
    // per-record seed makes the outcome independent of which other
    // records exist.
    Rng rng(mixSeed(mixSeed(fault_seed, tear_salt), record.id));
    const std::uint64_t unit = config_.atomic_write_unit;
    const Addr end = record.addr + record.size;
    std::uint8_t total = 0;
    std::uint8_t landed = 0;
    Addr pos = record.addr;
    while (pos < end) {
        const Addr chunk_end =
            std::min<Addr>(end, blockBase(pos, unit) + unit);
        ++total;
        if (rng.nextBool(config_.tear_land_p)) {
            ++landed;
            const unsigned offset =
                static_cast<unsigned>(pos - record.addr);
            const unsigned bytes =
                static_cast<unsigned>(chunk_end - pos);
            image.store(pos, bytes, record.value >> (8 * offset));
        }
        pos = chunk_end;
    }
    if (landed > 0 && outcome) {
        FaultInjection injection;
        injection.kind = FaultInjection::Kind::TornPersist;
        injection.persist = record.id;
        injection.addr = record.addr;
        injection.landed_units = landed;
        injection.total_units = total;
        outcome->record(injection);
    }
}

void
FaultModel::applyMediaErrors(MemoryImage &image,
                             std::uint64_t fault_seed,
                             FaultOutcome *outcome) const
{
    if (config_.media_error_per_write <= 0.0)
        return;
    for (const auto &[block, writes] : wear_) {
        Rng rng(mixSeed(mixSeed(fault_seed, media_salt), block));
        const double fail_p =
            1.0 - std::pow(1.0 - config_.media_error_per_write,
                           static_cast<double>(writes));
        if (!rng.nextBool(fail_p))
            continue;
        const Addr addr = block * config_.wear_block_bytes +
                          rng.nextBounded(config_.wear_block_bytes);
        const auto bit =
            static_cast<std::uint8_t>(rng.nextBounded(8));
        const auto before =
            static_cast<std::uint8_t>(image.load(addr, 1));
        std::uint8_t after = before;
        switch (config_.media_kind) {
        case MediaFaultKind::BitFlip:
            after = before ^ static_cast<std::uint8_t>(1u << bit);
            break;
        case MediaFaultKind::StuckAtZero:
            after = before & static_cast<std::uint8_t>(~(1u << bit));
            break;
        case MediaFaultKind::StuckAtOne:
            after = before | static_cast<std::uint8_t>(1u << bit);
            break;
        }
        if (after == before)
            continue; // Stuck-at matching the stored bit is invisible.
        image.store(addr, 1, after);
        if (outcome) {
            FaultInjection injection;
            injection.kind = FaultInjection::Kind::MediaError;
            injection.addr = addr;
            injection.bit = bit;
            outcome->record(injection);
        }
    }
}

MemoryImage
FaultModel::crashImage(const PersistLog &log, double crash_time,
                       std::uint64_t fault_seed,
                       FaultOutcome *outcome) const
{
    MemoryImage image;
    if (!config_.enabled()) {
        // Fault-free device: exactly the recovery observer's image
        // (recovery::reconstructImage), durable iff time <= T.
        for (const PersistRecord &record : log) {
            if (record.time <= crash_time)
                image.store(record.addr, record.size, record.value);
        }
        return image;
    }

    const std::vector<char> dropped =
        droppedRecords(log, crash_time, fault_seed, outcome);
    for (std::size_t i = 0; i < log.size(); ++i) {
        const PersistRecord &record = log[i];
        if (record.time <= crash_time) {
            if (!dropped[i])
                image.store(record.addr, record.size, record.value);
        } else if (config_.tear_persists &&
                   record.start <= crash_time) {
            // Crash landed inside the in-flight window [start, time).
            tearPiece(image, record, fault_seed, outcome);
        }
    }
    applyMediaErrors(image, fault_seed, outcome);
    return image;
}

} // namespace persim
