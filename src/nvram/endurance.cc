#include "nvram/endurance.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/error.hh"

namespace persim {

EnduranceTracker::EnduranceTracker(std::uint64_t block_bytes)
    : block_bytes_(block_bytes)
{
    PERSIM_REQUIRE(isPowerOfTwo(block_bytes), "block size must be 2^k");
}

void
EnduranceTracker::onEvent(const TraceEvent &event)
{
    if (!event.isPersist())
        return;
    ++total_writes_;
    const std::uint64_t count =
        ++counts_[blockIndex(event.addr, block_bytes_)];
    max_block_writes_ = std::max(max_block_writes_, count);
}

std::uint64_t
EnduranceTracker::writesTo(Addr addr) const
{
    auto it = counts_.find(blockIndex(addr, block_bytes_));
    return it == counts_.end() ? 0 : it->second;
}

double
EnduranceTracker::imbalance() const
{
    if (counts_.empty())
        return 1.0;
    const double mean = static_cast<double>(total_writes_) /
        static_cast<double>(counts_.size());
    return static_cast<double>(max_block_writes_) / mean;
}

std::uint64_t
countDeviceWrites(const PersistLog &log)
{
    std::uint64_t writes = 0;
    for (const auto &record : log)
        if (record.binding_source != DepSource::Coalesced)
            ++writes;
    return writes;
}

} // namespace persim
