#include "nvram/device.hh"

#include <algorithm>
#include <vector>

#include "common/bitops.hh"
#include "common/error.hh"

namespace persim {

NvramConfig
NvramConfig::dramLike()
{
    NvramConfig config;
    config.persist_latency_ns = 15.0;
    return config;
}

NvramConfig
NvramConfig::sttRam()
{
    NvramConfig config;
    config.persist_latency_ns = 125.0;
    return config;
}

NvramConfig
NvramConfig::pcmSlc()
{
    NvramConfig config;
    config.persist_latency_ns = 500.0;
    return config;
}

NvramConfig
NvramConfig::pcmMlc()
{
    NvramConfig config;
    config.persist_latency_ns = 1000.0;
    return config;
}

DeviceReplayResult
replayThroughDevice(const PersistLog &log, const NvramConfig &config)
{
    PERSIM_REQUIRE(config.persist_latency_ns > 0.0,
                   "persist latency must be positive");
    PERSIM_REQUIRE(config.banks == 0 ||
                   isPowerOfTwo(config.bank_interleave),
                   "bank interleave must be a power of two");

    DeviceReplayResult result;
    const double latency = config.persist_latency_ns;

    double max_finish = 0.0;
    double max_level = 0.0;
    std::vector<double> bank_free(std::max<std::uint32_t>(config.banks, 1),
                                  0.0);

    for (const auto &record : log) {
        max_level = std::max(max_level, record.time);
        if (record.binding_source == DepSource::Coalesced)
            continue; // Merged into an earlier device write.
        ++result.device_writes;

        // Ordering readiness: everything at a lower level is done.
        const double ready = (record.time - 1.0) * latency;
        double start = ready;
        if (config.banks > 0) {
            const std::uint64_t bank =
                blockIndex(record.addr, config.bank_interleave) %
                config.banks;
            if (bank_free[bank] > start) {
                start = bank_free[bank];
                ++result.bank_stalls;
            }
            bank_free[bank] = start + latency;
        }
        max_finish = std::max(max_finish, start + latency);
    }

    result.total_ns = max_finish;
    result.ordering_bound_ns = max_level * latency;
    return result;
}

} // namespace persim
