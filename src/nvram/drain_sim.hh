/**
 * @file
 * Buffered strict persistency drain model (paper Section 4.1).
 *
 * Buffered strict persistency lets instruction execution run ahead of
 * persistent state: persists queue in a totally ordered buffer and
 * drain serially to NVRAM. Execution stalls only when the buffer
 * fills (or at a persist sync). This discrete-event model computes
 * the resulting throughput for a stream of persists produced at the
 * volatile execution rate, as a function of buffer depth: with a deep
 * buffer, throughput approaches min(execution rate, drain rate); with
 * depth 0 it degenerates to unbuffered strict persistency (stall at
 * every persist).
 */

#ifndef PERSIM_NVRAM_DRAIN_SIM_HH
#define PERSIM_NVRAM_DRAIN_SIM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace persim {

/** Inputs to the drain simulation. */
struct DrainConfig
{
    /** Persist buffer entries (0 = unbuffered strict persistency). */
    std::uint64_t buffer_depth = 16;

    /** Serial drain time per persist, nanoseconds. */
    double persist_latency_ns = 500.0;

    /** Nanoseconds of useful execution between persists. */
    double ns_between_persists = 50.0;

    /** Persists issued between persist sync operations (0 = never). */
    std::uint64_t persists_per_sync = 0;
};

/** Outputs of the drain simulation. */
struct DrainResult
{
    /** Total simulated nanoseconds. */
    double total_ns = 0.0;

    /** Nanoseconds execution spent stalled on a full buffer or sync. */
    double stall_ns = 0.0;

    /** Persists drained. */
    std::uint64_t persists = 0;

    /** Achieved persists per second. */
    double persistsPerSecond() const;

    /** Fraction of time execution was stalled. */
    double stallFraction() const;
};

/** Simulate draining @p persists persists through the buffer. */
DrainResult simulateDrain(const DrainConfig &config,
                          std::uint64_t persists);

/**
 * Which persists are still sitting in the drain buffer at a crash.
 *
 * @p issue_times is a non-decreasing list of buffer-entry times (one
 * per persist, in drain order); each persist then drains serially at
 * @p drain_latency per persist. Returns the indices of persists that
 * were issued at or before @p crash_time but whose drain had not yet
 * completed — the buffer contents a power failure can destroy (the
 * device-fault model drops a random subset of them).
 */
std::vector<std::size_t> pendingAtCrash(
    const std::vector<double> &issue_times, double crash_time,
    double drain_latency);

} // namespace persim

#endif // PERSIM_NVRAM_DRAIN_SIM_HH
