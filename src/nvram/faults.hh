/**
 * @file
 * Device-fault model for the recovery observer.
 *
 * The paper's recovery observer (Section 4) assumes a perfect device:
 * every atomic persist piece lands all-or-nothing, exactly the
 * persists with completion time <= T are durable at a crash at T, and
 * bits never rot. Real NVRAM breaks all three assumptions, and
 * recovery code that survives only clean crashes has not been tested
 * at all ("Lost in Interpretation", Klimis et al.). FaultModel
 * perturbs a crash image with three seeded, independently
 * configurable fault classes:
 *
 *  - torn persists: a persist whose in-flight window [start, time)
 *    contains the crash instant lands partially — each aligned
 *    `atomic_write_unit` chunk of the piece lands independently.
 *    Pieces no larger than the device write unit remain
 *    all-or-nothing (they may land early, but never torn);
 *  - media errors: wear-induced corruption ("Loose-Ordering
 *    Consistency", Lu et al.): each wear block suffers a bit fault
 *    with probability 1 - (1-p)^writes, where the per-block write
 *    counts come from an EnduranceTracker run over the trace;
 *  - dropped drains: persists that completed in the timing model but
 *    were still queued in the drain buffer (drain_sim's serial-drain
 *    law) vanish at failure with probability drop_drain_p each,
 *    modeling a write queue lost out of order at power failure.
 *
 * Every perturbation is a pure function of (log, crash time, fault
 * seed), so any observed violation replays exactly from its recorded
 * seeds. With all fault classes disabled, crashImage() is
 * byte-identical to recovery's reconstructImage().
 */

#ifndef PERSIM_NVRAM_FAULTS_HH
#define PERSIM_NVRAM_FAULTS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "memtrace/sink.hh"
#include "persistency/persist_log.hh"
#include "sim/memory_image.hh"

namespace persim {

/** How a media fault corrupts the afflicted bit. */
enum class MediaFaultKind : std::uint8_t {
    BitFlip,     //!< The bit inverts.
    StuckAtZero, //!< The bit reads 0 regardless of what was written.
    StuckAtOne,  //!< The bit reads 1 regardless of what was written.
};

/** Human-readable media fault kind. */
const char *mediaFaultKindName(MediaFaultKind kind);

/** Device-fault model configuration. All faults default off. */
struct FaultConfig
{
    /**
     * Device atomic write unit in bytes (power of two, 1..8). Persist
     * pieces larger than this can tear; at 8 (the modeled persists'
     * maximum piece size) tearing only makes in-flight pieces land
     * early, never partially.
     */
    std::uint32_t atomic_write_unit = 8;

    /** Enable torn persists for crash times inside a persist's
        in-flight window. */
    bool tear_persists = false;

    /** Probability each atomic unit of an in-flight persist landed. */
    double tear_land_p = 0.5;

    /**
     * Per-write probability that a write injures its wear block; a
     * block with w writes fails with probability 1 - (1-p)^w, so
     * hot blocks (EnduranceTracker's wear counts) fail first.
     * 0 disables media errors.
     */
    double media_error_per_write = 0.0;

    /** What a media fault does to the corrupted bit. */
    MediaFaultKind media_kind = MediaFaultKind::BitFlip;

    /** Wear-tracking block size (must match the EnduranceTracker). */
    std::uint64_t wear_block_bytes = 64;

    /**
     * Probability that each persist still queued in the drain buffer
     * at the crash instant vanishes. 0 disables dropped drains.
     */
    double drop_drain_p = 0.0;

    /**
     * Serial drain service time per device write, in the same units
     * as the persist log's clock (the drain_sim law determines which
     * writes are still pending at the crash).
     */
    double drain_latency = 0.25;

    /** True when any fault class is active. */
    bool enabled() const
    {
        return tear_persists || media_error_per_write > 0.0 ||
               drop_drain_p > 0.0;
    }

    /** Validate parameters; fatals when invalid. */
    void validate() const;
};

/** One applied perturbation, for replayable violation reports. */
struct FaultInjection
{
    enum class Kind : std::uint8_t {
        TornPersist,
        MediaError,
        DroppedDrain,
    };

    Kind kind = Kind::TornPersist;
    PersistId persist = invalid_persist; //!< Torn/dropped persist id.
    Addr addr = 0;          //!< Piece address / corrupted byte.
    std::uint8_t bit = 0;   //!< Media: afflicted bit index.
    std::uint8_t landed_units = 0; //!< Torn: units that landed...
    std::uint8_t total_units = 0;  //!< ...out of this many.

    /** One-line description. */
    std::string describe() const;
};

/** Everything a crashImage() call perturbed. */
struct FaultOutcome
{
    /** Cap on the `injected` detail list (counters are exact). */
    static constexpr std::size_t max_recorded = 64;

    std::uint64_t torn_persists = 0;  //!< In-flight persists (partially)
                                      //!< landed.
    std::uint64_t media_errors = 0;   //!< Bytes corrupted by wear.
    std::uint64_t dropped_drains = 0; //!< Completed persists lost from
                                      //!< the drain buffer.

    /** Detail of the first `max_recorded` injections. */
    std::vector<FaultInjection> injected;

    std::uint64_t total() const
    {
        return torn_persists + media_errors + dropped_drains;
    }

    /** Append an injection, bumping its counter. */
    void record(const FaultInjection &injection);

    /** "3 faults (1 torn, 2 media, 0 dropped): ..." */
    std::string summary() const;
};

/** Deterministic seed derivation (splitmix64 over both halves). */
std::uint64_t mixSeed(std::uint64_t a, std::uint64_t b);

/** A configured device-fault model over one trace's wear profile. */
class FaultModel
{
  public:
    /** Model with an explicit wear profile (block index -> writes). */
    FaultModel(const FaultConfig &config,
               std::unordered_map<std::uint64_t, std::uint64_t> wear =
                   {});

    /**
     * Model whose wear profile is measured from @p trace with an
     * EnduranceTracker at config.wear_block_bytes granularity (only
     * when media errors are enabled; otherwise the replay is skipped).
     */
    FaultModel(const FaultConfig &config, const InMemoryTrace &trace);

    const FaultConfig &config() const { return config_; }

    /**
     * Build the crash image at @p crash_time under the fault model.
     * Pure function of (log, crash_time, fault_seed): replaying the
     * same triple reproduces the image bit-for-bit. With every fault
     * class disabled this equals recovery's reconstructImage().
     */
    MemoryImage crashImage(const PersistLog &log, double crash_time,
                           std::uint64_t fault_seed,
                           FaultOutcome *outcome = nullptr) const;

  private:
    /** Coalescing-group founder of each record (device write unit). */
    static std::vector<std::size_t> groupOf(const PersistLog &log);

    /** Which records vanish from the drain buffer. */
    std::vector<char> droppedRecords(const PersistLog &log,
                                     double crash_time,
                                     std::uint64_t fault_seed,
                                     FaultOutcome *outcome) const;

    /** Partially land one in-flight persist piece. */
    void tearPiece(MemoryImage &image, const PersistRecord &record,
                   std::uint64_t fault_seed,
                   FaultOutcome *outcome) const;

    /** Wear-scaled corruption over the whole image. */
    void applyMediaErrors(MemoryImage &image, std::uint64_t fault_seed,
                          FaultOutcome *outcome) const;

    FaultConfig config_;
    /** Wear profile sorted by block index (deterministic iteration). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> wear_;
};

} // namespace persim

#endif // PERSIM_NVRAM_FAULTS_HH
