#include "memtrace/filter.hh"

#include <utility>

#include "common/error.hh"

namespace persim {

FilterSink::FilterSink(TraceSink *downstream, EventPredicate predicate)
    : downstream_(downstream), predicate_(std::move(predicate))
{
    PERSIM_REQUIRE(downstream_ != nullptr, "filter needs a downstream");
    PERSIM_REQUIRE(predicate_ != nullptr, "filter needs a predicate");
}

void
FilterSink::onEvent(const TraceEvent &event)
{
    ++seen_;
    if (predicate_(event)) {
        ++forwarded_;
        downstream_->onEvent(event);
    }
}

void
FilterSink::onFinish()
{
    downstream_->onFinish();
}

EventPredicate
byThread(ThreadId tid)
{
    return [tid](const TraceEvent &event) { return event.thread == tid; };
}

EventPredicate
byKind(EventKind kind)
{
    return [kind](const TraceEvent &event) { return event.kind == kind; };
}

EventPredicate
byAddressRange(Addr lo, Addr hi)
{
    return [lo, hi](const TraceEvent &event) {
        return event.isAccess() && event.addr < hi &&
            event.addr + event.size > lo;
    };
}

EventPredicate
persistsOnly()
{
    return [](const TraceEvent &event) { return event.isPersist(); };
}

EventPredicate
bySeqWindow(SeqNum lo, SeqNum hi)
{
    return [lo, hi](const TraceEvent &event) {
        return event.seq >= lo && event.seq < hi;
    };
}

EventPredicate
both(EventPredicate a, EventPredicate b)
{
    return [a = std::move(a), b = std::move(b)](const TraceEvent &event) {
        return a(event) && b(event);
    };
}

EventPredicate
either(EventPredicate a, EventPredicate b)
{
    return [a = std::move(a), b = std::move(b)](const TraceEvent &event) {
        return a(event) || b(event);
    };
}

EventPredicate
negate(EventPredicate a)
{
    return [a = std::move(a)](const TraceEvent &event) {
        return !a(event);
    };
}

} // namespace persim
