#include "memtrace/event.hh"

#include <sstream>

namespace persim {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Load:
        return "load";
      case EventKind::Store:
        return "store";
      case EventKind::Rmw:
        return "rmw";
      case EventKind::PersistBarrier:
        return "persist_barrier";
      case EventKind::NewStrand:
        return "new_strand";
      case EventKind::PersistSync:
        return "persist_sync";
      case EventKind::PMalloc:
        return "pmalloc";
      case EventKind::PFree:
        return "pfree";
      case EventKind::ThreadStart:
        return "thread_start";
      case EventKind::ThreadEnd:
        return "thread_end";
      case EventKind::Marker:
        return "marker";
      case EventKind::Fence:
        return "fence";
      case EventKind::CacheFlush:
        return "clflush";
      case EventKind::CacheFlushOpt:
        return "clflushopt";
      case EventKind::CacheWriteBack:
        return "clwb";
      case EventKind::StoreFence:
        return "sfence";
      case EventKind::FullFence:
        return "mfence";
    }
    return "unknown";
}

std::string
formatEvent(const TraceEvent &event)
{
    std::ostringstream oss;
    oss << "#" << event.seq << " t" << event.thread << " "
        << eventKindName(event.kind);
    if (event.isAccess()) {
        oss << " addr=0x" << std::hex << event.addr << std::dec
            << " size=" << static_cast<int>(event.size);
        if (event.isWrite())
            oss << " value=0x" << std::hex << event.value << std::dec;
        if (event.isPersist())
            oss << " [persist]";
    } else if (event.kind == EventKind::PMalloc) {
        oss << " addr=0x" << std::hex << event.addr << std::dec
            << " size=" << event.value;
    } else if (event.kind == EventKind::PFree) {
        oss << " addr=0x" << std::hex << event.addr << std::dec;
    } else if (event.kind == EventKind::Marker) {
        oss << " code=" << event.marker << " arg=" << event.value;
    } else if (event.kind == EventKind::CacheFlush ||
               event.kind == EventKind::CacheFlushOpt ||
               event.kind == EventKind::CacheWriteBack) {
        oss << " addr=0x" << std::hex << event.addr << std::dec;
    }
    return oss.str();
}

} // namespace persim
