#include "memtrace/compiled_trace.hh"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/checksum.hh"
#include "common/error.hh"

namespace persim {

namespace {

constexpr std::array<char, 8> ctc_magic =
    {'P', 'S', 'I', 'M', 'C', 'T', 'C', '1'};
constexpr std::array<char, 8> ctp_magic =
    {'P', 'S', 'I', 'M', 'C', 'T', 'P', '1'};
constexpr std::uint32_t endian_marker = 0x01020304u;
constexpr std::size_t header_size = 128;
constexpr std::size_t header_checked = 96;
constexpr std::size_t section_align = 64;
constexpr std::size_t section_count = 13;

std::uint64_t
align64(std::uint64_t offset)
{
    return (offset + (section_align - 1)) & ~std::uint64_t{section_align - 1};
}

/** Column element widths, in payload order. */
constexpr std::size_t section_width[section_count] = {
    1, 1, 1, 4, 4, 4, 8, 8, 8, 4, 1, 8, 8,
};

struct Layout
{
    std::uint64_t offset[section_count]; //!< From payload start.
    std::uint64_t bytes[section_count];
    std::uint64_t payload_bytes;
};

/** Section row counts in payload order for the given header counts. */
void
sectionRows(std::uint64_t micro_ops, std::uint64_t runs,
            std::uint64_t track_slots, std::uint64_t atomic_slots,
            std::uint64_t rows[section_count])
{
    for (int i = 0; i < 9; ++i)
        rows[i] = micro_ops;
    rows[9] = runs;
    rows[10] = runs;
    rows[11] = track_slots;
    rows[12] = atomic_slots;
}

Layout
layoutFor(std::uint64_t micro_ops, std::uint64_t runs,
          std::uint64_t track_slots, std::uint64_t atomic_slots)
{
    std::uint64_t rows[section_count];
    sectionRows(micro_ops, runs, track_slots, atomic_slots, rows);
    Layout layout = {};
    std::uint64_t at = 0;
    for (std::size_t i = 0; i < section_count; ++i) {
        at = align64(at);
        layout.offset[i] = at;
        layout.bytes[i] = rows[i] * section_width[i];
        at += layout.bytes[i];
    }
    layout.payload_bytes = align64(at);
    return layout;
}

void
requireLittleEndianHost(const std::string &path)
{
    PERSIM_REQUIRE(std::endian::native == std::endian::little,
                   "compiled traces require a little-endian host: "
                       << path);
}

/** Store @p v little-endian into out[0..bytes). */
void
putLe(unsigned char *out, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
}

std::uint64_t
getLe(const unsigned char *in, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

/** Serialize the 128-byte header (checksum filled in). */
void
packHeader(unsigned char out[header_size], const std::array<char, 8> &magic,
           const CompiledTrace &trace, std::uint64_t micro_ops,
           std::uint64_t payload_bytes, std::uint64_t payload_checksum)
{
    std::memset(out, 0, header_size);
    std::memcpy(out, magic.data(), magic.size());
    putLe(out + 8, compiled_trace_version, 4);
    putLe(out + 12, endian_marker, 4);
    putLe(out + 16, trace.source_hash, 8);
    putLe(out + 24, trace.spec_fp, 8);
    putLe(out + 32, micro_ops, 8);
    putLe(out + 40, trace.events, 8);
    putLe(out + 48, trace.track_keys.size(), 8);
    putLe(out + 56, trace.atomic_keys.size(), 8);
    putLe(out + 64, trace.run_len.size(), 8);
    putLe(out + 72, trace.thread_count, 4);
    putLe(out + 80, payload_bytes, 8);
    putLe(out + 88, payload_checksum, 8);
    putLe(out + 96, fnv1a64(out, header_checked), 8);
}

/** Parsed header fields (validated against @p magic). */
struct Header
{
    std::uint64_t source_hash;
    std::uint64_t spec_fp;
    std::uint64_t micro_ops;
    std::uint64_t events;
    std::uint64_t track_slots;
    std::uint64_t atomic_slots;
    std::uint64_t runs;
    std::uint32_t thread_count;
    std::uint64_t payload_bytes;
    std::uint64_t payload_checksum;
};

Header
parseHeader(const unsigned char *bytes, const std::array<char, 8> &magic,
            const std::string &path)
{
    PERSIM_REQUIRE(std::memcmp(bytes, magic.data(), magic.size()) == 0,
                   "bad compiled trace magic: " << path);
    const auto version = static_cast<std::uint32_t>(getLe(bytes + 8, 4));
    PERSIM_REQUIRE(version == compiled_trace_version,
                   "unsupported compiled trace version "
                       << version << " (expected "
                       << compiled_trace_version << "): " << path);
    const auto endian = static_cast<std::uint32_t>(getLe(bytes + 12, 4));
    PERSIM_REQUIRE(endian == endian_marker,
                   "compiled trace endianness mismatch: marker 0x"
                       << std::hex << endian
                       << " (artifact written on a different-endian "
                          "host?): "
                       << path);
    const std::uint64_t stored = getLe(bytes + 96, 8);
    const std::uint64_t computed = fnv1a64(bytes, header_checked);
    PERSIM_REQUIRE(stored == computed,
                   "compiled trace header checksum mismatch (stored 0x"
                       << std::hex << stored << ", computed 0x"
                       << computed << "): " << path);

    Header header = {};
    header.source_hash = getLe(bytes + 16, 8);
    header.spec_fp = getLe(bytes + 24, 8);
    header.micro_ops = getLe(bytes + 32, 8);
    header.events = getLe(bytes + 40, 8);
    header.track_slots = getLe(bytes + 48, 8);
    header.atomic_slots = getLe(bytes + 56, 8);
    header.runs = getLe(bytes + 64, 8);
    header.thread_count =
        static_cast<std::uint32_t>(getLe(bytes + 72, 4));
    header.payload_bytes = getLe(bytes + 80, 8);
    header.payload_checksum = getLe(bytes + 88, 8);

    // Reject counts whose layout arithmetic would overflow before any
    // of it is used to form pointers.
    constexpr std::uint64_t row_limit = 1ULL << 48;
    PERSIM_REQUIRE(header.micro_ops < row_limit &&
                       header.runs < row_limit &&
                       header.track_slots < row_limit &&
                       header.atomic_slots < row_limit,
                   "unreasonable compiled trace counts: " << path);
    return header;
}

} // namespace

void
CompiledTrace::buildRuns()
{
    run_len.clear();
    run_kind.clear();
    std::size_t i = 0;
    while (i < kind.size()) {
        std::size_t j = i + 1;
        // Cap runs at u32 range; maximal runs beyond that just split.
        while (j < kind.size() && kind[j] == kind[i] &&
               j - i < 0xffffffffu)
            ++j;
        run_len.push_back(static_cast<std::uint32_t>(j - i));
        run_kind.push_back(kind[i]);
        i = j;
    }
}

CompiledTraceView
CompiledTrace::view() const
{
    CompiledTraceView v;
    v.micro_ops = kind.size();
    v.events = events;
    v.track_slots = track_keys.size();
    v.atomic_slots = atomic_keys.size();
    v.runs = run_len.size();
    v.thread_count = thread_count;
    v.source_hash = source_hash;
    v.spec_fp = spec_fp;
    v.kind = kind.data();
    v.size = size.data();
    v.flags = flags.data();
    v.thread = thread.data();
    v.tslot = tslot.data();
    v.aslot = aslot.data();
    v.addr = addr.data();
    v.value = value.data();
    v.seq = seq.data();
    v.run_len = run_len.data();
    v.run_kind = run_kind.data();
    v.track_keys = track_keys.data();
    v.atomic_keys = atomic_keys.data();
    return v;
}

void
validateCompiledView(const CompiledTraceView &view, std::uint8_t max_kind,
                     const std::string &what)
{
    std::uint64_t covered = 0;
    std::uint64_t at = 0;
    for (std::uint64_t r = 0; r < view.runs; ++r) {
        const std::uint32_t len = view.run_len[r];
        PERSIM_REQUIRE(len > 0 && view.micro_ops - covered >= len,
                       "corrupt compiled trace run " << r
                           << ": length " << len << " does not fit the "
                           << view.micro_ops << "-op program: " << what);
        PERSIM_REQUIRE(view.run_kind[r] <= max_kind,
                       "corrupt compiled trace run " << r << ": kind "
                           << unsigned(view.run_kind[r])
                           << " is out of range (max "
                           << unsigned(max_kind) << "): " << what);
        covered += len;
        for (std::uint64_t i = at; i < at + len; ++i)
            PERSIM_REQUIRE(view.kind[i] == view.run_kind[r],
                           "corrupt compiled trace op " << i
                               << ": kind " << unsigned(view.kind[i])
                               << " disagrees with its run's kind "
                               << unsigned(view.run_kind[r]) << ": "
                               << what);
        at += len;
    }
    PERSIM_REQUIRE(covered == view.micro_ops,
                   "corrupt compiled trace: runs cover " << covered
                       << " of " << view.micro_ops << " ops: " << what);

    for (std::uint64_t i = 0; i < view.micro_ops; ++i) {
        PERSIM_REQUIRE(view.kind[i] <= max_kind,
                       "corrupt compiled trace op " << i << ": kind "
                           << unsigned(view.kind[i])
                           << " is out of range (max "
                           << unsigned(max_kind) << "): " << what);
        const std::uint32_t ts = view.tslot[i];
        PERSIM_REQUIRE(ts == compiled_no_slot || ts < view.track_slots,
                       "corrupt compiled trace op " << i
                           << ": tracking slot " << ts
                           << " is out of range (have "
                           << view.track_slots << "): " << what);
        const std::uint32_t as = view.aslot[i];
        PERSIM_REQUIRE(as == compiled_no_slot || as < view.atomic_slots,
                       "corrupt compiled trace op " << i
                           << ": atomic slot " << as
                           << " is out of range (have "
                           << view.atomic_slots << "): " << what);
    }
}

void
writeCompiledTrace(const std::string &path, const CompiledTrace &trace)
{
    requireLittleEndianHost(path);
    const std::uint64_t micro_ops = trace.kind.size();
    PERSIM_REQUIRE(trace.size.size() == micro_ops &&
                       trace.flags.size() == micro_ops &&
                       trace.thread.size() == micro_ops &&
                       trace.tslot.size() == micro_ops &&
                       trace.aslot.size() == micro_ops &&
                       trace.addr.size() == micro_ops &&
                       trace.value.size() == micro_ops &&
                       trace.seq.size() == micro_ops &&
                       trace.run_len.size() == trace.run_kind.size(),
                   "compiled trace columns are ragged: " << path);

    const Layout layout =
        layoutFor(micro_ops, trace.run_len.size(),
                  trace.track_keys.size(), trace.atomic_keys.size());

    // Build the payload in memory: the alignment gaps must be zero
    // bytes (the payload checksum covers them), and one buffered
    // write is faster than thirteen seek-and-write bursts anyway.
    std::vector<unsigned char> payload(
        static_cast<std::size_t>(layout.payload_bytes), 0);
    const void *columns[section_count] = {
        trace.kind.data(),      trace.size.data(),
        trace.flags.data(),     trace.thread.data(),
        trace.tslot.data(),     trace.aslot.data(),
        trace.addr.data(),      trace.value.data(),
        trace.seq.data(),       trace.run_len.data(),
        trace.run_kind.data(),  trace.track_keys.data(),
        trace.atomic_keys.data(),
    };
    for (std::size_t i = 0; i < section_count; ++i)
        if (layout.bytes[i] > 0)
            std::memcpy(payload.data() + layout.offset[i], columns[i],
                        static_cast<std::size_t>(layout.bytes[i]));

    unsigned char header[header_size];
    packHeader(header, ctc_magic, trace, micro_ops, layout.payload_bytes,
               fnv1a64(payload.data(), payload.size()));

    std::FILE *file = std::fopen(path.c_str(), "wb");
    PERSIM_REQUIRE(file != nullptr,
                   "cannot open compiled trace for writing: " << path);
    const bool wrote =
        std::fwrite(header, 1, header_size, file) == header_size &&
        std::fwrite(payload.data(), 1, payload.size(), file) ==
            payload.size();
    const bool flushed = std::fflush(file) == 0;
    const bool closed = std::fclose(file) == 0;
    PERSIM_REQUIRE(wrote && flushed && closed,
                   "short write to compiled trace: " << path);
}

MmapCompiledTrace::MmapCompiledTrace(const std::string &path,
                                     std::uint8_t max_kind)
{
    requireLittleEndianHost(path);

    const int fd = ::open(path.c_str(), O_RDONLY);
    PERSIM_REQUIRE(fd >= 0,
                   "cannot open compiled trace for mapping: " << path);
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        PERSIM_REQUIRE(false, "cannot map compiled trace: not a "
                              "regular file: " << path);
    }
    const auto file_size = static_cast<std::uint64_t>(st.st_size);
    if (file_size < header_size) {
        ::close(fd);
        PERSIM_REQUIRE(false,
                       "compiled trace truncated: file ends at byte "
                           << file_size << " inside the " << header_size
                           << "-byte header: " << path);
    }

    map_size_ = static_cast<std::size_t>(file_size);
    map_ = ::mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    PERSIM_REQUIRE(map_ != MAP_FAILED,
                   "cannot mmap compiled trace: " << path);

    try {
        const auto *base = static_cast<const unsigned char *>(map_);
        const Header header = parseHeader(base, ctc_magic, path);
        const Layout layout =
            layoutFor(header.micro_ops, header.runs,
                      header.track_slots, header.atomic_slots);
        PERSIM_REQUIRE(
            header.payload_bytes == layout.payload_bytes,
            "compiled trace header claims " << header.payload_bytes
                << " payload bytes but its counts lay out to "
                << layout.payload_bytes << ": " << path);
        const std::uint64_t expected =
            header_size + layout.payload_bytes;
        PERSIM_REQUIRE(
            file_size == expected,
            "compiled trace truncated: header claims "
                << expected << " bytes but the file ends at byte "
                << file_size << ": " << path);
        const std::uint64_t payload_sum =
            fnv1a64(base + header_size,
                    static_cast<std::size_t>(layout.payload_bytes));
        PERSIM_REQUIRE(payload_sum == header.payload_checksum,
                       "compiled trace payload checksum mismatch "
                       "(stored 0x"
                           << std::hex << header.payload_checksum
                           << ", computed 0x" << payload_sum
                           << "): " << path);

        const unsigned char *payload = base + header_size;
        view_.micro_ops = header.micro_ops;
        view_.events = header.events;
        view_.track_slots = header.track_slots;
        view_.atomic_slots = header.atomic_slots;
        view_.runs = header.runs;
        view_.thread_count = header.thread_count;
        view_.source_hash = header.source_hash;
        view_.spec_fp = header.spec_fp;
        const auto at = [&](std::size_t i) {
            return payload + layout.offset[i];
        };
        view_.kind = reinterpret_cast<const std::uint8_t *>(at(0));
        view_.size = reinterpret_cast<const std::uint8_t *>(at(1));
        view_.flags = reinterpret_cast<const std::uint8_t *>(at(2));
        view_.thread = reinterpret_cast<const std::uint32_t *>(at(3));
        view_.tslot = reinterpret_cast<const std::uint32_t *>(at(4));
        view_.aslot = reinterpret_cast<const std::uint32_t *>(at(5));
        view_.addr = reinterpret_cast<const std::uint64_t *>(at(6));
        view_.value = reinterpret_cast<const std::uint64_t *>(at(7));
        view_.seq = reinterpret_cast<const std::uint64_t *>(at(8));
        view_.run_len = reinterpret_cast<const std::uint32_t *>(at(9));
        view_.run_kind = reinterpret_cast<const std::uint8_t *>(at(10));
        view_.track_keys =
            reinterpret_cast<const std::uint64_t *>(at(11));
        view_.atomic_keys =
            reinterpret_cast<const std::uint64_t *>(at(12));

#ifdef POSIX_MADV_WILLNEED
        (void)::posix_madvise(map_, map_size_, POSIX_MADV_WILLNEED);
#endif
        validateCompiledView(view_, max_kind, path);
    } catch (...) {
        ::munmap(map_, map_size_);
        map_ = nullptr;
        throw;
    }
}

MmapCompiledTrace::~MmapCompiledTrace()
{
    if (map_ != nullptr)
        ::munmap(map_, map_size_);
}

namespace {

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
getVarint(const std::uint8_t *data, std::size_t size, std::size_t &at,
          const char *what)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (true) {
        PERSIM_REQUIRE(at < size,
                       "packed trace truncated at byte " << at
                           << " inside a varint (" << what << ")");
        const std::uint8_t byte = data[at++];
        PERSIM_REQUIRE(shift < 64,
                       "packed trace corrupt at byte " << (at - 1)
                           << ": varint overlong (" << what << ")");
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
        shift += 7;
    }
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
        static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
        -static_cast<std::int64_t>(v & 1);
}

/** Zigzag-delta a u64 column (address-like: deltas are small). */
void
packDelta(std::vector<std::uint8_t> &out, const std::uint64_t *column,
          std::uint64_t rows)
{
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < rows; ++i) {
        putVarint(out, zigzag(static_cast<std::int64_t>(column[i] -
                                                        prev)));
        prev = column[i];
    }
}

void
unpackDelta(const std::uint8_t *data, std::size_t size, std::size_t &at,
            std::vector<std::uint64_t> &column, std::uint64_t rows,
            const char *what)
{
    column.reserve(static_cast<std::size_t>(rows));
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < rows; ++i) {
        prev += static_cast<std::uint64_t>(
            unzigzag(getVarint(data, size, at, what)));
        column.push_back(prev);
    }
}

} // namespace

std::vector<std::uint8_t>
packCompiledTrace(const CompiledTraceView &view)
{
    std::vector<std::uint8_t> out(header_size, 0);

    const auto raw8 = [&out](const std::uint8_t *column,
                             std::uint64_t rows) {
        out.insert(out.end(), column, column + rows);
    };
    const auto varint32 = [&out](const std::uint32_t *column,
                                 std::uint64_t rows) {
        for (std::uint64_t i = 0; i < rows; ++i)
            putVarint(out, column[i]);
    };
    const auto varint64 = [&out](const std::uint64_t *column,
                                 std::uint64_t rows) {
        for (std::uint64_t i = 0; i < rows; ++i)
            putVarint(out, column[i]);
    };

    raw8(view.kind, view.micro_ops);
    raw8(view.size, view.micro_ops);
    raw8(view.flags, view.micro_ops);
    varint32(view.thread, view.micro_ops);
    // Slot sentinels (~0u) stay cheap as deltas of the *signed* slot
    // stream; plain varints would spend 5 bytes per sentinel.
    {
        std::uint64_t prev = 0;
        for (std::uint64_t i = 0; i < view.micro_ops; ++i) {
            putVarint(out, zigzag(static_cast<std::int64_t>(
                               std::uint64_t{view.tslot[i]} - prev)));
            prev = view.tslot[i];
        }
        prev = 0;
        for (std::uint64_t i = 0; i < view.micro_ops; ++i) {
            putVarint(out, zigzag(static_cast<std::int64_t>(
                               std::uint64_t{view.aslot[i]} - prev)));
            prev = view.aslot[i];
        }
    }
    packDelta(out, view.addr, view.micro_ops);
    varint64(view.value, view.micro_ops);
    packDelta(out, view.seq, view.micro_ops);
    varint32(view.run_len, view.runs);
    raw8(view.run_kind, view.runs);
    packDelta(out, view.track_keys, view.track_slots);
    packDelta(out, view.atomic_keys, view.atomic_slots);

    CompiledTrace facts;
    facts.events = view.events;
    facts.thread_count = view.thread_count;
    facts.source_hash = view.source_hash;
    facts.spec_fp = view.spec_fp;
    facts.track_keys.resize(static_cast<std::size_t>(view.track_slots));
    facts.atomic_keys.resize(
        static_cast<std::size_t>(view.atomic_slots));
    facts.run_len.resize(static_cast<std::size_t>(view.runs));
    facts.run_kind.resize(static_cast<std::size_t>(view.runs));
    // packHeader reads only counts and facts from the CompiledTrace;
    // micro_ops and the payload figures are passed explicitly.
    packHeader(out.data(), ctp_magic, facts, view.micro_ops,
               out.size() - header_size,
               fnv1a64(out.data() + header_size,
                       out.size() - header_size));
    return out;
}

CompiledTrace
unpackCompiledTrace(const std::uint8_t *data, std::size_t size)
{
    PERSIM_REQUIRE(size >= header_size,
                   "packed trace truncated: " << size
                       << " bytes is smaller than the " << header_size
                       << "-byte header");
    const Header header = parseHeader(data, ctp_magic, "<packed>");
    PERSIM_REQUIRE(
        size - header_size == header.payload_bytes,
        "packed trace truncated: header claims "
            << header_size + header.payload_bytes
            << " bytes but the stream ends at byte " << size);
    const std::uint64_t payload_sum =
        fnv1a64(data + header_size, size - header_size);
    PERSIM_REQUIRE(payload_sum == header.payload_checksum,
                   "packed trace payload checksum mismatch (stored 0x"
                       << std::hex << header.payload_checksum
                       << ", computed 0x" << payload_sum << ")");

    CompiledTrace trace;
    trace.events = header.events;
    trace.thread_count = header.thread_count;
    trace.source_hash = header.source_hash;
    trace.spec_fp = header.spec_fp;

    const std::uint64_t n = header.micro_ops;
    std::size_t at = header_size;
    const auto raw8 = [&](std::vector<std::uint8_t> &column,
                          std::uint64_t rows, const char *what) {
        PERSIM_REQUIRE(size - at >= rows,
                       "packed trace truncated at byte " << at << " ("
                           << what << ")");
        column.assign(data + at, data + at + rows);
        at += static_cast<std::size_t>(rows);
    };
    const auto varint32 = [&](std::vector<std::uint32_t> &column,
                              std::uint64_t rows, const char *what) {
        column.reserve(static_cast<std::size_t>(rows));
        for (std::uint64_t i = 0; i < rows; ++i) {
            const std::uint64_t v = getVarint(data, size, at, what);
            PERSIM_REQUIRE(v <= 0xffffffffu,
                           "packed trace corrupt: " << what
                               << " value " << v
                               << " does not fit 32 bits");
            column.push_back(static_cast<std::uint32_t>(v));
        }
    };
    const auto varint64 = [&](std::vector<std::uint64_t> &column,
                              std::uint64_t rows, const char *what) {
        column.reserve(static_cast<std::size_t>(rows));
        for (std::uint64_t i = 0; i < rows; ++i)
            column.push_back(getVarint(data, size, at, what));
    };
    const auto delta32 = [&](std::vector<std::uint32_t> &column,
                             std::uint64_t rows, const char *what) {
        column.reserve(static_cast<std::size_t>(rows));
        std::uint64_t prev = 0;
        for (std::uint64_t i = 0; i < rows; ++i) {
            prev += static_cast<std::uint64_t>(
                unzigzag(getVarint(data, size, at, what)));
            const std::uint64_t v = prev & 0xffffffffu;
            column.push_back(static_cast<std::uint32_t>(v));
            prev = v;
        }
    };

    raw8(trace.kind, n, "kind");
    raw8(trace.size, n, "size");
    raw8(trace.flags, n, "flags");
    varint32(trace.thread, n, "thread");
    delta32(trace.tslot, n, "tslot");
    delta32(trace.aslot, n, "aslot");
    unpackDelta(data, size, at, trace.addr, n, "addr");
    varint64(trace.value, n, "value");
    unpackDelta(data, size, at, trace.seq, n, "seq");
    varint32(trace.run_len, header.runs, "run_len");
    raw8(trace.run_kind, header.runs, "run_kind");
    unpackDelta(data, size, at, trace.track_keys, header.track_slots,
                "track_keys");
    unpackDelta(data, size, at, trace.atomic_keys, header.atomic_slots,
                "atomic_keys");
    PERSIM_REQUIRE(at == size,
                   "packed trace corrupt: " << size - at
                       << " trailing bytes after the last column");
    return trace;
}

void
writePackedTrace(const std::string &path, const CompiledTraceView &view)
{
    const std::vector<std::uint8_t> bytes = packCompiledTrace(view);
    std::FILE *file = std::fopen(path.c_str(), "wb");
    PERSIM_REQUIRE(file != nullptr,
                   "cannot open packed trace for writing: " << path);
    const bool wrote =
        std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
    const bool flushed = std::fflush(file) == 0;
    const bool closed = std::fclose(file) == 0;
    PERSIM_REQUIRE(wrote && flushed && closed,
                   "short write to packed trace: " << path);
}

CompiledTrace
readPackedTrace(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    PERSIM_REQUIRE(file != nullptr,
                   "cannot open packed trace for reading: " << path);
    std::vector<std::uint8_t> bytes;
    std::fseek(file, 0, SEEK_END);
    const long file_size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    PERSIM_REQUIRE(file_size >= 0,
                   "cannot size packed trace: " << path);
    bytes.resize(static_cast<std::size_t>(file_size));
    const std::size_t got =
        std::fread(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    PERSIM_REQUIRE(got == bytes.size(),
                   "packed trace truncated: read stopped at byte "
                       << got << " of " << bytes.size() << ": " << path);
    return unpackCompiledTrace(bytes.data(), bytes.size());
}

} // namespace persim
