/**
 * @file
 * Summary statistics over a trace, computed as a streaming sink.
 */

#ifndef PERSIM_MEMTRACE_TRACE_STATS_HH
#define PERSIM_MEMTRACE_TRACE_STATS_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "memtrace/sink.hh"

namespace persim {

/** Counts events by kind, address space, and thread. */
class TraceStats : public TraceSink
{
  public:
    void onEvent(const TraceEvent &event) override;

    std::uint64_t totalEvents() const { return total_events_; }
    std::uint64_t loads() const { return loads_; }
    std::uint64_t stores() const { return stores_; }
    std::uint64_t rmws() const { return rmws_; }
    std::uint64_t persists() const { return persists_; }
    std::uint64_t persistedBytes() const { return persisted_bytes_; }
    std::uint64_t persistBarriers() const { return persist_barriers_; }
    std::uint64_t newStrands() const { return new_strands_; }
    std::uint64_t persistSyncs() const { return persist_syncs_; }
    std::uint64_t pmallocs() const { return pmallocs_; }
    std::uint64_t pfrees() const { return pfrees_; }
    std::uint64_t markers() const { return markers_; }
    std::uint64_t operations() const { return op_begins_; }

    /** Event count of thread @p tid (0 if never seen). */
    std::uint64_t threadEvents(ThreadId tid) const;

    /** Number of threads that produced at least one event. */
    ThreadId threadCount() const
    {
        return static_cast<ThreadId>(per_thread_.size());
    }

    /** Multi-line human-readable report. */
    std::string render() const;

  private:
    std::uint64_t total_events_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t rmws_ = 0;
    std::uint64_t persists_ = 0;
    std::uint64_t persisted_bytes_ = 0;
    std::uint64_t persist_barriers_ = 0;
    std::uint64_t new_strands_ = 0;
    std::uint64_t persist_syncs_ = 0;
    std::uint64_t pmallocs_ = 0;
    std::uint64_t pfrees_ = 0;
    std::uint64_t markers_ = 0;
    std::uint64_t op_begins_ = 0;
    std::vector<std::uint64_t> per_thread_;
};

} // namespace persim

#endif // PERSIM_MEMTRACE_TRACE_STATS_HH
