#include "memtrace/trace_stats.hh"

#include <sstream>

namespace persim {

void
TraceStats::onEvent(const TraceEvent &event)
{
    ++total_events_;
    if (event.thread >= per_thread_.size())
        per_thread_.resize(event.thread + 1, 0);
    ++per_thread_[event.thread];

    switch (event.kind) {
      case EventKind::Load:
        ++loads_;
        break;
      case EventKind::Store:
        ++stores_;
        break;
      case EventKind::Rmw:
        ++rmws_;
        break;
      case EventKind::PersistBarrier:
        ++persist_barriers_;
        break;
      case EventKind::NewStrand:
        ++new_strands_;
        break;
      case EventKind::PersistSync:
        ++persist_syncs_;
        break;
      case EventKind::PMalloc:
        ++pmallocs_;
        break;
      case EventKind::PFree:
        ++pfrees_;
        break;
      case EventKind::Marker:
        ++markers_;
        if (event.markerCode() == MarkerCode::OpBegin)
            ++op_begins_;
        break;
      default:
        break;
    }
    if (event.isPersist()) {
        ++persists_;
        persisted_bytes_ += event.size;
    }
}

std::uint64_t
TraceStats::threadEvents(ThreadId tid) const
{
    return tid < per_thread_.size() ? per_thread_[tid] : 0;
}

std::string
TraceStats::render() const
{
    std::ostringstream oss;
    oss << "trace: " << total_events_ << " events, "
        << per_thread_.size() << " threads\n"
        << "  loads=" << loads_ << " stores=" << stores_
        << " rmws=" << rmws_ << "\n"
        << "  persists=" << persists_
        << " (" << persisted_bytes_ << " bytes)\n"
        << "  persist_barriers=" << persist_barriers_
        << " new_strands=" << new_strands_
        << " persist_syncs=" << persist_syncs_ << "\n"
        << "  pmallocs=" << pmallocs_ << " pfrees=" << pfrees_
        << " operations=" << op_begins_ << "\n";
    return oss.str();
}

} // namespace persim
