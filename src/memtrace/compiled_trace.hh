/**
 * @file
 * Compiled trace container (DESIGN.md Section 17).
 *
 * A compiled trace persists the output of segment prep — the decoded,
 * cache-line-split, scope-filtered, slot-interned micro-op program a
 * replay would otherwise rebuild from the raw event stream on every
 * run — as an mmap-able artifact the timing engine executes straight
 * out of the mapping.
 *
 * Layout (".ctc", little-endian, 128-byte header):
 *
 *   offset size field
 *        0    8 magic "PSIMCTC1"
 *        8    4 version (currently 1)
 *       12    4 endianness marker 0x01020304 (stored LE; a
 *              byte-swapped artifact reads back 0x04030201)
 *       16    8 source_hash   fnv1a64 of the source trace's raw
 *              32-byte event records — stale-artifact gate
 *       24    8 spec_fp       fingerprint of the CompileSpec the
 *              micro-ops were compiled under (persistency layer)
 *       32    8 micro_ops     rows in each micro-op column
 *       40    8 events        raw events the program was compiled
 *              from (includes kinds that compile to nothing)
 *       48    8 track_slots   entries in the track_keys table
 *       56    8 atomic_slots  entries in the atomic_keys table
 *       64    8 runs          rows in the run-length dispatch index
 *       72    4 thread_count
 *       76    4 reserved (0)
 *       80    8 payload_bytes (64-byte-aligned section area size)
 *       88    8 payload_checksum  fnv1a64 of the payload area
 *       96    8 header_checksum   fnv1a64 of bytes [0, 96)
 *      104   24 zero padding to 128
 *
 * The payload is a fixed-order sequence of struct-of-arrays columns,
 * each starting on a 64-byte boundary (the header is 128 bytes, so
 * in-file alignment equals in-memory alignment of the mapping):
 *
 *   kind u8[n] | size u8[n] | flags u8[n] | thread u32[n]
 *   | tslot u32[n] | aslot u32[n] | addr u64[n] | value u64[n]
 *   | seq u64[n] | run_len u32[r] | run_kind u8[r]
 *   | track_keys u64[t] | atomic_keys u64[a]
 *
 * flags bit 0 is the micro-op's is_write, bit 1 is "address is
 * persistent" (precomputed so the hot loop never recomputes range
 * membership). The run index partitions [0, micro_ops) into maximal
 * same-kind runs so the executor dispatches per run, not per op.
 *
 * A packed sibling (".ctp", magic "PSIMCTP1") stores the same columns
 * delta/varint-encoded for cold storage; see packCompiledTrace().
 *
 * Like MmapTraceReader, both readers require a little-endian host and
 * validate everything up front — magic, version, endianness, both
 * checksums, file size against the header's counts (reporting the
 * offending byte offset on truncation), and every column row (kind
 * bytes, slot bounds, run-length partition) — so consumers can trust
 * the views without per-op checks.
 */

#ifndef PERSIM_MEMTRACE_COMPILED_TRACE_HH
#define PERSIM_MEMTRACE_COMPILED_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace persim {

/** Container format version. */
constexpr std::uint32_t compiled_trace_version = 1;

/** tslot/aslot sentinel: the op has no slot in that bank. */
constexpr std::uint32_t compiled_no_slot = ~0u;

/** flags bit 0: the micro-op is a write. */
constexpr std::uint8_t compiled_flag_write = 1u;
/** flags bit 1: the micro-op's address is persistent. */
constexpr std::uint8_t compiled_flag_persistent = 2u;

/**
 * Zero-copy view of one compiled trace: column pointers plus the
 * header facts. Valid only while the backing storage (a mapping or a
 * CompiledTrace) is alive.
 */
struct CompiledTraceView
{
    std::uint64_t micro_ops = 0;
    std::uint64_t events = 0;
    std::uint64_t track_slots = 0;
    std::uint64_t atomic_slots = 0;
    std::uint64_t runs = 0;
    std::uint32_t thread_count = 0;
    std::uint64_t source_hash = 0;
    std::uint64_t spec_fp = 0;

    const std::uint8_t *kind = nullptr;
    const std::uint8_t *size = nullptr;
    const std::uint8_t *flags = nullptr;
    const std::uint32_t *thread = nullptr;
    const std::uint32_t *tslot = nullptr;
    const std::uint32_t *aslot = nullptr;
    const std::uint64_t *addr = nullptr;
    const std::uint64_t *value = nullptr;
    const std::uint64_t *seq = nullptr;
    const std::uint32_t *run_len = nullptr;
    const std::uint8_t *run_kind = nullptr;
    const std::uint64_t *track_keys = nullptr;
    const std::uint64_t *atomic_keys = nullptr;
};

/** Owning compiled trace: the columns as growable vectors. */
struct CompiledTrace
{
    std::uint64_t events = 0;
    std::uint32_t thread_count = 0;
    std::uint64_t source_hash = 0;
    std::uint64_t spec_fp = 0;

    std::vector<std::uint8_t> kind;
    std::vector<std::uint8_t> size;
    std::vector<std::uint8_t> flags;
    std::vector<std::uint32_t> thread;
    std::vector<std::uint32_t> tslot;
    std::vector<std::uint32_t> aslot;
    std::vector<std::uint64_t> addr;
    std::vector<std::uint64_t> value;
    std::vector<std::uint64_t> seq;
    std::vector<std::uint32_t> run_len;
    std::vector<std::uint8_t> run_kind;
    std::vector<std::uint64_t> track_keys;
    std::vector<std::uint64_t> atomic_keys;

    /** Rebuild the run index from the kind column. */
    void buildRuns();

    /** A view over this object's storage. */
    CompiledTraceView view() const;
};

/**
 * Validate every column row of @p view: kind and run_kind bytes are
 * <= @p max_kind, the run lengths partition [0, micro_ops) with
 * matching kinds, and slots are in range or compiled_no_slot. Fatals
 * naming the offending row; @p what names the artifact in messages.
 */
void validateCompiledView(const CompiledTraceView &view,
                          std::uint8_t max_kind,
                          const std::string &what);

/**
 * Write @p trace to @p path in the .ctc layout above. Fatals on IO
 * errors and (like MmapTraceReader) on a big-endian host.
 */
void writeCompiledTrace(const std::string &path,
                        const CompiledTrace &trace);

/**
 * Maps a .ctc file and hands out a zero-copy CompiledTraceView.
 * Fatals on any validation failure; truncation errors name the byte
 * offset where the file ended short. @p max_kind bounds the kind
 * bytes accepted (the persistency layer passes its micro-op limit).
 */
class MmapCompiledTrace
{
  public:
    explicit MmapCompiledTrace(const std::string &path,
                               std::uint8_t max_kind = 0xff);
    ~MmapCompiledTrace();

    MmapCompiledTrace(const MmapCompiledTrace &) = delete;
    MmapCompiledTrace &operator=(const MmapCompiledTrace &) = delete;

    const CompiledTraceView &view() const { return view_; }

  private:
    CompiledTraceView view_;
    void *map_ = nullptr;
    std::size_t map_size_ = 0;
};

/**
 * Pack @p view into the delta/varint cold-storage encoding (the .ctp
 * byte stream, header included). Address-like columns (addr, seq,
 * track/atomic keys) are zigzag-delta coded to exploit locality;
 * small-integer columns (thread, tslot, aslot, value, run_len) are
 * plain varints; u8 columns are stored raw.
 */
std::vector<std::uint8_t> packCompiledTrace(const CompiledTraceView &view);

/** Decode a .ctp byte stream back into an owning CompiledTrace. */
CompiledTrace unpackCompiledTrace(const std::uint8_t *data,
                                  std::size_t size);

/** Write/read the packed encoding to/from a file. */
void writePackedTrace(const std::string &path,
                      const CompiledTraceView &view);
CompiledTrace readPackedTrace(const std::string &path);

} // namespace persim

#endif // PERSIM_MEMTRACE_COMPILED_TRACE_HH
