/**
 * @file
 * Trace consumers.
 *
 * The execution engine pushes every event to a TraceSink as it
 * happens; analyses are sinks, so large experiments can run without
 * materializing the trace in memory. FanoutSink broadcasts one
 * execution to several analyses at once.
 */

#ifndef PERSIM_MEMTRACE_SINK_HH
#define PERSIM_MEMTRACE_SINK_HH

#include <cstddef>
#include <vector>

#include "memtrace/event.hh"

namespace persim {

/** Abstract consumer of a stream of trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Called once per event, in global (SC) order. */
    virtual void onEvent(const TraceEvent &event) = 0;

    /**
     * Deliver @p count consecutive events at once. Equivalent to
     * calling onEvent for each, which is exactly what the default
     * does; hot sinks (the timing engine) override it so replay pays
     * one virtual dispatch per batch instead of per event. Producers
     * with events in hand (InMemoryTrace::replay, file readers,
     * sweeps) should prefer it.
     */
    virtual void onBatch(const TraceEvent *events, std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            onEvent(events[i]);
    }

    /** Called after the last event of the execution. */
    virtual void onFinish() {}
};

/** Broadcasts each event to a list of downstream sinks, in order. */
class FanoutSink : public TraceSink
{
  public:
    /** Append a downstream sink; not owned. */
    void addSink(TraceSink *sink);

    void onEvent(const TraceEvent &event) override;
    void onBatch(const TraceEvent *events, std::size_t count) override;
    void onFinish() override;

  private:
    std::vector<TraceSink *> sinks_;
};

/** Materializes the event stream into a vector. */
class InMemoryTrace : public TraceSink
{
  public:
    void onEvent(const TraceEvent &event) override;
    void onBatch(const TraceEvent *events, std::size_t count) override;

    const std::vector<TraceEvent> &events() const { return events_; }
    std::vector<TraceEvent> &events() { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** Number of distinct threads seen (max thread id + 1). */
    ThreadId threadCount() const { return thread_count_; }

    /** Replay all stored events into @p sink, then finish it. */
    void replay(TraceSink &sink) const;

  private:
    std::vector<TraceEvent> events_;
    ThreadId thread_count_ = 0;
};

} // namespace persim

#endif // PERSIM_MEMTRACE_SINK_HH
