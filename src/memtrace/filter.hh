/**
 * @file
 * Trace filtering and slicing sinks.
 *
 * Analyses sometimes want a subset of an execution: one thread's
 * program, only the persistent-space accesses, or a window of the
 * global order. FilterSink forwards the events matching a predicate
 * to a downstream sink; the predicate combinators cover the common
 * cases. Note that a filtered trace is generally *not* a legal SC
 * execution on its own — persistency analyses should consume full
 * traces — but filters are invaluable for inspection and statistics.
 */

#ifndef PERSIM_MEMTRACE_FILTER_HH
#define PERSIM_MEMTRACE_FILTER_HH

#include <functional>

#include "memtrace/sink.hh"

namespace persim {

/** Predicate deciding whether an event passes a filter. */
using EventPredicate = std::function<bool(const TraceEvent &)>;

/** Forwards matching events to a downstream sink. */
class FilterSink : public TraceSink
{
  public:
    /**
     * @param downstream Receiver of matching events (not owned).
     * @param predicate Keep events for which this returns true.
     */
    FilterSink(TraceSink *downstream, EventPredicate predicate);

    void onEvent(const TraceEvent &event) override;
    void onFinish() override;

    /** Events seen / events forwarded. */
    std::uint64_t seen() const { return seen_; }
    std::uint64_t forwarded() const { return forwarded_; }

  private:
    TraceSink *downstream_;
    EventPredicate predicate_;
    std::uint64_t seen_ = 0;
    std::uint64_t forwarded_ = 0;
};

/** @name Predicate combinators */
///@{

/** Keep only events of thread @p tid. */
EventPredicate byThread(ThreadId tid);

/** Keep only events of kind @p kind. */
EventPredicate byKind(EventKind kind);

/** Keep only accesses touching [lo, hi). */
EventPredicate byAddressRange(Addr lo, Addr hi);

/** Keep only writes to the persistent address space. */
EventPredicate persistsOnly();

/** Keep only events with seq in [lo, hi). */
EventPredicate bySeqWindow(SeqNum lo, SeqNum hi);

/** Conjunction of two predicates. */
EventPredicate both(EventPredicate a, EventPredicate b);

/** Disjunction of two predicates. */
EventPredicate either(EventPredicate a, EventPredicate b);

/** Negation of a predicate. */
EventPredicate negate(EventPredicate a);

///@}

} // namespace persim

#endif // PERSIM_MEMTRACE_FILTER_HH
