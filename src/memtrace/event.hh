/**
 * @file
 * Memory trace event model.
 *
 * A trace is the sequence of memory events of one multithreaded
 * execution, recorded in a single global order. Because the persim
 * execution engine serializes one event at a time (analysis
 * atomicity, see src/sim/), the global order is a legal sequentially
 * consistent execution: every event of every thread appears, events
 * of one thread appear in program order, and a load returns the value
 * of the most recent prior store to its address.
 *
 * This replaces the paper's PIN-based tracing framework [19, 22]: the
 * downstream persistency analyses consume exactly the information PIN
 * provided (loads, stores, persist/strand barriers, persistent
 * malloc/free, and operation markers).
 */

#ifndef PERSIM_MEMTRACE_EVENT_HH
#define PERSIM_MEMTRACE_EVENT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace persim {

/**
 * Base of the simulated volatile address region. Addresses below
 * persistent_base belong to the volatile address space.
 */
constexpr Addr volatile_base = 0x0000'0001'0000'0000ULL;

/** Base of the simulated persistent (NVRAM) address region. */
constexpr Addr persistent_base = 0x0000'0100'0000'0000ULL;

/** True iff @p addr lies in the persistent address space. */
constexpr bool
isPersistentAddr(Addr addr)
{
    return addr >= persistent_base;
}

/** Kind of a trace event. */
enum class EventKind : std::uint8_t {
    Load = 0,           //!< Read of up to 8 bytes.
    Store = 1,          //!< Write of up to 8 bytes (a persist if the
                        //!< address is persistent).
    Rmw = 2,            //!< Atomic read-modify-write of up to 8 bytes.
    PersistBarrier = 3, //!< Divides the thread's execution into epochs.
    NewStrand = 4,      //!< Begins a new persist strand on the thread.
    PersistSync = 5,    //!< Drains outstanding persists (buffered
                        //!< strict persistency).
    PMalloc = 6,        //!< Persistent allocation: addr, value = size.
    PFree = 7,          //!< Persistent free: addr.
    ThreadStart = 8,    //!< First event of a thread.
    ThreadEnd = 9,      //!< Last event of a thread.
    Marker = 10,        //!< Operation annotation; does not touch memory.
    Fence = 11,         //!< Consistency fence: under TSO execution,
                        //!< the point where the thread drained its
                        //!< store buffer. Not a persist barrier.
    CacheFlush = 12,    //!< clflush: flush one cache line, strongly
                        //!< ordered against stores and other
                        //!< clflushes (Px86).
    CacheFlushOpt = 13, //!< clflushopt: flush one cache line, ordered
                        //!< only against same-line stores and fences.
    CacheWriteBack = 14, //!< clwb: write back one cache line; same
                        //!< ordering as clflushopt.
    StoreFence = 15,    //!< sfence: orders clflushopt/clwb with
                        //!< surrounding stores (a persistency fence).
    FullFence = 16,     //!< mfence: full fence; same persistency
                        //!< semantics as sfence.
};

/**
 * Highest valid EventKind value. The single source of truth for every
 * kind-byte validator (trace_io read, MmapTraceReader, the segment
 * decoder reasserts it): keep it on the last enumerator above when
 * extending the enum — eventKindName's exhaustive switch (-Wswitch)
 * is the compile-time reminder.
 */
constexpr std::uint8_t kMaxEventKind =
    static_cast<std::uint8_t>(EventKind::FullFence);

/**
 * Simulated cache line size in bytes: the unit clflush/clflushopt/
 * clwb operate on, and the atomic persist granularity of the Px86
 * persistency model.
 */
constexpr std::uint64_t cache_line_bytes = 64;

/** Marker codes carried by EventKind::Marker events. */
enum class MarkerCode : std::uint16_t {
    None = 0,
    OpBegin = 1,   //!< Start of a logical operation; value = operation id.
    OpEnd = 2,     //!< End of a logical operation; value = operation id.
    RoleData = 3,  //!< Subsequent persists of this op are entry data.
    RoleHead = 4,  //!< Subsequent persists of this op are head/commit
                   //!< pointer updates.
    UserBase = 100, //!< First code available to applications.
};

/**
 * One memory event. Fixed-size and trivially copyable so traces can
 * be written to disk as a flat array.
 */
struct TraceEvent
{
    SeqNum seq = 0;          //!< Position in the global SC order.
    Addr addr = 0;           //!< Accessed / allocated address.
    std::uint64_t value = 0; //!< Stored value (Store/Rmw), allocation
                             //!< size (PMalloc), or marker argument.
    ThreadId thread = 0;     //!< Issuing thread.
    EventKind kind = EventKind::Load;
    std::uint8_t size = 0;   //!< Access size in bytes (1..8).
    std::uint16_t marker = 0; //!< MarkerCode for Marker events.

    /** True for Load/Store/Rmw. */
    bool isAccess() const
    {
        return kind == EventKind::Load || kind == EventKind::Store ||
            kind == EventKind::Rmw;
    }

    /** True if the event reads memory (Load or Rmw). */
    bool isRead() const
    {
        return kind == EventKind::Load || kind == EventKind::Rmw;
    }

    /** True if the event writes memory (Store or Rmw). */
    bool isWrite() const
    {
        return kind == EventKind::Store || kind == EventKind::Rmw;
    }

    /** True if the event is a write to the persistent address space. */
    bool isPersist() const
    {
        return isWrite() && isPersistentAddr(addr);
    }

    /** Marker code, for Marker events. */
    MarkerCode markerCode() const
    {
        return static_cast<MarkerCode>(marker);
    }
};

static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay compact");

/** Human-readable name of an event kind. */
const char *eventKindName(EventKind kind);

/** One-line textual rendering of an event (for debugging/tools). */
std::string formatEvent(const TraceEvent &event);

} // namespace persim

#endif // PERSIM_MEMTRACE_EVENT_HH
