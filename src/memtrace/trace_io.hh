/**
 * @file
 * Binary trace file format.
 *
 * Layout (little-endian):
 *   - 8-byte magic "PSIMTRC1"
 *   - u32 version (currently 1)
 *   - u32 thread count
 *   - u64 event count
 *   - event count packed records of 32 bytes each
 *     (seq u64, addr u64, value u64, thread u32, kind u8, size u8,
 *      marker u16)
 *
 * Traces are self-contained: persistent vs. volatile address space
 * membership is determined by the fixed region layout in event.hh,
 * and allocations appear as PMalloc/PFree events.
 */

#ifndef PERSIM_MEMTRACE_TRACE_IO_HH
#define PERSIM_MEMTRACE_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <span>
#include <string>

#include "memtrace/sink.hh"

namespace persim {

/** Streaming trace writer; also usable directly as a TraceSink. */
class TraceFileWriter : public TraceSink
{
  public:
    /** Open @p path for writing; fatals if the file cannot be opened. */
    explicit TraceFileWriter(const std::string &path);

    /**
     * Best-effort finish: never throws. Call onFinish() explicitly to
     * get short-write errors (e.g. full disk) reported.
     */
    ~TraceFileWriter() override;

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void onEvent(const TraceEvent &event) override;
    void onBatch(const TraceEvent *events, std::size_t count) override;

    /** Patch header counts and close the file. Idempotent. */
    void onFinish() override;

    std::uint64_t eventsWritten() const { return event_count_; }

  private:
    void writeHeader();

    /** Write the packed-record buffer out and empty it. */
    void flushRecords();

    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t event_count_ = 0;
    ThreadId thread_count_ = 0;
    bool finished_ = false;

    /** Records are packed here and written in batches. */
    std::unique_ptr<unsigned char[]> buffer_;
    std::size_t buffered_ = 0; //!< Records currently in buffer_.
};

/**
 * Reads a trace file, streaming events into a sink. Works on pipes
 * and regular files alike; on regular files the open hints the kernel
 * for sequential readahead (posix_fadvise) and records are decoded
 * from large bulk reads. For segment-parallel replay of on-disk
 * traces prefer MmapTraceReader, which hands out zero-copy views.
 */
class TraceFileReader
{
  public:
    /**
     * Open @p path; fatals on a missing or malformed file, including
     * a header event count inconsistent with the actual file size.
     * Records carrying an out-of-range event-kind byte are rejected
     * by readNext/readAll.
     */
    explicit TraceFileReader(const std::string &path);
    ~TraceFileReader();

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    std::uint64_t eventCount() const { return event_count_; }
    ThreadId threadCount() const { return thread_count_; }

    /** Stream every event into @p sink and call its onFinish. */
    void readAll(TraceSink &sink);

    /** Read the next event; returns false at end of trace. */
    bool readNext(TraceEvent &event);

    /**
     * Read up to @p max events into @p out with one bulk read;
     * returns how many were produced (0 at end of trace). Fatals on
     * truncation or corrupt records, like readNext.
     */
    std::size_t readBatch(TraceEvent *out, std::size_t max);

  private:
    std::FILE *file_ = nullptr;
    std::string path_; //!< For byte-offset error reporting.
    std::uint64_t event_count_ = 0;
    std::uint64_t events_read_ = 0;
    ThreadId thread_count_ = 0;

    /** Raw-record staging for readBatch (lazily sized). */
    std::unique_ptr<unsigned char[]> buffer_;
    std::size_t buffer_records_ = 0;
};

/**
 * Zero-copy trace reader: maps the whole .trc file and hands out
 * `std::span<const TraceEvent>` views directly over the mapping, so
 * parallel segment workers never copy or re-decode records.
 *
 * Validity rests on the on-disk record layout matching TraceEvent
 * byte for byte on a little-endian host: the 32-byte packed record
 * (seq u64, addr u64, value u64, thread u32, kind u8, size u8,
 * marker u16, little-endian) is exactly TraceEvent's field layout,
 * pinned by static_asserts in trace_io.cc, and the 24-byte header
 * keeps the record array 8-byte aligned within the page-aligned
 * mapping. Opening fatals on a big-endian host (the streaming reader
 * still works there) and validates the header *and every record's
 * event-kind byte* once up front, so downstream consumers can trust
 * the views without per-event checks.
 */
class MmapTraceReader
{
  public:
    /** Map @p path; fatals on malformed files like TraceFileReader. */
    explicit MmapTraceReader(const std::string &path);
    ~MmapTraceReader();

    MmapTraceReader(const MmapTraceReader &) = delete;
    MmapTraceReader &operator=(const MmapTraceReader &) = delete;

    std::uint64_t eventCount() const { return event_count_; }
    ThreadId threadCount() const { return thread_count_; }

    /** The whole trace as a zero-copy view. */
    std::span<const TraceEvent> events() const
    {
        return {events_, static_cast<std::size_t>(event_count_)};
    }

    /** Bounds-checked sub-view [offset, offset + count). */
    std::span<const TraceEvent> segment(std::uint64_t offset,
                                        std::uint64_t count) const;

    /** Stream every event into @p sink and call its onFinish. */
    void readAll(TraceSink &sink) const;

  private:
    const TraceEvent *events_ = nullptr;
    std::uint64_t event_count_ = 0;
    ThreadId thread_count_ = 0;
    void *map_ = nullptr;
    std::size_t map_size_ = 0;
};

/** Convenience: write a whole in-memory trace to @p path. */
void writeTraceFile(const std::string &path, const InMemoryTrace &trace);

/** Convenience: load a whole trace file into memory. */
InMemoryTrace readTraceFile(const std::string &path);

} // namespace persim

#endif // PERSIM_MEMTRACE_TRACE_IO_HH
