#include "memtrace/sink.hh"

#include <algorithm>

namespace persim {

void
FanoutSink::addSink(TraceSink *sink)
{
    sinks_.push_back(sink);
}

void
FanoutSink::onEvent(const TraceEvent &event)
{
    for (auto *sink : sinks_)
        sink->onEvent(event);
}

void
FanoutSink::onBatch(const TraceEvent *events, std::size_t count)
{
    for (auto *sink : sinks_)
        sink->onBatch(events, count);
}

void
FanoutSink::onFinish()
{
    for (auto *sink : sinks_)
        sink->onFinish();
}

void
InMemoryTrace::onEvent(const TraceEvent &event)
{
    events_.push_back(event);
    thread_count_ = std::max(thread_count_, event.thread + 1);
}

void
InMemoryTrace::onBatch(const TraceEvent *events, std::size_t count)
{
    events_.insert(events_.end(), events, events + count);
    for (std::size_t i = 0; i < count; ++i)
        thread_count_ = std::max(thread_count_, events[i].thread + 1);
}

void
InMemoryTrace::replay(TraceSink &sink) const
{
    sink.onBatch(events_.data(), events_.size());
    sink.onFinish();
}

} // namespace persim
