#include "memtrace/sink.hh"

#include <algorithm>

namespace persim {

void
FanoutSink::addSink(TraceSink *sink)
{
    sinks_.push_back(sink);
}

void
FanoutSink::onEvent(const TraceEvent &event)
{
    for (auto *sink : sinks_)
        sink->onEvent(event);
}

void
FanoutSink::onFinish()
{
    for (auto *sink : sinks_)
        sink->onFinish();
}

void
InMemoryTrace::onEvent(const TraceEvent &event)
{
    events_.push_back(event);
    thread_count_ = std::max(thread_count_, event.thread + 1);
}

void
InMemoryTrace::replay(TraceSink &sink) const
{
    for (const auto &event : events_)
        sink.onEvent(event);
    sink.onFinish();
}

} // namespace persim
