#include "memtrace/trace_io.hh"

#include <array>
#include <bit>
#include <cstddef>
#include <cstring>
#include <type_traits>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.hh"

namespace persim {

namespace {

constexpr std::array<char, 8> trace_magic =
    {'P', 'S', 'I', 'M', 'T', 'R', 'C', '1'};
constexpr std::uint32_t trace_version = 1;
constexpr std::size_t header_size = 8 + 4 + 4 + 8;
constexpr std::size_t record_size = 32;

/** Records per buffered write burst. */
constexpr std::size_t io_batch_records = 4096;

/**
 * Records per bulk read burst (512 KiB). The streaming reader is the
 * fallback for pipes and cold caches, so bursts are sized to amortize
 * the syscall + decode loop rather than to fit a stdio buffer.
 */
constexpr std::size_t read_batch_records = 16384;

/**
 * The zero-copy reader reinterprets the on-disk record array as
 * TraceEvent directly; pin the layout equivalence it relies on.
 * packEvent writes fields in declaration order at these offsets, so
 * on a little-endian host a mapped record *is* a TraceEvent.
 */
static_assert(std::is_standard_layout_v<TraceEvent> &&
              std::is_trivially_copyable_v<TraceEvent>);
static_assert(sizeof(TraceEvent) == record_size);
static_assert(offsetof(TraceEvent, seq) == 0 &&
              offsetof(TraceEvent, addr) == 8 &&
              offsetof(TraceEvent, value) == 16 &&
              offsetof(TraceEvent, thread) == 24 &&
              offsetof(TraceEvent, kind) == 28 &&
              offsetof(TraceEvent, size) == 29 &&
              offsetof(TraceEvent, marker) == 30);
static_assert(header_size % alignof(TraceEvent) == 0,
              "mapped record array must stay 8-byte aligned");

/** Highest EventKind a record may carry (reject garbage above it);
    centralized in event.hh so every validator agrees. */
constexpr std::uint64_t max_event_kind = kMaxEventKind;

/** Store @p v little-endian into out[0..bytes). */
void
putLe(unsigned char *out, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
}

/** Load a little-endian value from in[0..bytes). */
std::uint64_t
getLe(const unsigned char *in, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

/** Pack one event into a 32-byte little-endian record. */
void
packEvent(const TraceEvent &event, unsigned char *out)
{
    auto put = [&out](std::uint64_t v, int bytes) {
        for (int i = 0; i < bytes; ++i)
            *out++ = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
    };
    put(event.seq, 8);
    put(event.addr, 8);
    put(event.value, 8);
    put(event.thread, 4);
    put(static_cast<std::uint64_t>(event.kind), 1);
    put(event.size, 1);
    put(event.marker, 2);
}

/** Unpack one 32-byte record into an event; rejects bad kind bytes. */
void
unpackEvent(const unsigned char *in, TraceEvent &event)
{
    auto get = [&in](int bytes) {
        const std::uint64_t v = getLe(in, bytes);
        in += bytes;
        return v;
    };
    event.seq = get(8);
    event.addr = get(8);
    event.value = get(8);
    event.thread = static_cast<ThreadId>(get(4));
    const std::uint64_t kind = get(1);
    PERSIM_REQUIRE(kind <= max_event_kind,
                   "corrupt trace record: event kind byte "
                       << kind << " is out of range (max "
                       << max_event_kind << ")");
    event.kind = static_cast<EventKind>(kind);
    event.size = static_cast<std::uint8_t>(get(1));
    event.marker = static_cast<std::uint16_t>(get(2));
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    PERSIM_REQUIRE(file_ != nullptr,
                   "cannot open trace file for writing: " << path);
    writeHeader();
}

TraceFileWriter::~TraceFileWriter()
{
    // Best-effort: onFinish() throws on a short write (e.g. a full
    // disk), and an exception escaping a destructor is std::terminate.
    // Callers that need the failure must call onFinish() themselves.
    try {
        onFinish();
    } catch (...) {
    }
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
TraceFileWriter::writeHeader()
{
    // The header is little-endian on disk like the records; memcpy of
    // host integers would bake the writer's endianness into the file.
    unsigned char header[header_size] = {};
    std::memcpy(header, trace_magic.data(), trace_magic.size());
    putLe(header + 8, trace_version, 4);
    putLe(header + 12, thread_count_, 4);
    putLe(header + 16, event_count_, 8);
    PERSIM_REQUIRE(std::fseek(file_, 0, SEEK_SET) == 0,
                   "cannot seek in trace file: " << path_);
    const std::size_t written =
        std::fwrite(header, 1, header_size, file_);
    PERSIM_REQUIRE(written == header_size,
                   "short write to trace file: " << path_);
}

void
TraceFileWriter::onEvent(const TraceEvent &event)
{
    PERSIM_REQUIRE(file_ != nullptr && !finished_,
                   "write to a finished trace file: " << path_);
    if (!buffer_)
        buffer_ = std::make_unique<unsigned char[]>(io_batch_records *
                                                    record_size);
    packEvent(event, buffer_.get() + buffered_ * record_size);
    if (++buffered_ == io_batch_records)
        flushRecords();
    ++event_count_;
    if (event.thread + 1 > thread_count_)
        thread_count_ = event.thread + 1;
}

void
TraceFileWriter::onBatch(const TraceEvent *events, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        onEvent(events[i]);
}

void
TraceFileWriter::flushRecords()
{
    if (buffered_ == 0)
        return;
    const std::size_t bytes = buffered_ * record_size;
    const std::size_t written =
        std::fwrite(buffer_.get(), 1, bytes, file_);
    PERSIM_REQUIRE(written == bytes,
                   "short write to trace file: " << path_);
    buffered_ = 0;
}

void
TraceFileWriter::onFinish()
{
    if (finished_ || file_ == nullptr)
        return;
    flushRecords();
    finished_ = true;
    writeHeader();
    // Flush before close so a full disk surfaces here, checked,
    // rather than silently at fclose time.
    const bool flushed = std::fflush(file_) == 0;
    const bool closed = std::fclose(file_) == 0;
    file_ = nullptr;
    PERSIM_REQUIRE(flushed && closed,
                   "cannot finish trace file: " << path_);
}

TraceFileReader::TraceFileReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    PERSIM_REQUIRE(file_ != nullptr,
                   "cannot open trace file for reading: " << path);
    unsigned char header[header_size];
    const std::size_t got = std::fread(header, 1, header_size, file_);
    PERSIM_REQUIRE(got == header_size,
                   "trace file too short: " << path << " ends at byte "
                       << got << " inside the " << header_size
                       << "-byte header");
    PERSIM_REQUIRE(
        std::memcmp(header, trace_magic.data(), trace_magic.size()) == 0,
        "bad trace file magic: " << path);
    const auto version =
        static_cast<std::uint32_t>(getLe(header + 8, 4));
    PERSIM_REQUIRE(version == trace_version,
                   "unsupported trace version " << version << ": " << path);
    thread_count_ = static_cast<ThreadId>(getLe(header + 12, 4));
    event_count_ = getLe(header + 16, 8);

    // Don't trust the header count: a truncated or corrupt file must
    // be rejected at open, not midway through an analysis.
    constexpr std::uint64_t max_events =
        (~0ULL - header_size) / record_size;
    PERSIM_REQUIRE(event_count_ <= max_events,
                   "unreasonable event count " << event_count_ << ": "
                                               << path);
    const long data_start = std::ftell(file_);
    PERSIM_REQUIRE(data_start >= 0 &&
                       std::fseek(file_, 0, SEEK_END) == 0,
                   "cannot seek in trace file: " << path);
    const long file_size = std::ftell(file_);
    PERSIM_REQUIRE(file_size >= 0 &&
                       std::fseek(file_, data_start, SEEK_SET) == 0,
                   "cannot seek in trace file: " << path);
    const std::uint64_t expected =
        header_size + event_count_ * record_size;
    PERSIM_REQUIRE(
        static_cast<std::uint64_t>(file_size) == expected,
        "trace file size mismatch: header claims "
            << event_count_ << " events (" << expected
            << " bytes) but the file holds " << file_size
            << " bytes: " << path);

#ifdef POSIX_FADV_SEQUENTIAL
    // Replay scans the file front to back exactly once: ask the
    // kernel for aggressive readahead and early page reclaim so a
    // cold-cache replay is not bounded by 128 KiB default readahead.
    // Advisory only; ignore the result.
    (void)::posix_fadvise(::fileno(file_), 0, 0, POSIX_FADV_SEQUENTIAL);
#endif
}

TraceFileReader::~TraceFileReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceFileReader::readNext(TraceEvent &event)
{
    if (events_read_ >= event_count_)
        return false;
    unsigned char record[record_size];
    const std::size_t got = std::fread(record, 1, record_size, file_);
    PERSIM_REQUIRE(got == record_size,
                   "truncated trace file: " << path_
                       << " ends at byte "
                       << header_size + events_read_ * record_size + got
                       << " inside event record " << events_read_);
    unpackEvent(record, event);
    ++events_read_;
    return true;
}

std::size_t
TraceFileReader::readBatch(TraceEvent *out, std::size_t max)
{
    const std::uint64_t remaining = event_count_ - events_read_;
    std::size_t want = max;
    if (remaining < want)
        want = static_cast<std::size_t>(remaining);
    if (want == 0)
        return 0;
    if (want > read_batch_records)
        want = read_batch_records;
    if (buffer_records_ < want) {
        // Size the staging buffer for full bursts up front instead of
        // growing it to each caller's max.
        buffer_ = std::make_unique<unsigned char[]>(read_batch_records *
                                                    record_size);
        buffer_records_ = read_batch_records;
    }
    const std::size_t bytes = want * record_size;
    const std::size_t got = std::fread(buffer_.get(), 1, bytes, file_);
    PERSIM_REQUIRE(got == bytes,
                   "truncated trace file: " << path_
                       << " ends at byte "
                       << header_size + events_read_ * record_size + got
                       << " inside event record "
                       << events_read_ + got / record_size);
    for (std::size_t i = 0; i < want; ++i)
        unpackEvent(buffer_.get() + i * record_size, out[i]);
    events_read_ += want;
    return want;
}

void
TraceFileReader::readAll(TraceSink &sink)
{
    std::vector<TraceEvent> batch(read_batch_records);
    while (true) {
        const std::size_t got =
            readBatch(batch.data(), batch.size());
        if (got == 0)
            break;
        sink.onBatch(batch.data(), got);
    }
    sink.onFinish();
}

MmapTraceReader::MmapTraceReader(const std::string &path)
{
    PERSIM_REQUIRE(std::endian::native == std::endian::little,
                   "MmapTraceReader requires a little-endian host "
                   "(use TraceFileReader): " << path);

    const int fd = ::open(path.c_str(), O_RDONLY);
    PERSIM_REQUIRE(fd >= 0,
                   "cannot open trace file for mapping: " << path);
    struct stat st = {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        PERSIM_REQUIRE(false,
                       "cannot map trace: not a regular file: " << path);
    }
    const auto file_size = static_cast<std::uint64_t>(st.st_size);
    if (file_size < header_size) {
        ::close(fd);
        PERSIM_REQUIRE(false,
                       "trace file too short: " << path
                           << " ends at byte " << file_size
                           << " inside the " << header_size
                           << "-byte header");
    }

    map_size_ = static_cast<std::size_t>(file_size);
    map_ = ::mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // The mapping keeps the file alive.
    PERSIM_REQUIRE(map_ != MAP_FAILED,
                   "cannot mmap trace file: " << path);

    try {
        const auto *base = static_cast<const unsigned char *>(map_);
        PERSIM_REQUIRE(std::memcmp(base, trace_magic.data(),
                                   trace_magic.size()) == 0,
                       "bad trace file magic: " << path);
        const auto version =
            static_cast<std::uint32_t>(getLe(base + 8, 4));
        PERSIM_REQUIRE(version == trace_version,
                       "unsupported trace version " << version << ": "
                                                    << path);
        thread_count_ = static_cast<ThreadId>(getLe(base + 12, 4));
        event_count_ = getLe(base + 16, 8);
        const std::uint64_t expected =
            header_size + event_count_ * record_size;
        PERSIM_REQUIRE(
            event_count_ <= (file_size - header_size) / record_size &&
                file_size == expected,
            "trace file size mismatch: header claims "
                << event_count_ << " events (" << expected
                << " bytes) but the file holds " << file_size
                << " bytes: " << path);

        events_ = reinterpret_cast<const TraceEvent *>(base +
                                                       header_size);

#ifdef POSIX_MADV_WILLNEED
        (void)::posix_madvise(map_, map_size_, POSIX_MADV_WILLNEED);
#endif

        // Validate every record's kind byte once, here, so the views
        // handed out need no per-event checks (matching the streaming
        // reader's unpackEvent guarantee). This also pre-faults the
        // mapping, which replay would pay for anyway.
        for (std::uint64_t i = 0; i < event_count_; ++i) {
            const auto kind =
                static_cast<std::uint64_t>(events_[i].kind);
            PERSIM_REQUIRE(kind <= max_event_kind,
                           "corrupt trace record " << i
                               << ": event kind byte " << kind
                               << " is out of range (max "
                               << max_event_kind << "): " << path);
        }
    } catch (...) {
        ::munmap(map_, map_size_);
        map_ = nullptr;
        throw;
    }
}

MmapTraceReader::~MmapTraceReader()
{
    if (map_ != nullptr)
        ::munmap(map_, map_size_);
}

std::span<const TraceEvent>
MmapTraceReader::segment(std::uint64_t offset, std::uint64_t count) const
{
    PERSIM_REQUIRE(offset <= event_count_ &&
                       count <= event_count_ - offset,
                   "trace segment [" << offset << ", "
                       << offset + count << ") out of range (trace has "
                       << event_count_ << " events)");
    return {events_ + offset, static_cast<std::size_t>(count)};
}

void
MmapTraceReader::readAll(TraceSink &sink) const
{
    if (event_count_ > 0)
        sink.onBatch(events_, static_cast<std::size_t>(event_count_));
    sink.onFinish();
}

void
writeTraceFile(const std::string &path, const InMemoryTrace &trace)
{
    TraceFileWriter writer(path);
    for (const auto &event : trace.events())
        writer.onEvent(event);
    writer.onFinish();
}

InMemoryTrace
readTraceFile(const std::string &path)
{
    TraceFileReader reader(path);
    InMemoryTrace trace;
    reader.readAll(trace);
    return trace;
}

} // namespace persim
