#include "memtrace/trace_io.hh"

#include <array>
#include <cstring>

#include "common/error.hh"

namespace persim {

namespace {

constexpr std::array<char, 8> trace_magic =
    {'P', 'S', 'I', 'M', 'T', 'R', 'C', '1'};
constexpr std::uint32_t trace_version = 1;
constexpr std::size_t header_size = 8 + 4 + 4 + 8;
constexpr std::size_t record_size = 32;

/** Records per buffered I/O burst (writer and readBatch). */
constexpr std::size_t io_batch_records = 4096;

/** Highest EventKind a record may carry (reject garbage above it). */
constexpr std::uint64_t max_event_kind =
    static_cast<std::uint64_t>(EventKind::Fence);

/** Store @p v little-endian into out[0..bytes). */
void
putLe(unsigned char *out, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
}

/** Load a little-endian value from in[0..bytes). */
std::uint64_t
getLe(const unsigned char *in, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

/** Pack one event into a 32-byte little-endian record. */
void
packEvent(const TraceEvent &event, unsigned char *out)
{
    auto put = [&out](std::uint64_t v, int bytes) {
        for (int i = 0; i < bytes; ++i)
            *out++ = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
    };
    put(event.seq, 8);
    put(event.addr, 8);
    put(event.value, 8);
    put(event.thread, 4);
    put(static_cast<std::uint64_t>(event.kind), 1);
    put(event.size, 1);
    put(event.marker, 2);
}

/** Unpack one 32-byte record into an event; rejects bad kind bytes. */
void
unpackEvent(const unsigned char *in, TraceEvent &event)
{
    auto get = [&in](int bytes) {
        const std::uint64_t v = getLe(in, bytes);
        in += bytes;
        return v;
    };
    event.seq = get(8);
    event.addr = get(8);
    event.value = get(8);
    event.thread = static_cast<ThreadId>(get(4));
    const std::uint64_t kind = get(1);
    PERSIM_REQUIRE(kind <= max_event_kind,
                   "corrupt trace record: event kind byte "
                       << kind << " is out of range (max "
                       << max_event_kind << ")");
    event.kind = static_cast<EventKind>(kind);
    event.size = static_cast<std::uint8_t>(get(1));
    event.marker = static_cast<std::uint16_t>(get(2));
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    PERSIM_REQUIRE(file_ != nullptr,
                   "cannot open trace file for writing: " << path);
    writeHeader();
}

TraceFileWriter::~TraceFileWriter()
{
    // Best-effort: onFinish() throws on a short write (e.g. a full
    // disk), and an exception escaping a destructor is std::terminate.
    // Callers that need the failure must call onFinish() themselves.
    try {
        onFinish();
    } catch (...) {
    }
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
TraceFileWriter::writeHeader()
{
    // The header is little-endian on disk like the records; memcpy of
    // host integers would bake the writer's endianness into the file.
    unsigned char header[header_size] = {};
    std::memcpy(header, trace_magic.data(), trace_magic.size());
    putLe(header + 8, trace_version, 4);
    putLe(header + 12, thread_count_, 4);
    putLe(header + 16, event_count_, 8);
    PERSIM_REQUIRE(std::fseek(file_, 0, SEEK_SET) == 0,
                   "cannot seek in trace file: " << path_);
    const std::size_t written =
        std::fwrite(header, 1, header_size, file_);
    PERSIM_REQUIRE(written == header_size,
                   "short write to trace file: " << path_);
}

void
TraceFileWriter::onEvent(const TraceEvent &event)
{
    PERSIM_REQUIRE(file_ != nullptr && !finished_,
                   "write to a finished trace file: " << path_);
    if (!buffer_)
        buffer_ = std::make_unique<unsigned char[]>(io_batch_records *
                                                    record_size);
    packEvent(event, buffer_.get() + buffered_ * record_size);
    if (++buffered_ == io_batch_records)
        flushRecords();
    ++event_count_;
    if (event.thread + 1 > thread_count_)
        thread_count_ = event.thread + 1;
}

void
TraceFileWriter::onBatch(const TraceEvent *events, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        onEvent(events[i]);
}

void
TraceFileWriter::flushRecords()
{
    if (buffered_ == 0)
        return;
    const std::size_t bytes = buffered_ * record_size;
    const std::size_t written =
        std::fwrite(buffer_.get(), 1, bytes, file_);
    PERSIM_REQUIRE(written == bytes,
                   "short write to trace file: " << path_);
    buffered_ = 0;
}

void
TraceFileWriter::onFinish()
{
    if (finished_ || file_ == nullptr)
        return;
    flushRecords();
    finished_ = true;
    writeHeader();
    // Flush before close so a full disk surfaces here, checked,
    // rather than silently at fclose time.
    const bool flushed = std::fflush(file_) == 0;
    const bool closed = std::fclose(file_) == 0;
    file_ = nullptr;
    PERSIM_REQUIRE(flushed && closed,
                   "cannot finish trace file: " << path_);
}

TraceFileReader::TraceFileReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    PERSIM_REQUIRE(file_ != nullptr,
                   "cannot open trace file for reading: " << path);
    unsigned char header[header_size];
    const std::size_t got = std::fread(header, 1, header_size, file_);
    PERSIM_REQUIRE(got == header_size, "trace file too short: " << path);
    PERSIM_REQUIRE(
        std::memcmp(header, trace_magic.data(), trace_magic.size()) == 0,
        "bad trace file magic: " << path);
    const auto version =
        static_cast<std::uint32_t>(getLe(header + 8, 4));
    PERSIM_REQUIRE(version == trace_version,
                   "unsupported trace version " << version << ": " << path);
    thread_count_ = static_cast<ThreadId>(getLe(header + 12, 4));
    event_count_ = getLe(header + 16, 8);

    // Don't trust the header count: a truncated or corrupt file must
    // be rejected at open, not midway through an analysis.
    constexpr std::uint64_t max_events =
        (~0ULL - header_size) / record_size;
    PERSIM_REQUIRE(event_count_ <= max_events,
                   "unreasonable event count " << event_count_ << ": "
                                               << path);
    const long data_start = std::ftell(file_);
    PERSIM_REQUIRE(data_start >= 0 &&
                       std::fseek(file_, 0, SEEK_END) == 0,
                   "cannot seek in trace file: " << path);
    const long file_size = std::ftell(file_);
    PERSIM_REQUIRE(file_size >= 0 &&
                       std::fseek(file_, data_start, SEEK_SET) == 0,
                   "cannot seek in trace file: " << path);
    const std::uint64_t expected =
        header_size + event_count_ * record_size;
    PERSIM_REQUIRE(
        static_cast<std::uint64_t>(file_size) == expected,
        "trace file size mismatch: header claims "
            << event_count_ << " events (" << expected
            << " bytes) but the file holds " << file_size
            << " bytes: " << path);
}

TraceFileReader::~TraceFileReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceFileReader::readNext(TraceEvent &event)
{
    if (events_read_ >= event_count_)
        return false;
    unsigned char record[record_size];
    const std::size_t got = std::fread(record, 1, record_size, file_);
    PERSIM_REQUIRE(got == record_size, "truncated trace file");
    unpackEvent(record, event);
    ++events_read_;
    return true;
}

std::size_t
TraceFileReader::readBatch(TraceEvent *out, std::size_t max)
{
    const std::uint64_t remaining = event_count_ - events_read_;
    std::size_t want = max;
    if (remaining < want)
        want = static_cast<std::size_t>(remaining);
    if (want == 0)
        return 0;
    if (want > io_batch_records)
        want = io_batch_records;
    if (buffer_records_ < want) {
        buffer_ =
            std::make_unique<unsigned char[]>(want * record_size);
        buffer_records_ = want;
    }
    const std::size_t bytes = want * record_size;
    const std::size_t got = std::fread(buffer_.get(), 1, bytes, file_);
    PERSIM_REQUIRE(got == bytes, "truncated trace file");
    for (std::size_t i = 0; i < want; ++i)
        unpackEvent(buffer_.get() + i * record_size, out[i]);
    events_read_ += want;
    return want;
}

void
TraceFileReader::readAll(TraceSink &sink)
{
    std::vector<TraceEvent> batch(io_batch_records);
    while (true) {
        const std::size_t got =
            readBatch(batch.data(), batch.size());
        if (got == 0)
            break;
        sink.onBatch(batch.data(), got);
    }
    sink.onFinish();
}

void
writeTraceFile(const std::string &path, const InMemoryTrace &trace)
{
    TraceFileWriter writer(path);
    for (const auto &event : trace.events())
        writer.onEvent(event);
    writer.onFinish();
}

InMemoryTrace
readTraceFile(const std::string &path)
{
    TraceFileReader reader(path);
    InMemoryTrace trace;
    reader.readAll(trace);
    return trace;
}

} // namespace persim
