#include "memtrace/trace_io.hh"

#include <array>
#include <cstring>

#include "common/error.hh"

namespace persim {

namespace {

constexpr std::array<char, 8> trace_magic =
    {'P', 'S', 'I', 'M', 'T', 'R', 'C', '1'};
constexpr std::uint32_t trace_version = 1;
constexpr std::size_t header_size = 8 + 4 + 4 + 8;
constexpr std::size_t record_size = 32;

/** Pack one event into a 32-byte little-endian record. */
void
packEvent(const TraceEvent &event, unsigned char *out)
{
    auto put = [&out](std::uint64_t v, int bytes) {
        for (int i = 0; i < bytes; ++i)
            *out++ = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
    };
    put(event.seq, 8);
    put(event.addr, 8);
    put(event.value, 8);
    put(event.thread, 4);
    put(static_cast<std::uint64_t>(event.kind), 1);
    put(event.size, 1);
    put(event.marker, 2);
}

/** Unpack one 32-byte record into an event. */
void
unpackEvent(const unsigned char *in, TraceEvent &event)
{
    auto get = [&in](int bytes) {
        std::uint64_t v = 0;
        for (int i = 0; i < bytes; ++i)
            v |= static_cast<std::uint64_t>(*in++) << (8 * i);
        return v;
    };
    event.seq = get(8);
    event.addr = get(8);
    event.value = get(8);
    event.thread = static_cast<ThreadId>(get(4));
    event.kind = static_cast<EventKind>(get(1));
    event.size = static_cast<std::uint8_t>(get(1));
    event.marker = static_cast<std::uint16_t>(get(2));
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    PERSIM_REQUIRE(file_ != nullptr,
                   "cannot open trace file for writing: " << path);
    writeHeader();
}

TraceFileWriter::~TraceFileWriter()
{
    onFinish();
}

void
TraceFileWriter::writeHeader()
{
    unsigned char header[header_size] = {};
    std::memcpy(header, trace_magic.data(), trace_magic.size());
    std::uint32_t version = trace_version;
    std::memcpy(header + 8, &version, 4);
    std::uint32_t threads = thread_count_;
    std::memcpy(header + 12, &threads, 4);
    std::uint64_t count = event_count_;
    std::memcpy(header + 16, &count, 8);
    std::fseek(file_, 0, SEEK_SET);
    const std::size_t written =
        std::fwrite(header, 1, header_size, file_);
    PERSIM_REQUIRE(written == header_size,
                   "short write to trace file: " << path_);
}

void
TraceFileWriter::onEvent(const TraceEvent &event)
{
    PERSIM_REQUIRE(file_ != nullptr && !finished_,
                   "write to a finished trace file: " << path_);
    unsigned char record[record_size];
    packEvent(event, record);
    const std::size_t written = std::fwrite(record, 1, record_size, file_);
    PERSIM_REQUIRE(written == record_size,
                   "short write to trace file: " << path_);
    ++event_count_;
    if (event.thread + 1 > thread_count_)
        thread_count_ = event.thread + 1;
}

void
TraceFileWriter::onFinish()
{
    if (finished_ || file_ == nullptr)
        return;
    finished_ = true;
    writeHeader();
    std::fclose(file_);
    file_ = nullptr;
}

TraceFileReader::TraceFileReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    PERSIM_REQUIRE(file_ != nullptr,
                   "cannot open trace file for reading: " << path);
    unsigned char header[header_size];
    const std::size_t got = std::fread(header, 1, header_size, file_);
    PERSIM_REQUIRE(got == header_size, "trace file too short: " << path);
    PERSIM_REQUIRE(
        std::memcmp(header, trace_magic.data(), trace_magic.size()) == 0,
        "bad trace file magic: " << path);
    std::uint32_t version = 0;
    std::memcpy(&version, header + 8, 4);
    PERSIM_REQUIRE(version == trace_version,
                   "unsupported trace version " << version << ": " << path);
    std::uint32_t threads = 0;
    std::memcpy(&threads, header + 12, 4);
    thread_count_ = threads;
    std::memcpy(&event_count_, header + 16, 8);
}

TraceFileReader::~TraceFileReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceFileReader::readNext(TraceEvent &event)
{
    if (events_read_ >= event_count_)
        return false;
    unsigned char record[record_size];
    const std::size_t got = std::fread(record, 1, record_size, file_);
    PERSIM_REQUIRE(got == record_size, "truncated trace file");
    unpackEvent(record, event);
    ++events_read_;
    return true;
}

void
TraceFileReader::readAll(TraceSink &sink)
{
    TraceEvent event;
    while (readNext(event))
        sink.onEvent(event);
    sink.onFinish();
}

void
writeTraceFile(const std::string &path, const InMemoryTrace &trace)
{
    TraceFileWriter writer(path);
    for (const auto &event : trace.events())
        writer.onEvent(event);
    writer.onFinish();
}

InMemoryTrace
readTraceFile(const std::string &path)
{
    TraceFileReader reader(path);
    InMemoryTrace trace;
    reader.readAll(trace);
    return trace;
}

} // namespace persim
