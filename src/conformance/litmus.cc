#include "conformance/litmus.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hh"
#include "common/task_pool.hh"
#include "explore/programs.hh"
#include "memtrace/event.hh"
#include "persistency/persist_race.hh"
#include "persistency/timing_engine.hh"
#include "recovery/cuts.hh"
#include "sim/scheduler.hh"

namespace persim {

namespace {

/** Working set of a hand-written litmus: named cells + a volatile
    flag, filled during setup. */
struct LitmusCells
{
    std::vector<Addr> cell;
    Addr vflag = invalid_addr;
};

using LitmusBody =
    std::function<void(ThreadCtx &, const LitmusCells &)>;

/**
 * Package a hand-written litmus: each named cell gets its own cache
 * line (so flushes never alias across variables), plus an optional
 * volatile flag for message passing. Executed on the TSO simulator —
 * the consistency model Px86 is defined over.
 */
LitmusTest
makeHandTest(std::string name, std::string note,
             std::vector<std::string> cells, bool vflag,
             std::vector<LitmusBody> workers)
{
    LitmusTest test;
    test.name = std::move(name);
    test.note = std::move(note);
    test.make = [cells, vflag, workers]() {
        auto state = std::make_shared<LitmusCells>();
        LitmusProgram lp;
        lp.observed = std::make_shared<std::vector<ObservedCell>>();
        auto observed = lp.observed;
        lp.program.engine.consistency = ConsistencyModel::TSO;
        lp.program.setup = [state, observed, cells,
                            vflag](ThreadCtx &ctx) {
            state->cell.clear();
            observed->clear();
            for (const std::string &cell_name : cells) {
                const Addr addr = ctx.pmalloc(8, cache_line_bytes);
                state->cell.push_back(addr);
                observed->push_back(ObservedCell{cell_name, addr, 8});
            }
            if (vflag)
                state->vflag = ctx.vmalloc(8);
        };
        for (const LitmusBody &body : workers)
            lp.program.workers.push_back(
                [state, body](ThreadCtx &ctx) { body(ctx, *state); });
        return lp;
    };
    return test;
}

/** Bounded spin on a volatile flag (TSO: the peer's store may still
    sit in its store buffer; retries give background drain a chance). */
bool
awaitFlag(ThreadCtx &ctx, Addr flag)
{
    for (int spin = 0; spin < 24; ++spin) {
        if (ctx.load(flag) == 1)
            return true;
    }
    return false;
}

} // namespace

std::vector<LitmusTest>
handwrittenLitmusTests()
{
    std::vector<LitmusTest> tests;

    tests.push_back(makeHandTest(
        "clflush_chain",
        "clflush orders before younger stores: y without x forbidden "
        "under px86, allowed under barrier-free epoch",
        {"x", "y"}, false,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
            ctx.store(c.cell[0], 1);
            ctx.clflush(c.cell[0]);
            ctx.store(c.cell[1], 1);
            ctx.clflushopt(c.cell[1]);
            ctx.sfence();
        }}));

    tests.push_back(makeHandTest(
        "clflushopt_overtaken",
        "a younger clflush overtakes an older unfenced clflushopt: "
        "y without x allowed under px86 and epoch, forbidden under "
        "strict",
        {"x", "y"}, false,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
            ctx.store(c.cell[0], 1);
            ctx.clflushopt(c.cell[0]);
            ctx.store(c.cell[1], 1);
            ctx.clflush(c.cell[1]);
            ctx.sfence();
        }}));

    tests.push_back(makeHandTest(
        "epoch_vs_sfence",
        "an sfence alone persists nothing: px86 reaches y without x "
        "(x is never flushed) while epoch's barrier reading of sfence "
        "orders x before y and persists both",
        {"x", "y"}, false,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
            ctx.store(c.cell[0], 1);
            ctx.sfence();
            ctx.store(c.cell[1], 1);
            ctx.clflushopt(c.cell[1]);
            ctx.sfence();
        }}));

    tests.push_back(makeHandTest(
        "flushopt_sfence_ordered",
        "clflushopt; sfence before the next store restores epoch-like "
        "ordering: px86 and epoch agree",
        {"x", "y"}, false,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
            ctx.store(c.cell[0], 1);
            ctx.clflushopt(c.cell[0]);
            ctx.sfence();
            ctx.store(c.cell[1], 1);
            ctx.clflushopt(c.cell[1]);
            ctx.sfence();
        }}));

    tests.push_back(makeHandTest(
        "store_no_flush",
        "an unflushed store is never durable under px86; the SC "
        "models persist it at the store",
        {"x"}, false,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
            ctx.store(c.cell[0], 1);
        }}));

    tests.push_back(makeHandTest(
        "message_passing_flush",
        "durable-before-visible: the consumer inherits the producer's "
        "clflush through the volatile flag, so px86 forbids y without "
        "x where barrier-free epoch allows it",
        {"x", "y"}, true,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
             ctx.store(c.cell[0], 1);
             ctx.clflush(c.cell[0]);
             ctx.store(c.vflag, 1);
         },
         [](ThreadCtx &ctx, const LitmusCells &c) {
             if (awaitFlag(ctx, c.vflag)) {
                 ctx.store(c.cell[1], 1);
                 ctx.clflushopt(c.cell[1]);
                 ctx.sfence();
             }
         }}));

    tests.push_back(makeHandTest(
        "mfence_same_as_sfence",
        "mfence carries the same persistency semantics as sfence "
        "(compare with flushopt_sfence_ordered)",
        {"x", "y"}, false,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
            ctx.store(c.cell[0], 1);
            ctx.clflushopt(c.cell[0]);
            ctx.mfence();
            ctx.store(c.cell[1], 1);
            ctx.clflushopt(c.cell[1]);
            ctx.mfence();
        }}));

    {
        // Two words of ONE cache line, flushed between the stores:
        // px86 issues two line persists and the intermediate state
        // (a=1, b=0) is reachable; epoch at 64-byte atomicity
        // coalesces both stores into one atomic persist and hides it.
        LitmusTest test;
        test.name = "same_line_two_flushes";
        test.note =
            "flushing a line between stores exposes the intermediate "
            "per-line state that epoch's 64-byte coalescing hides";
        test.make = []() {
            auto state = std::make_shared<LitmusCells>();
            LitmusProgram lp;
            lp.observed = std::make_shared<std::vector<ObservedCell>>();
            auto observed = lp.observed;
            lp.program.engine.consistency = ConsistencyModel::TSO;
            lp.program.setup = [state, observed](ThreadCtx &ctx) {
                state->cell.clear();
                observed->clear();
                const Addr line =
                    ctx.pmalloc(cache_line_bytes, cache_line_bytes);
                state->cell.push_back(line);
                state->cell.push_back(line + 8);
                observed->push_back(ObservedCell{"a", line, 8});
                observed->push_back(ObservedCell{"b", line + 8, 8});
            };
            lp.program.workers.push_back([state](ThreadCtx &ctx) {
                ctx.store(state->cell[0], 1);
                ctx.clflushopt(state->cell[0]);
                ctx.store(state->cell[1], 1);
                ctx.clflushopt(state->cell[1]);
                ctx.sfence();
            });
            return lp;
        };
        tests.push_back(std::move(test));
    }

    tests.push_back(makeHandTest(
        "clwb_same_as_clflushopt",
        "clwb orders exactly like clflushopt (no invalidate is "
        "modeled; compare with flushopt_sfence_ordered)",
        {"x", "y"}, false,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
            ctx.store(c.cell[0], 1);
            ctx.clwb(c.cell[0]);
            ctx.sfence();
            ctx.store(c.cell[1], 1);
            ctx.clwb(c.cell[1]);
            ctx.sfence();
        }}));

    tests.push_back(makeHandTest(
        "sfence_alone_persists_nothing",
        "sfence orders flushes but flushes nothing itself: x stays "
        "volatile under px86",
        {"x"}, false,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
            ctx.store(c.cell[0], 1);
            ctx.sfence();
            ctx.sfence();
        }}));

    tests.push_back(makeHandTest(
        "dirty_read_race",
        "seeded persistency race: the consumer reads x while it is "
        "dirty (never flushed) and persists y — recovery can see y "
        "without x; PersistRace flags it (dirty_read under px86, "
        "unordered_persist under the SC-shadow models)",
        {"x", "y"}, true,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
             ctx.store(c.cell[0], 1);
             // Bug under test: no flush of x before publishing.
             ctx.store(c.vflag, 1);
         },
         [](ThreadCtx &ctx, const LitmusCells &c) {
             if (awaitFlag(ctx, c.vflag)) {
                 (void)ctx.load(c.cell[0]);
                 ctx.store(c.cell[1], 1);
                 ctx.clflushopt(c.cell[1]);
                 ctx.sfence();
             }
         }}));

    tests.push_back(makeHandTest(
        "independent_flushes",
        "unrelated lines flushed by unrelated threads stay unordered "
        "under every model (schedule-union sanity row)",
        {"x", "y"}, false,
        {[](ThreadCtx &ctx, const LitmusCells &c) {
             ctx.store(c.cell[0], 1);
             ctx.clflush(c.cell[0]);
         },
         [](ThreadCtx &ctx, const LitmusCells &c) {
             ctx.store(c.cell[1], 1);
             ctx.clflush(c.cell[1]);
         }}));

    return tests;
}

std::vector<LitmusTest>
generatedLitmusTests(std::size_t count, std::uint64_t seed0)
{
    std::vector<LitmusTest> tests;
    tests.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t seed = seed0 + i;
        LitmusTest test;
        test.name = "random_flush_" + std::to_string(seed);
        test.note = "seeded random flush program "
                    "(programs.hh randomProgram, allow_flushes)";
        test.make = [seed]() {
            RandomProgramOptions opts;
            opts.threads = 2;
            opts.ops_per_thread = 7;
            opts.scratch_cells = 3;
            opts.volatile_cells = 2;
            opts.allow_strands = false;
            opts.allow_flushes = true;
            auto layout = std::make_shared<RandomProgramLayout>();
            LitmusProgram lp;
            lp.program = randomProgram(seed, opts, layout)();
            lp.program.engine.consistency = ConsistencyModel::TSO;
            lp.observed = std::make_shared<std::vector<ObservedCell>>();
            auto observed = lp.observed;
            const auto inner = lp.program.setup;
            lp.program.setup = [inner, layout, observed,
                                opts](ThreadCtx &ctx) {
                inner(ctx);
                observed->clear();
                for (std::uint32_t c = 0; c < opts.scratch_cells; ++c)
                    observed->push_back(
                        ObservedCell{"s" + std::to_string(c),
                                     layout->scratch + c * 8ULL, 8});
                for (std::uint32_t t = 0; t < opts.threads; ++t) {
                    observed->push_back(
                        ObservedCell{"data" + std::to_string(t),
                                     layout->data + t * 8ULL, 8});
                    observed->push_back(
                        ObservedCell{"flag" + std::to_string(t),
                                     layout->flag + t * 8ULL, 8});
                }
            };
            return lp;
        };
        tests.push_back(std::move(test));
    }
    return tests;
}

std::vector<LitmusTest>
allLitmusTests()
{
    std::vector<LitmusTest> tests = handwrittenLitmusTests();
    std::vector<LitmusTest> generated = generatedLitmusTests();
    for (LitmusTest &test : generated)
        tests.push_back(std::move(test));
    return tests;
}

std::vector<ModelConfig>
conformanceModels()
{
    ModelConfig strict = ModelConfig::strict();
    strict.atomic_granularity = cache_line_bytes;
    ModelConfig epoch = ModelConfig::epoch();
    epoch.atomic_granularity = cache_line_bytes;
    ModelConfig strand = ModelConfig::strand();
    strand.atomic_granularity = cache_line_bytes;
    return {strict, epoch, strand, ModelConfig::px86()};
}

namespace {

/** One deterministic execution of a litmus program. */
struct LitmusExecution
{
    InMemoryTrace trace;
    std::uint64_t fingerprint = 0;
    std::vector<ObservedCell> observed;
};

LitmusExecution
executeOnce(const LitmusTest &test, FrontierKind frontier,
            std::uint64_t seed)
{
    LitmusProgram lp = test.make();
    PERSIM_REQUIRE(!lp.program.workers.empty(),
                   "litmus program has no workers");

    LitmusExecution out;
    ReplayPolicy policy({}, frontier, seed);
    EngineConfig config = lp.program.engine;
    if (config.max_events == 0)
        config.max_events = 1ULL << 20;
    ExecutionEngine engine(config, &out.trace, &policy);
    if (lp.program.setup)
        engine.runSetup(lp.program.setup);
    engine.run(lp.program.workers);
    out.fingerprint = fingerprintTrace(out.trace);
    PERSIM_REQUIRE(lp.observed != nullptr && !lp.observed->empty(),
                   "litmus program observed no cells");
    out.observed = *lp.observed;
    return out;
}

LitmusResult
runOneTest(const LitmusTest &test, const ConformanceOptions &options,
           const std::vector<ModelConfig> &models)
{
    LitmusResult out;
    out.name = test.name;
    out.note = test.note;

    // Deterministic schedule set: the round-robin frontier plus fixed
    // random-frontier seeds, pruned to distinct executions.
    std::vector<LitmusExecution> executions;
    std::set<std::uint64_t> fingerprints;
    const auto consider = [&](LitmusExecution &&execution) {
        if (fingerprints.insert(execution.fingerprint).second)
            executions.push_back(std::move(execution));
    };
    consider(executeOnce(test, FrontierKind::RoundRobin, 1));
    for (std::uint32_t s = 1; s <= options.random_schedules; ++s)
        consider(executeOnce(test, FrontierKind::Random, s));
    out.schedules = executions.size();

    for (const ModelConfig &model : models) {
        ModelStates entry;
        entry.model = model.name();
        std::set<std::string> states;
        for (const LitmusExecution &execution : executions) {
            TimingConfig tcfg;
            tcfg.model = model;
            tcfg.record_log = true;
            tcfg.record_deps = true;
            PersistRaceDetector detector;
            if (options.detect_persist_races)
                tcfg.plugins.push_back(&detector);
            PersistTimingEngine engine(tcfg);
            engine.onBatch(execution.trace.events().data(),
                           execution.trace.events().size());
            engine.onFinish();
            entry.persist_races += detector.total();
            const PersistLog log = engine.takeLog();
            const PersistDag dag = buildPersistDag(log);

            const RecoveryInvariant fingerprint =
                [&states, &execution](
                    const MemoryImage &image) -> std::string {
                std::string state;
                for (const ObservedCell &cell : execution.observed) {
                    if (!state.empty())
                        state += ' ';
                    state += cell.name;
                    state += '=';
                    state +=
                        std::to_string(image.load(cell.addr, cell.size));
                }
                states.insert(std::move(state));
                return "";
            };
            CutCheckResult cuts;
            if (options.prune_cuts) {
                std::vector<AddrRange> ranges;
                ranges.reserve(execution.observed.size());
                for (const ObservedCell &cell : execution.observed)
                    ranges.push_back(AddrRange{cell.addr, cell.size});
                cuts = checkObservedCuts(log, dag, fingerprint, ranges,
                                         options.max_cuts);
            } else {
                cuts = checkAllCuts(log, dag, fingerprint,
                                    options.max_cuts);
            }
            entry.budget_exhausted |= cuts.budget_exhausted;
        }
        entry.states.assign(states.begin(), states.end());
        out.models.push_back(std::move(entry));
    }
    return out;
}

/** Render a state set, elided beyond a cap to keep reports legible. */
void
renderStates(std::ostringstream &oss,
             const std::vector<std::string> &states)
{
    constexpr std::size_t cap = 24;
    oss << states.size() << " state" << (states.size() == 1 ? "" : "s");
    for (std::size_t i = 0; i < states.size() && i < cap; ++i)
        oss << (i == 0 ? ": " : " | ") << '{' << states[i] << '}';
    if (states.size() > cap)
        oss << " | ...";
}

} // namespace

std::vector<LitmusResult>
runConformanceSuite(const std::vector<LitmusTest> &tests,
                    const ConformanceOptions &options)
{
    const std::vector<ModelConfig> models = conformanceModels();
    std::vector<LitmusResult> results(tests.size());
    const auto run_one = [&](std::size_t i) {
        results[i] = runOneTest(tests[i], options, models);
    };
    if (options.jobs > 1 && tests.size() > 1) {
        // Results land in pre-sized slots indexed by test id, so the
        // report is identical for every jobs value.
        TaskPool pool(options.jobs);
        pool.parallelFor(tests.size(), run_one);
    } else {
        for (std::size_t i = 0; i < tests.size(); ++i)
            run_one(i);
    }
    return results;
}

std::string
formatDivergenceReport(const std::vector<LitmusResult> &results)
{
    std::ostringstream oss;
    oss << "# Px86 conformance divergence report\n";
    oss << "#\n";
    oss << "# Reachable post-crash states per litmus test and "
           "persistency model\n";
    oss << "# (exhaustive consistent-cut enumeration per schedule; "
           "state sets are\n";
    oss << "# unions over the deterministic schedule set). The "
           "px86-vs-epoch line\n";
    oss << "# lists states reachable under only one of the two: "
           "'+' = px86 only,\n";
    oss << "# '-' = epoch only.\n";

    std::size_t model_width = 0;
    for (const LitmusResult &result : results)
        for (const ModelStates &entry : result.models)
            model_width = std::max(model_width, entry.model.size());

    std::size_t diverging = 0;
    for (const LitmusResult &result : results) {
        oss << "\n## " << result.name << "\n";
        if (!result.note.empty())
            oss << "   note: " << result.note << "\n";
        oss << "   schedules: " << result.schedules << "\n";
        const ModelStates *px86 = nullptr;
        const ModelStates *epoch = nullptr;
        for (const ModelStates &entry : result.models) {
            oss << "   " << entry.model
                << std::string(model_width - entry.model.size(), ' ')
                << " : ";
            renderStates(oss, entry.states);
            if (entry.budget_exhausted)
                oss << " [cut budget exhausted]";
            if (entry.persist_races > 0)
                oss << " [persist races: " << entry.persist_races << "]";
            oss << "\n";
            if (entry.model == "px86")
                px86 = &entry;
            else if (entry.model.rfind("epoch", 0) == 0)
                epoch = &entry;
        }
        if (px86 != nullptr && epoch != nullptr) {
            std::vector<std::string> only_px86;
            std::vector<std::string> only_epoch;
            std::set_difference(px86->states.begin(),
                                px86->states.end(),
                                epoch->states.begin(),
                                epoch->states.end(),
                                std::back_inserter(only_px86));
            std::set_difference(epoch->states.begin(),
                                epoch->states.end(),
                                px86->states.begin(),
                                px86->states.end(),
                                std::back_inserter(only_epoch));
            oss << "   px86 vs " << epoch->model << ": ";
            if (only_px86.empty() && only_epoch.empty()) {
                oss << "AGREE\n";
            } else {
                ++diverging;
                oss << "DIVERGE";
                constexpr std::size_t cap = 12;
                for (std::size_t i = 0;
                     i < only_px86.size() && i < cap; ++i)
                    oss << " +{" << only_px86[i] << '}';
                if (only_px86.size() > cap)
                    oss << " +...";
                for (std::size_t i = 0;
                     i < only_epoch.size() && i < cap; ++i)
                    oss << " -{" << only_epoch[i] << '}';
                if (only_epoch.size() > cap)
                    oss << " -...";
                oss << "\n";
            }
        }
    }

    oss << "\n# summary: " << results.size() << " tests, " << diverging
        << " diverging (px86 vs epoch)\n";
    return oss.str();
}

} // namespace persim
