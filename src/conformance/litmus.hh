/**
 * @file
 * Px86 conformance harness: litmus programs replayed under every
 * persistency model, cross-checking reachable post-crash states.
 *
 * Each litmus test is a small bounded program (hand-written idiom or
 * a seeded random program from src/explore/programs.hh) executed on
 * the TSO simulator under a deterministic set of schedules. Every
 * resulting trace is replayed under each persistency model with
 * record_deps, the exhaustive recovery observer (src/recovery/
 * cuts.hh) enumerates every consistent cut, and each crash state is
 * fingerprinted over the test's observed cells. The per-model sets of
 * reachable post-crash states are then compared pairwise and
 * rendered as a divergence report (DESIGN.md Section 13.4) whose
 * committed golden copy documents, among others:
 *
 *  - the epoch-vs-sfence disagreement (an sfence alone persists
 *    nothing, while an epoch barrier orders the surrounding
 *    persists), and
 *  - the clflushopt-reordering/coalescing disagreements (weak
 *    flushes expose intermediate per-line states that epoch
 *    persistency's same-block coalescing hides).
 *
 * Everything here is deterministic: schedules are round-robin plus
 * fixed random seeds, state sets are sorted, and the suite runner
 * writes results into a pre-sized slot per test, so the report is
 * byte-identical for any --jobs value.
 */

#ifndef PERSIM_CONFORMANCE_LITMUS_HH
#define PERSIM_CONFORMANCE_LITMUS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "explore/explore.hh"
#include "persistency/model.hh"

namespace persim {

/**
 * A litmus program: the bounded program plus the cells its crash
 * states are fingerprinted over (ObservedCell lives in
 * explore/explore.hh so the explorer's pruner shares the type).
 * `observed` is filled in during the program's setup phase (addresses
 * exist only once the simulated allocator has run); the allocator is
 * deterministic, so every execution observes the same layout.
 */
struct LitmusProgram
{
    ExploreProgram program;
    std::shared_ptr<std::vector<ObservedCell>> observed;
};

/** Builds a fresh instance of a litmus program (one per execution). */
using LitmusFactory = std::function<LitmusProgram()>;

/** One named litmus test. */
struct LitmusTest
{
    std::string name;
    /** One-line intent note rendered into the report. */
    std::string note;
    LitmusFactory make;
};

/** The hand-written x86-persistency litmus suite (>= 8 tests). */
std::vector<LitmusTest> handwrittenLitmusTests();

/**
 * Seeded random litmus tests: flush-enabled random programs
 * (programs.hh randomProgram with allow_flushes) observing the whole
 * scratch/data/flag working set. Pure function of (count, seed0).
 */
std::vector<LitmusTest> generatedLitmusTests(std::size_t count = 20,
                                             std::uint64_t seed0 = 1);

/** Hand-written followed by generated tests. */
std::vector<LitmusTest> allLitmusTests();

/** Conformance run parameters. */
struct ConformanceOptions
{
    /** Worker threads across tests (results are jobs-invariant). */
    std::uint32_t jobs = 1;

    /** Random-frontier schedules per test, on top of round-robin. */
    std::uint32_t random_schedules = 4;

    /** Consistent-cut budget per (trace, model) replay. */
    std::uint64_t max_cuts = 1ULL << 20;

    /**
     * Enumerate crash states with checkObservedCuts over the test's
     * observed cells instead of checkAllCuts. State sets are
     * guaranteed identical (pinned by tests/conformance); the option
     * exists for that cross-check and for large generated programs.
     */
    bool prune_cuts = false;

    /** Attach the PersistRace detector to every model replay and sum
        race counts into ModelStates::persist_races. */
    bool detect_persist_races = true;
};

/** Reachable crash states of one test under one model. */
struct ModelStates
{
    std::string model; //!< ModelConfig::name().

    /** Sorted canonical states ("cell=value cell=value ..."). */
    std::vector<std::string> states;

    /** Some replay hit max_cuts (the set may be incomplete). */
    bool budget_exhausted = false;

    /** PersistRace reports summed over the schedule set (0 when
        ConformanceOptions::detect_persist_races is off). */
    std::uint64_t persist_races = 0;
};

/** Full result of one litmus test. */
struct LitmusResult
{
    std::string name;
    std::string note;

    /** Distinct executions replayed (duplicates pruned). */
    std::uint64_t schedules = 0;

    /** One entry per model, in conformanceModels() order. */
    std::vector<ModelStates> models;
};

/**
 * The models every test replays under: strict, epoch, and strand at
 * Px86's cache-line atomic granularity (so state sets differ only in
 * ordering semantics, never in persist unit), plus px86 itself.
 */
std::vector<ModelConfig> conformanceModels();

/** Run @p tests; result i corresponds to tests[i]. */
std::vector<LitmusResult>
runConformanceSuite(const std::vector<LitmusTest> &tests,
                    const ConformanceOptions &options = {});

/**
 * Render the canonical divergence report: per test, the reachable
 * state set under each model plus the px86-vs-epoch delta. Byte
 * stable across runs and --jobs values (golden-tested).
 */
std::string
formatDivergenceReport(const std::vector<LitmusResult> &results);

} // namespace persim

#endif // PERSIM_CONFORMANCE_LITMUS_HH
