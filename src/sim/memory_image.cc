#include "sim/memory_image.hh"

#include <cstring>

#include "common/error.hh"

namespace persim {

MemoryImage::Page &
MemoryImage::pageFor(Addr addr)
{
    const std::uint64_t page_num = addr / page_size;
    auto &slot = pages_[page_num];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const MemoryImage::Page *
MemoryImage::pageForIfPresent(Addr addr) const
{
    const std::uint64_t page_num = addr / page_size;
    auto it = pages_.find(page_num);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint64_t
MemoryImage::load(Addr addr, unsigned size) const
{
    PERSIM_REQUIRE(size >= 1 && size <= max_access_size,
                   "load size must be 1..8, got " << size);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        const Page *page = pageForIfPresent(a);
        const std::uint8_t byte = page ? (*page)[a % page_size] : 0;
        value |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    return value;
}

void
MemoryImage::store(Addr addr, unsigned size, std::uint64_t value)
{
    PERSIM_REQUIRE(size >= 1 && size <= max_access_size,
                   "store size must be 1..8, got " << size);
    for (unsigned i = 0; i < size; ++i) {
        const Addr a = addr + i;
        pageFor(a)[a % page_size] =
            static_cast<std::uint8_t>((value >> (8 * i)) & 0xff);
    }
}

MemoryImage
MemoryImage::clone() const
{
    MemoryImage copy;
    for (const auto &[page_num, page] : pages_) {
        auto dup = std::make_unique<Page>(*page);
        copy.pages_.emplace(page_num, std::move(dup));
    }
    return copy;
}

void
MemoryImage::readBytes(void *dst, Addr src, std::size_t n) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    for (std::size_t i = 0; i < n; ++i) {
        const Addr a = src + i;
        const Page *page = pageForIfPresent(a);
        out[i] = page ? (*page)[a % page_size] : 0;
    }
}

void
MemoryImage::writeBytes(Addr dst, const void *src, std::size_t n)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    for (std::size_t i = 0; i < n; ++i) {
        const Addr a = dst + i;
        pageFor(a)[a % page_size] = in[i];
    }
}

} // namespace persim
