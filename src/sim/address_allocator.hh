/**
 * @file
 * Simple region allocator for the simulated address space.
 *
 * One instance manages one region (volatile or persistent). The
 * allocator is a bump pointer with a first-fit free list; freed
 * blocks are reusable, which matters for exercising strong persist
 * atomicity on recycled persistent addresses. All allocations are
 * 8-byte aligned (or more, on request).
 *
 * The allocator is not internally synchronized: in the execution
 * engine, allocation happens while holding the scheduling token, so
 * calls are already serialized.
 */

#ifndef PERSIM_SIM_ADDRESS_ALLOCATOR_HH
#define PERSIM_SIM_ADDRESS_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/types.hh"

namespace persim {

/** First-fit region allocator over [base, base + capacity). */
class AddressAllocator
{
  public:
    /**
     * @param base First address of the managed region.
     * @param capacity Region size in bytes.
     */
    AddressAllocator(Addr base, std::uint64_t capacity);

    /**
     * Allocate @p size bytes aligned to @p align (power of two,
     * >= 8). Fatals when the region is exhausted.
     */
    Addr allocate(std::uint64_t size, std::uint64_t align = 8);

    /** Release a block previously returned by allocate. */
    void free(Addr addr);

    /** Size of the live block at @p addr; fatals if not allocated. */
    std::uint64_t blockSize(Addr addr) const;

    /** True iff @p addr is the base of a live allocation. */
    bool isAllocated(Addr addr) const;

    /** Bytes currently allocated. */
    std::uint64_t bytesLive() const { return bytes_live_; }

    /** Number of live allocations. */
    std::size_t liveBlocks() const { return live_.size(); }

    Addr base() const { return base_; }
    std::uint64_t capacity() const { return capacity_; }

  private:
    /** Merge a freed range into the free map, coalescing neighbors. */
    void insertFreeRange(Addr addr, std::uint64_t size);

    Addr base_;
    std::uint64_t capacity_;
    /** Free ranges keyed by start address, value = length. */
    std::map<Addr, std::uint64_t> free_ranges_;
    /** Live allocations keyed by start address, value = length. */
    std::unordered_map<Addr, std::uint64_t> live_;
    std::uint64_t bytes_live_ = 0;
};

} // namespace persim

#endif // PERSIM_SIM_ADDRESS_ALLOCATOR_HH
