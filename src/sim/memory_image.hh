/**
 * @file
 * Sparse simulated memory.
 *
 * MemoryImage backs the simulated flat address space with 4 KiB pages
 * allocated on demand. Values are stored little-endian so that a
 * multi-byte load returns what a multi-byte store wrote, and so that
 * recovery analyses can reconstruct images byte-for-byte.
 */

#ifndef PERSIM_SIM_MEMORY_IMAGE_HH
#define PERSIM_SIM_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace persim {

/** Byte-addressable sparse memory with on-demand page allocation. */
class MemoryImage
{
  public:
    static constexpr std::uint64_t page_size = 4096;

    /** Read @p size (1..8) bytes at @p addr as a little-endian value. */
    std::uint64_t load(Addr addr, unsigned size) const;

    /** Write the low @p size (1..8) bytes of @p value at @p addr. */
    void store(Addr addr, unsigned size, std::uint64_t value);

    /** Copy @p n raw bytes out of simulated memory. */
    void readBytes(void *dst, Addr src, std::size_t n) const;

    /** Copy @p n raw bytes into simulated memory. */
    void writeBytes(Addr dst, const void *src, std::size_t n);

    /** Number of pages materialized so far. */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Deep copy. MemoryImage is deliberately move-only (pages are
     * uniquely owned); copy-then-perturb analyses — fault models,
     * corruption fuzzers — clone explicitly instead.
     */
    MemoryImage clone() const;

    /** Drop all contents. */
    void clear() { pages_.clear(); }

  private:
    using Page = std::array<std::uint8_t, page_size>;

    /** Page containing @p addr, materializing it zero-filled if new. */
    Page &pageFor(Addr addr);

    /** Page containing @p addr, or nullptr if never written. */
    const Page *pageForIfPresent(Addr addr) const;

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

} // namespace persim

#endif // PERSIM_SIM_MEMORY_IMAGE_HH
