/**
 * @file
 * The persim execution engine.
 *
 * ExecutionEngine runs a set of workload functions as simulated
 * threads over a shared simulated memory, serializing one traced
 * memory event at a time ("analysis atomicity", as the paper's
 * PIN-based tracer achieves with its bank of address locks). Because
 * at most one event executes at any instant and each thread's events
 * occur in program order, the emitted global order is a legal
 * sequentially consistent execution by construction.
 *
 * Workloads are ordinary C++ functions taking a ThreadCtx and using
 * its traced memory API: load/store/rmw, bulk copies (split into
 * <= 8-byte word accesses), persist and strand barriers, persistent
 * and volatile allocation, and operation markers. Every event is
 * pushed to a TraceSink; persistency analyses are sinks, so traces
 * need not be materialized.
 *
 * Interleaving is controlled by a SchedulingPolicy and is exactly
 * reproducible from the engine seed.
 */

#ifndef PERSIM_SIM_ENGINE_HH
#define PERSIM_SIM_ENGINE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hh"
#include "memtrace/event.hh"
#include "memtrace/sink.hh"
#include "sim/address_allocator.hh"
#include "sim/memory_image.hh"
#include "sim/scheduler.hh"

namespace persim {

class ExecutionEngine;

/**
 * Memory consistency model the engine executes under.
 *
 * SC serializes every access in issue order (the default; all
 * persistency models in the paper are defined over SC). TSO gives
 * each thread a FIFO store buffer: stores become visible to other
 * threads (and enter the trace) when they drain — on buffer overflow,
 * before any RMW, at a fence(), or at thread exit — while the issuing
 * thread forwards from its own buffer. Persist and strand barriers
 * deliberately do NOT drain: persistency and consistency barriers are
 * decoupled, which is exactly the hazard of paper Section 4.3 /
 * Figure 1 (a store may become visible, and thus persist, on the far
 * side of its persist barrier).
 */
enum class ConsistencyModel : std::uint8_t {
    SC,
    TSO,
};

/** Engine construction parameters. */
struct EngineConfig
{
    /** Seed for the scheduler (and anything else that needs RNG). */
    std::uint64_t seed = 1;

    /** Interleaving policy. */
    SchedulerKind scheduler = SchedulerKind::Random;

    /**
     * Events per timeslice: the fixed quantum for round-robin, the
     * mean of the geometric quantum for random scheduling.
     */
    std::uint64_t quantum = 8;

    /** Abort the execution after this many events (0 = unlimited). */
    std::uint64_t max_events = 0;

    /** Capacity of the volatile address region. */
    std::uint64_t volatile_capacity = 1ULL << 32;

    /** Capacity of the persistent address region. */
    std::uint64_t persistent_capacity = 1ULL << 32;

    /** Memory consistency model to execute under. */
    ConsistencyModel consistency = ConsistencyModel::SC;

    /** TSO store buffer entries per thread (drain-on-overflow). */
    std::uint32_t store_buffer_depth = 8;

    /**
     * TSO background drain interval: hardware store buffers drain
     * *eventually*, not only at synchronizing instructions (a spinning
     * reader must eventually observe a peer's buffered store, or MCS
     * handoff would deadlock). The oldest buffered store drains after
     * the owning thread executes this many events with a non-empty
     * buffer.
     */
    std::uint32_t drain_interval = 16;
};

/**
 * Per-thread handle to the engine: the traced memory API.
 *
 * A ThreadCtx is only valid on the simulated thread it was created
 * for; all of its operations are scheduling points.
 */
class ThreadCtx
{
  public:
    /** Simulated thread id (dense from 0). */
    ThreadId id() const { return tid_; }

    /** The engine this context belongs to. */
    ExecutionEngine &engine() { return *engine_; }

    /** @name Traced accesses (at most 8 bytes each) */
    ///@{
    /** Read @p size bytes at @p addr. */
    std::uint64_t load(Addr addr, unsigned size = 8);

    /** Write the low @p size bytes of @p value at @p addr. */
    void store(Addr addr, std::uint64_t value, unsigned size = 8);

    /** Atomically write @p value and return the previous value. */
    std::uint64_t rmwExchange(Addr addr, std::uint64_t value,
                              unsigned size = 8);

    /**
     * Atomic compare-and-swap; writes @p desired iff the current
     * value equals @p expected.
     * @return The previous value (== expected on success).
     */
    std::uint64_t rmwCas(Addr addr, std::uint64_t expected,
                         std::uint64_t desired, unsigned size = 8);

    /** Atomically add @p delta and return the previous value. */
    std::uint64_t rmwFetchAdd(Addr addr, std::uint64_t delta,
                              unsigned size = 8);
    ///@}

    /** @name Bulk traced copies (split into word accesses) */
    ///@{
    /** Copy @p n host bytes into simulated memory as traced stores. */
    void copyIn(Addr dst, const void *src, std::size_t n);

    /** Copy @p n simulated bytes to host memory as traced loads. */
    void copyOut(void *dst, Addr src, std::size_t n);

    /** Traced load+store copy within simulated memory. */
    void copySim(Addr dst, Addr src, std::size_t n);
    ///@}

    /** @name Persistency annotations */
    ///@{
    /** Epoch boundary: orders persists before against persists after. */
    void persistBarrier();

    /** Begin a new persist strand (strand persistency). */
    void newStrand();

    /** Drain: synchronize instruction execution with persistent state. */
    void persistSync();
    ///@}

    /**
     * Consistency fence: under TSO, drain this thread's store buffer
     * (making all its stores visible) and mark the point in the
     * trace. A no-op event under SC. Carries no persistency
     * semantics — sfence()/mfence() are the persistency fences.
     */
    void fence();

    /** @name Px86 flush / fence instructions
     *
     * The x86 persistent-memory primitives, traced as first-class
     * events for the Px86 timing model (src/persistency/). Under TSO
     * execution the drain behavior mirrors the ISA's ordering rules:
     * clflush, sfence, and mfence drain the whole store buffer (they
     * are ordered against all older stores), while clflushopt/clwb
     * drain only up to the newest buffered store of the flushed cache
     * line — so a weak flush can appear in the trace *before* an
     * older store to a different line, exposing the real clflushopt
     * reordering to the analyses. Under SC the event is emitted
     * directly (stores are already globally visible).
     */
    ///@{
    /** Flush @p addr's cache line; strongly ordered (clflush). */
    void clflush(Addr addr);

    /** Flush @p addr's cache line; weakly ordered (clflushopt). */
    void clflushopt(Addr addr);

    /** Write back @p addr's cache line without evicting (clwb). */
    void clwb(Addr addr);

    /** Store fence: orders weak flushes with stores (sfence). */
    void sfence();

    /** Full fence: same persistency semantics as sfence (mfence). */
    void mfence();
    ///@}

    /** Emit an operation marker (op begin/end, persist roles, ...). */
    void marker(MarkerCode code, std::uint64_t arg = 0);

    /** @name Allocation */
    ///@{
    /** Allocate persistent memory; appears in the trace as PMalloc. */
    Addr pmalloc(std::uint64_t size, std::uint64_t align = 8);

    /** Free persistent memory; appears in the trace as PFree. */
    void pfree(Addr addr);

    /** Allocate volatile memory (not recorded as a trace event). */
    Addr vmalloc(std::uint64_t size, std::uint64_t align = 8);

    /** Free volatile memory. */
    void vfree(Addr addr);
    ///@}

  private:
    friend class ExecutionEngine;

    ThreadCtx(ExecutionEngine *engine, ThreadId tid)
        : engine_(engine), tid_(tid)
    {}

    ExecutionEngine *engine_;
    ThreadId tid_;
};

/** Runs simulated multithreaded workloads and emits their trace. */
class ExecutionEngine
{
  public:
    using WorkerFn = std::function<void(ThreadCtx &)>;

    /**
     * @param config Engine parameters.
     * @param sink Destination for trace events (may be nullptr to
     *             discard; analyses are normally attached here).
     *             Not owned.
     */
    explicit ExecutionEngine(const EngineConfig &config,
                             TraceSink *sink = nullptr);

    /**
     * As above, but interleave with a caller-supplied policy instead
     * of constructing one from the config (the schedule-exploration
     * hook: src/explore/ injects a ReplayPolicy here and reads its
     * recorded decisions back after the run).
     * @param policy Not owned; must outlive the engine.
     */
    ExecutionEngine(const EngineConfig &config, TraceSink *sink,
                    SchedulingPolicy *policy);

    ExecutionEngine(const ExecutionEngine &) = delete;
    ExecutionEngine &operator=(const ExecutionEngine &) = delete;

    /**
     * Run @p fn inline as thread 0, before the workers. Used for
     * workload setup (allocating and initializing shared structures);
     * its events appear in the trace as thread 0.
     */
    void runSetup(const WorkerFn &fn);

    /**
     * Run the workers to completion, one simulated thread each
     * (thread ids 0..N-1), then finish the sink. May be called once.
     * Rethrows the first worker exception, if any.
     */
    void run(const std::vector<WorkerFn> &workers);

    /** Total events emitted so far. */
    std::uint64_t eventCount() const { return next_seq_; }

    /** Direct (untraced) read of simulated memory, for inspection. */
    std::uint64_t debugLoad(Addr addr, unsigned size = 8) const;

    /** Direct (untraced) bulk read of simulated memory. */
    void debugReadBytes(void *dst, Addr src, std::size_t n) const;

    /** The simulated memory image. */
    const MemoryImage &memory() const { return image_; }

  private:
    friend class ThreadCtx;

    /** Exception used to unwind workers when the engine aborts. */
    struct Aborted {};

    struct ThreadSlot
    {
        std::condition_variable cv;
        bool done = false;
        std::exception_ptr error;
    };

    /**
     * Acquire the right to execute one event on thread @p tid,
     * blocking until the scheduler grants it. Under TSO, also ticks
     * the thread's background store-buffer drain.
     */
    void schedulePoint(ThreadId tid);

    /** Token-acquisition part of schedulePoint. */
    void schedulePointInner(ThreadId tid);

    /** Age the thread's store buffer; drain the oldest entry when the
        drain interval elapses. */
    void backgroundDrain(ThreadId tid);

    /** Release the token when thread @p tid finishes or unwinds. */
    void finishThread(ThreadId tid);

    /** Build and emit an event (caller holds the token). */
    void emit(ThreadId tid, EventKind kind, Addr addr, unsigned size,
              std::uint64_t value, std::uint16_t marker = 0);

    /** A TSO store waiting in a thread's store buffer. */
    struct BufferedStore
    {
        Addr addr = 0;
        std::uint32_t size = 0;
        std::uint64_t value = 0;
    };

    /** This thread's store buffer (TSO only), created on demand. */
    std::deque<BufferedStore> &storeBuffer(ThreadId tid);

    /** Drain the oldest buffered store of @p tid (token held). */
    void drainOne(ThreadId tid);

    /** Drain every buffered store of @p tid (token held). */
    void drainAll(ThreadId tid);

    /** Drain @p tid's buffer up to and including the newest store
        that overlaps @p addr's cache line (FIFO order; a no-op when
        no buffered store touches the line). */
    void drainLine(ThreadId tid, Addr addr);

    /** Body of one simulated thread. */
    void workerBody(ThreadId tid, const WorkerFn &fn);

    EngineConfig config_;
    TraceSink *sink_;
    MemoryImage image_;
    AddressAllocator valloc_;
    AddressAllocator palloc_;
    std::unique_ptr<SchedulingPolicy> owned_policy_;
    SchedulingPolicy *policy_;

    SeqNum next_seq_ = 0;
    bool ran_ = false;
    bool in_setup_ = false;
    bool serial_ = true;

    std::mutex mutex_;
    ThreadId token_ = invalid_thread;
    std::uint64_t quantum_left_ = 0;
    bool aborting_ = false;
    std::vector<ThreadId> runnable_;
    std::vector<std::unique_ptr<ThreadSlot>> slots_;
    std::vector<std::deque<BufferedStore>> store_buffers_;
    std::vector<std::uint32_t> drain_ticks_;
};

} // namespace persim

#endif // PERSIM_SIM_ENGINE_HH
