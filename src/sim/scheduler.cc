#include "sim/scheduler.hh"

#include <algorithm>

#include "common/error.hh"

namespace persim {

RoundRobinPolicy::RoundRobinPolicy(std::uint64_t quantum)
    : quantum_(quantum)
{
    PERSIM_REQUIRE(quantum >= 1, "quantum must be at least 1");
}

ScheduleDecision
RoundRobinPolicy::pick(const std::vector<ThreadId> &runnable,
                       ThreadId current)
{
    PERSIM_ASSERT(!runnable.empty(), "pick with no runnable threads");
    // The first runnable thread with id greater than current, wrapping.
    auto it = std::upper_bound(runnable.begin(), runnable.end(), current);
    if (current == invalid_thread || it == runnable.end())
        it = runnable.begin();
    return {*it, quantum_};
}

RandomPolicy::RandomPolicy(std::uint64_t seed, std::uint64_t quantum_mean)
    : rng_(seed), quantum_mean_(quantum_mean)
{
    PERSIM_REQUIRE(quantum_mean >= 1, "quantum mean must be at least 1");
}

ScheduleDecision
RandomPolicy::pick(const std::vector<ThreadId> &runnable, ThreadId current)
{
    (void)current;
    PERSIM_ASSERT(!runnable.empty(), "pick with no runnable threads");
    const auto idx =
        static_cast<std::size_t>(rng_.nextBounded(runnable.size()));
    std::uint64_t quantum = 1;
    if (quantum_mean_ > 1) {
        // Geometric with mean quantum_mean_, at least 1.
        const double u = rng_.nextExponential(
            static_cast<double>(quantum_mean_));
        quantum = std::max<std::uint64_t>(1,
            static_cast<std::uint64_t>(u));
    }
    return {runnable[idx], quantum};
}

ReplayPolicy::ReplayPolicy(std::vector<std::uint32_t> prefix,
                           FrontierKind frontier, std::uint64_t seed)
    : prefix_(std::move(prefix)), frontier_(frontier), rng_(seed)
{
}

ScheduleDecision
ReplayPolicy::pick(const std::vector<ThreadId> &runnable, ThreadId current)
{
    PERSIM_ASSERT(!runnable.empty(), "pick with no runnable threads");
    const auto arity = static_cast<std::uint32_t>(runnable.size());
    std::uint32_t index;
    if (next_ < prefix_.size()) {
        index = prefix_[next_++];
        if (index >= arity) {
            diverged_ = true;
            index = arity - 1;
        }
    } else if (frontier_ == FrontierKind::Random) {
        index = static_cast<std::uint32_t>(rng_.nextBounded(arity));
    } else {
        // Round-robin: the first runnable thread past `current`,
        // wrapping; the start-of-run and thread-exit picks (current ==
        // invalid_thread) land on runnable[0].
        auto it = std::upper_bound(runnable.begin(), runnable.end(),
                                   current);
        if (current == invalid_thread || it == runnable.end())
            it = runnable.begin();
        index = static_cast<std::uint32_t>(it - runnable.begin());
    }
    decisions_.push_back(BranchPoint{index, arity});
    return {runnable[index], 1};
}

std::unique_ptr<SchedulingPolicy>
makePolicy(SchedulerKind kind, std::uint64_t seed, std::uint64_t quantum)
{
    switch (kind) {
      case SchedulerKind::RoundRobin:
        return std::make_unique<RoundRobinPolicy>(quantum);
      case SchedulerKind::Random:
        return std::make_unique<RandomPolicy>(seed, quantum);
    }
    PERSIM_FATAL("unknown scheduler kind");
}

} // namespace persim
