/**
 * @file
 * Interleaving policies for the execution engine.
 *
 * The engine serializes simulated threads: exactly one thread runs at
 * a time, and before each traced memory event the policy may hand the
 * token to another runnable thread. Policies therefore fully
 * determine the interleaving (and, with a fixed seed, make the whole
 * execution reproducible).
 *
 * Policies also choose a quantum: the number of events the selected
 * thread may execute before the next scheduling decision. Quanta
 * model preemptive timeslices and amortize handoff cost; a quantum of
 * one forces a decision at every event (useful for exhaustive
 * interleaving tests).
 */

#ifndef PERSIM_SIM_SCHEDULER_HH
#define PERSIM_SIM_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace persim {

/** A scheduling decision: who runs next and for how many events. */
struct ScheduleDecision
{
    ThreadId thread = invalid_thread;
    std::uint64_t quantum = 1;
};

/** Abstract interleaving policy. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /**
     * Pick the next thread from @p runnable (nonempty, sorted by id).
     * @param current The thread whose quantum just expired, or
     *                invalid_thread at the start of execution or when
     *                the current thread finished.
     */
    virtual ScheduleDecision pick(const std::vector<ThreadId> &runnable,
                                  ThreadId current) = 0;
};

/** Cycles through runnable threads in id order with a fixed quantum. */
class RoundRobinPolicy : public SchedulingPolicy
{
  public:
    explicit RoundRobinPolicy(std::uint64_t quantum = 1);

    ScheduleDecision pick(const std::vector<ThreadId> &runnable,
                          ThreadId current) override;

  private:
    std::uint64_t quantum_;
};

/**
 * Uniform random choice among runnable threads with a geometrically
 * distributed quantum (mean quantum_mean). This approximates
 * preemptive timeslicing with random preemption points.
 */
class RandomPolicy : public SchedulingPolicy
{
  public:
    RandomPolicy(std::uint64_t seed, std::uint64_t quantum_mean = 1);

    ScheduleDecision pick(const std::vector<ThreadId> &runnable,
                          ThreadId current) override;

  private:
    Rng rng_;
    std::uint64_t quantum_mean_;
};

/**
 * One recorded scheduling decision: which index into the (sorted)
 * runnable set was chosen and how many alternatives existed at that
 * point. A complete execution is identified by its sequence of chosen
 * indices; `arity` tells an explorer which untried siblings remain.
 */
struct BranchPoint
{
    std::uint32_t chosen = 0;
    std::uint32_t arity = 1;
};

/** Strategy ReplayPolicy uses once its decision prefix is consumed. */
enum class FrontierKind : std::uint8_t {
    /**
     * Fair deterministic default: rotate to the next runnable thread
     * after the current one (round-robin, quantum 1). Fairness
     * matters: always picking runnable[0] can spin a lock waiter
     * forever and livelock the execution.
     */
    RoundRobin,
    /** Seeded uniform choice (sampling fallback), quantum 1. */
    Random,
};

/**
 * Deterministic schedule replay (the model checker's core primitive).
 *
 * Follows a recorded prefix of decision indices, then hands control
 * to the frontier strategy; every decision (replayed or fresh) is
 * recorded with its branching factor. Quantum is always 1 so each
 * traced event is a potential branch point. Identical prefixes over a
 * deterministic workload reproduce byte-identical traces.
 */
class ReplayPolicy : public SchedulingPolicy
{
  public:
    explicit ReplayPolicy(std::vector<std::uint32_t> prefix = {},
                          FrontierKind frontier = FrontierKind::RoundRobin,
                          std::uint64_t seed = 1);

    ScheduleDecision pick(const std::vector<ThreadId> &runnable,
                          ThreadId current) override;

    /** Every decision taken, in order, with its branching factor. */
    const std::vector<BranchPoint> &decisions() const { return decisions_; }

    /**
     * True when a prefix entry exceeded the runnable set at its
     * decision (it was clamped): the prefix was recorded against a
     * different execution shape and the replay is not faithful.
     */
    bool diverged() const { return diverged_; }

  private:
    std::vector<std::uint32_t> prefix_;
    std::size_t next_ = 0;
    FrontierKind frontier_;
    Rng rng_;
    std::vector<BranchPoint> decisions_;
    bool diverged_ = false;
};

/** How the engine should interleave threads. */
enum class SchedulerKind {
    RoundRobin,
    Random,
};

/** Construct a policy from a kind, seed, and quantum parameter. */
std::unique_ptr<SchedulingPolicy>
makePolicy(SchedulerKind kind, std::uint64_t seed, std::uint64_t quantum);

} // namespace persim

#endif // PERSIM_SIM_SCHEDULER_HH
