/**
 * @file
 * Interleaving policies for the execution engine.
 *
 * The engine serializes simulated threads: exactly one thread runs at
 * a time, and before each traced memory event the policy may hand the
 * token to another runnable thread. Policies therefore fully
 * determine the interleaving (and, with a fixed seed, make the whole
 * execution reproducible).
 *
 * Policies also choose a quantum: the number of events the selected
 * thread may execute before the next scheduling decision. Quanta
 * model preemptive timeslices and amortize handoff cost; a quantum of
 * one forces a decision at every event (useful for exhaustive
 * interleaving tests).
 */

#ifndef PERSIM_SIM_SCHEDULER_HH
#define PERSIM_SIM_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace persim {

/** A scheduling decision: who runs next and for how many events. */
struct ScheduleDecision
{
    ThreadId thread = invalid_thread;
    std::uint64_t quantum = 1;
};

/** Abstract interleaving policy. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /**
     * Pick the next thread from @p runnable (nonempty, sorted by id).
     * @param current The thread whose quantum just expired, or
     *                invalid_thread at the start of execution or when
     *                the current thread finished.
     */
    virtual ScheduleDecision pick(const std::vector<ThreadId> &runnable,
                                  ThreadId current) = 0;
};

/** Cycles through runnable threads in id order with a fixed quantum. */
class RoundRobinPolicy : public SchedulingPolicy
{
  public:
    explicit RoundRobinPolicy(std::uint64_t quantum = 1);

    ScheduleDecision pick(const std::vector<ThreadId> &runnable,
                          ThreadId current) override;

  private:
    std::uint64_t quantum_;
};

/**
 * Uniform random choice among runnable threads with a geometrically
 * distributed quantum (mean quantum_mean). This approximates
 * preemptive timeslicing with random preemption points.
 */
class RandomPolicy : public SchedulingPolicy
{
  public:
    RandomPolicy(std::uint64_t seed, std::uint64_t quantum_mean = 1);

    ScheduleDecision pick(const std::vector<ThreadId> &runnable,
                          ThreadId current) override;

  private:
    Rng rng_;
    std::uint64_t quantum_mean_;
};

/** How the engine should interleave threads. */
enum class SchedulerKind {
    RoundRobin,
    Random,
};

/** Construct a policy from a kind, seed, and quantum parameter. */
std::unique_ptr<SchedulingPolicy>
makePolicy(SchedulerKind kind, std::uint64_t seed, std::uint64_t quantum);

} // namespace persim

#endif // PERSIM_SIM_SCHEDULER_HH
