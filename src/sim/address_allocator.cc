#include "sim/address_allocator.hh"

#include "common/bitops.hh"
#include "common/error.hh"

namespace persim {

AddressAllocator::AddressAllocator(Addr base, std::uint64_t capacity)
    : base_(base), capacity_(capacity)
{
    PERSIM_REQUIRE(isAligned(base, 8), "region base must be 8-byte aligned");
    PERSIM_REQUIRE(capacity >= 8, "region too small");
    free_ranges_[base_] = capacity_;
}

Addr
AddressAllocator::allocate(std::uint64_t size, std::uint64_t align)
{
    PERSIM_REQUIRE(size > 0, "cannot allocate zero bytes");
    PERSIM_REQUIRE(isPowerOfTwo(align) && align >= 8,
                   "alignment must be a power of two >= 8");
    const std::uint64_t rounded = alignUp(size, 8);

    for (auto it = free_ranges_.begin(); it != free_ranges_.end(); ++it) {
        const Addr range_start = it->first;
        const std::uint64_t range_len = it->second;
        const Addr aligned_start = alignUp(range_start, align);
        const std::uint64_t pad = aligned_start - range_start;
        if (range_len < pad || range_len - pad < rounded)
            continue;

        // Carve [aligned_start, aligned_start + rounded) out of the
        // range, returning any leading pad and trailing remainder to
        // the free map.
        free_ranges_.erase(it);
        if (pad > 0)
            free_ranges_[range_start] = pad;
        const std::uint64_t tail = range_len - pad - rounded;
        if (tail > 0)
            free_ranges_[aligned_start + rounded] = tail;

        live_[aligned_start] = rounded;
        bytes_live_ += rounded;
        return aligned_start;
    }
    PERSIM_FATAL("address region exhausted: requested " << rounded
                 << " bytes from region at 0x" << std::hex << base_);
}

void
AddressAllocator::free(Addr addr)
{
    auto it = live_.find(addr);
    PERSIM_REQUIRE(it != live_.end(),
                   "free of unallocated address 0x" << std::hex << addr);
    const std::uint64_t size = it->second;
    live_.erase(it);
    bytes_live_ -= size;
    insertFreeRange(addr, size);
}

void
AddressAllocator::insertFreeRange(Addr addr, std::uint64_t size)
{
    // Find the first free range at or after addr, then try to merge
    // with the predecessor and successor.
    auto next = free_ranges_.lower_bound(addr);
    if (next != free_ranges_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == addr) {
            addr = prev->first;
            size += prev->second;
            free_ranges_.erase(prev);
        }
    }
    if (next != free_ranges_.end() && addr + size == next->first) {
        size += next->second;
        free_ranges_.erase(next);
    }
    free_ranges_[addr] = size;
}

std::uint64_t
AddressAllocator::blockSize(Addr addr) const
{
    auto it = live_.find(addr);
    PERSIM_REQUIRE(it != live_.end(),
                   "blockSize of unallocated address 0x" << std::hex
                   << addr);
    return it->second;
}

bool
AddressAllocator::isAllocated(Addr addr) const
{
    return live_.find(addr) != live_.end();
}

} // namespace persim
