#include "sim/engine.hh"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/error.hh"

namespace persim {

ExecutionEngine::ExecutionEngine(const EngineConfig &config, TraceSink *sink)
    : config_(config), sink_(sink),
      valloc_(volatile_base, config.volatile_capacity),
      palloc_(persistent_base, config.persistent_capacity),
      owned_policy_(makePolicy(config.scheduler, config.seed,
                               config.quantum)),
      policy_(owned_policy_.get())
{
    PERSIM_REQUIRE(volatile_base + config.volatile_capacity
                   <= persistent_base,
                   "volatile region overlaps the persistent region");
}

ExecutionEngine::ExecutionEngine(const EngineConfig &config, TraceSink *sink,
                                 SchedulingPolicy *policy)
    : config_(config), sink_(sink),
      valloc_(volatile_base, config.volatile_capacity),
      palloc_(persistent_base, config.persistent_capacity),
      policy_(policy)
{
    PERSIM_REQUIRE(policy != nullptr, "injected policy must not be null");
    PERSIM_REQUIRE(volatile_base + config.volatile_capacity
                   <= persistent_base,
                   "volatile region overlaps the persistent region");
}

void
ExecutionEngine::runSetup(const WorkerFn &fn)
{
    PERSIM_REQUIRE(!ran_, "runSetup must precede run");
    in_setup_ = true;
    ThreadCtx ctx(this, 0);
    try {
        fn(ctx);
        // Setup results must be visible to every worker.
        if (config_.consistency == ConsistencyModel::TSO)
            drainAll(0);
    } catch (...) {
        in_setup_ = false;
        throw;
    }
    in_setup_ = false;
}

void
ExecutionEngine::run(const std::vector<WorkerFn> &workers)
{
    PERSIM_REQUIRE(!ran_, "an ExecutionEngine can only run once");
    ran_ = true;

    if (workers.empty()) {
        if (sink_)
            sink_->onFinish();
        return;
    }

    const auto n = static_cast<ThreadId>(workers.size());
    serial_ = (n == 1);
    slots_.clear();
    for (ThreadId t = 0; t < n; ++t)
        slots_.push_back(std::make_unique<ThreadSlot>());
    runnable_.clear();
    for (ThreadId t = 0; t < n; ++t)
        runnable_.push_back(t);

    if (serial_) {
        workerBody(0, workers[0]);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(n);
        for (ThreadId t = 0; t < n; ++t)
            threads.emplace_back([this, t, &workers] {
                workerBody(t, workers[t]);
            });

        {
            std::lock_guard<std::mutex> guard(mutex_);
            const ScheduleDecision d =
                policy_->pick(runnable_, invalid_thread);
            token_ = d.thread;
            quantum_left_ = d.quantum;
            slots_[d.thread]->cv.notify_one();
        }
        for (auto &thread : threads)
            thread.join();
    }

    for (const auto &slot : slots_) {
        if (slot->error)
            std::rethrow_exception(slot->error);
    }
    if (sink_)
        sink_->onFinish();
}

void
ExecutionEngine::workerBody(ThreadId tid, const WorkerFn &fn)
{
    bool clean_abort = false;
    try {
        ThreadCtx ctx(this, tid);
        schedulePoint(tid);
        emit(tid, EventKind::ThreadStart, 0, 0, 0);
        fn(ctx);
        schedulePoint(tid);
        if (config_.consistency == ConsistencyModel::TSO)
            drainAll(tid);
        emit(tid, EventKind::ThreadEnd, 0, 0, 0);
    } catch (const Aborted &) {
        clean_abort = true;
    } catch (...) {
        slots_[tid]->error = std::current_exception();
    }
    (void)clean_abort;
    finishThread(tid);
}

void
ExecutionEngine::schedulePoint(ThreadId tid)
{
    schedulePointInner(tid);
    // The token is held here: safe to age the store buffer.
    if (config_.consistency == ConsistencyModel::TSO)
        backgroundDrain(tid);
}

void
ExecutionEngine::backgroundDrain(ThreadId tid)
{
    auto &buffer = storeBuffer(tid);
    if (tid >= drain_ticks_.size())
        drain_ticks_.resize(tid + 1, 0);
    if (buffer.empty()) {
        drain_ticks_[tid] = 0;
        return;
    }
    if (++drain_ticks_[tid] >= config_.drain_interval) {
        drain_ticks_[tid] = 0;
        drainOne(tid);
    }
}

void
ExecutionEngine::schedulePointInner(ThreadId tid)
{
    if (in_setup_ || serial_)
        return;

    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (aborting_)
            throw Aborted{};
        if (token_ != tid) {
            slots_[tid]->cv.wait(lock, [this, tid] {
                return token_ == tid || aborting_;
            });
            continue;
        }
        if (quantum_left_ > 0) {
            --quantum_left_;
            return;
        }
        const ScheduleDecision d = policy_->pick(runnable_, tid);
        quantum_left_ = d.quantum;
        if (d.thread != tid) {
            token_ = d.thread;
            slots_[d.thread]->cv.notify_one();
        }
        // Loop: either we still hold the token (and now have quantum)
        // or we wait to be granted again.
    }
}

void
ExecutionEngine::finishThread(ThreadId tid)
{
    if (in_setup_ || serial_)
        return;

    std::lock_guard<std::mutex> guard(mutex_);
    runnable_.erase(std::remove(runnable_.begin(), runnable_.end(), tid),
                    runnable_.end());
    slots_[tid]->done = true;
    if (slots_[tid]->error && !aborting_) {
        // Unwind every other thread so run() can join and report.
        aborting_ = true;
        for (auto &slot : slots_)
            slot->cv.notify_one();
        return;
    }
    if (token_ == tid) {
        if (!aborting_ && !runnable_.empty()) {
            const ScheduleDecision d =
                policy_->pick(runnable_, invalid_thread);
            token_ = d.thread;
            quantum_left_ = d.quantum;
            slots_[d.thread]->cv.notify_one();
        } else {
            token_ = invalid_thread;
        }
    }
}

void
ExecutionEngine::emit(ThreadId tid, EventKind kind, Addr addr,
                      unsigned size, std::uint64_t value,
                      std::uint16_t marker)
{
    if (config_.max_events > 0 && next_seq_ >= config_.max_events) {
        if (!(in_setup_ || serial_)) {
            std::lock_guard<std::mutex> guard(mutex_);
            aborting_ = true;
            for (auto &slot : slots_)
                slot->cv.notify_one();
        }
        PERSIM_FATAL("execution exceeded max_events="
                     << config_.max_events
                     << " (possible livelock in the workload)");
    }

    TraceEvent event;
    event.seq = next_seq_++;
    event.addr = addr;
    event.value = value;
    event.thread = tid;
    event.kind = kind;
    event.size = static_cast<std::uint8_t>(size);
    event.marker = marker;
    if (sink_)
        sink_->onEvent(event);
}

std::uint64_t
ExecutionEngine::debugLoad(Addr addr, unsigned size) const
{
    return image_.load(addr, size);
}

void
ExecutionEngine::debugReadBytes(void *dst, Addr src, std::size_t n) const
{
    image_.readBytes(dst, src, n);
}

std::deque<ExecutionEngine::BufferedStore> &
ExecutionEngine::storeBuffer(ThreadId tid)
{
    if (tid >= store_buffers_.size())
        store_buffers_.resize(tid + 1);
    return store_buffers_[tid];
}

void
ExecutionEngine::drainOne(ThreadId tid)
{
    auto &buffer = storeBuffer(tid);
    PERSIM_ASSERT(!buffer.empty(), "drain of an empty store buffer");
    const BufferedStore entry = buffer.front();
    buffer.pop_front();
    image_.store(entry.addr, entry.size, entry.value);
    emit(tid, EventKind::Store, entry.addr, entry.size, entry.value);
}

void
ExecutionEngine::drainAll(ThreadId tid)
{
    auto &buffer = storeBuffer(tid);
    while (!buffer.empty())
        drainOne(tid);
}

void
ExecutionEngine::drainLine(ThreadId tid, Addr addr)
{
    const std::uint64_t line = addr / cache_line_bytes;
    auto &buffer = storeBuffer(tid);
    // Find the newest buffered store of the line; everything up to it
    // must drain first (the buffer is FIFO), which is always legal —
    // the background drain may retire those stores at any time.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
        const BufferedStore &entry = buffer[i];
        if (entry.addr / cache_line_bytes == line ||
            (entry.addr + entry.size - 1) / cache_line_bytes == line)
            keep = i + 1;
    }
    for (std::size_t i = 0; i < keep; ++i)
        drainOne(tid);
}

std::uint64_t
ThreadCtx::load(Addr addr, unsigned size)
{
    engine_->schedulePoint(tid_);
    if (engine_->config_.consistency == ConsistencyModel::TSO) {
        auto &buffer = engine_->storeBuffer(tid_);
        // Store-to-load forwarding: the newest buffered store fully
        // covering the load supplies the value. A partial overlap
        // (which real pipelines stall on) drains the buffer instead.
        for (auto it = buffer.rbegin(); it != buffer.rend(); ++it) {
            if (it->addr <= addr && addr + size <= it->addr + it->size) {
                const unsigned shift =
                    static_cast<unsigned>(8 * (addr - it->addr));
                std::uint64_t value = it->value >> shift;
                if (size < 8)
                    value &= (1ULL << (8 * size)) - 1;
                engine_->emit(tid_, EventKind::Load, addr, size, value);
                return value;
            }
            if (it->addr < addr + size && addr < it->addr + it->size) {
                engine_->drainAll(tid_);
                break;
            }
        }
    }
    const std::uint64_t value = engine_->image_.load(addr, size);
    engine_->emit(tid_, EventKind::Load, addr, size, value);
    return value;
}

void
ThreadCtx::store(Addr addr, std::uint64_t value, unsigned size)
{
    engine_->schedulePoint(tid_);
    if (engine_->config_.consistency == ConsistencyModel::TSO) {
        auto &buffer = engine_->storeBuffer(tid_);
        buffer.push_back(ExecutionEngine::BufferedStore{
            addr, size, value});
        while (buffer.size() > engine_->config_.store_buffer_depth)
            engine_->drainOne(tid_);
        return;
    }
    engine_->image_.store(addr, size, value);
    engine_->emit(tid_, EventKind::Store, addr, size, value);
}

std::uint64_t
ThreadCtx::rmwExchange(Addr addr, std::uint64_t value, unsigned size)
{
    engine_->schedulePoint(tid_);
    if (engine_->config_.consistency == ConsistencyModel::TSO)
        engine_->drainAll(tid_);
    const std::uint64_t old = engine_->image_.load(addr, size);
    engine_->image_.store(addr, size, value);
    engine_->emit(tid_, EventKind::Rmw, addr, size, value);
    return old;
}

std::uint64_t
ThreadCtx::rmwCas(Addr addr, std::uint64_t expected, std::uint64_t desired,
                  unsigned size)
{
    engine_->schedulePoint(tid_);
    if (engine_->config_.consistency == ConsistencyModel::TSO)
        engine_->drainAll(tid_);
    const std::uint64_t old = engine_->image_.load(addr, size);
    if (old == expected) {
        engine_->image_.store(addr, size, desired);
        engine_->emit(tid_, EventKind::Rmw, addr, size, desired);
    } else {
        // A failed CAS performs no write; trace it as a load.
        engine_->emit(tid_, EventKind::Load, addr, size, old);
    }
    return old;
}

std::uint64_t
ThreadCtx::rmwFetchAdd(Addr addr, std::uint64_t delta, unsigned size)
{
    engine_->schedulePoint(tid_);
    if (engine_->config_.consistency == ConsistencyModel::TSO)
        engine_->drainAll(tid_);
    const std::uint64_t old = engine_->image_.load(addr, size);
    const std::uint64_t updated = old + delta;
    engine_->image_.store(addr, size, updated);
    engine_->emit(tid_, EventKind::Rmw, addr, size, updated);
    return old;
}

void
ThreadCtx::copyIn(Addr dst, const void *src, std::size_t n)
{
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    while (n > 0) {
        const std::size_t room = max_access_size - (dst % max_access_size);
        const std::size_t chunk = std::min(n, room);
        std::uint64_t value = 0;
        std::memcpy(&value, bytes, chunk);
        store(dst, value, static_cast<unsigned>(chunk));
        dst += chunk;
        bytes += chunk;
        n -= chunk;
    }
}

void
ThreadCtx::copyOut(void *dst, Addr src, std::size_t n)
{
    auto *bytes = static_cast<std::uint8_t *>(dst);
    while (n > 0) {
        const std::size_t room = max_access_size - (src % max_access_size);
        const std::size_t chunk = std::min(n, room);
        const std::uint64_t value =
            load(src, static_cast<unsigned>(chunk));
        std::memcpy(bytes, &value, chunk);
        src += chunk;
        bytes += chunk;
        n -= chunk;
    }
}

void
ThreadCtx::copySim(Addr dst, Addr src, std::size_t n)
{
    while (n > 0) {
        const std::size_t src_room =
            max_access_size - (src % max_access_size);
        const std::size_t dst_room =
            max_access_size - (dst % max_access_size);
        const std::size_t chunk = std::min({n, src_room, dst_room});
        const std::uint64_t value =
            load(src, static_cast<unsigned>(chunk));
        store(dst, value, static_cast<unsigned>(chunk));
        src += chunk;
        dst += chunk;
        n -= chunk;
    }
}

void
ThreadCtx::persistBarrier()
{
    engine_->schedulePoint(tid_);
    engine_->emit(tid_, EventKind::PersistBarrier, 0, 0, 0);
}

void
ThreadCtx::newStrand()
{
    engine_->schedulePoint(tid_);
    engine_->emit(tid_, EventKind::NewStrand, 0, 0, 0);
}

void
ThreadCtx::persistSync()
{
    engine_->schedulePoint(tid_);
    engine_->emit(tid_, EventKind::PersistSync, 0, 0, 0);
}

void
ThreadCtx::fence()
{
    engine_->schedulePoint(tid_);
    if (engine_->config_.consistency == ConsistencyModel::TSO)
        engine_->drainAll(tid_);
    engine_->emit(tid_, EventKind::Fence, 0, 0, 0);
}

void
ThreadCtx::clflush(Addr addr)
{
    engine_->schedulePoint(tid_);
    // clflush is ordered against all older stores: they must be
    // globally visible before the flush takes effect.
    if (engine_->config_.consistency == ConsistencyModel::TSO)
        engine_->drainAll(tid_);
    engine_->emit(tid_, EventKind::CacheFlush, addr, 0, 0);
}

void
ThreadCtx::clflushopt(Addr addr)
{
    engine_->schedulePoint(tid_);
    // clflushopt/clwb are ordered only against older stores to the
    // flushed line: drain the FIFO prefix covering those and nothing
    // more, so the flush can overtake older stores to other lines.
    if (engine_->config_.consistency == ConsistencyModel::TSO)
        engine_->drainLine(tid_, addr);
    engine_->emit(tid_, EventKind::CacheFlushOpt, addr, 0, 0);
}

void
ThreadCtx::clwb(Addr addr)
{
    engine_->schedulePoint(tid_);
    if (engine_->config_.consistency == ConsistencyModel::TSO)
        engine_->drainLine(tid_, addr);
    engine_->emit(tid_, EventKind::CacheWriteBack, addr, 0, 0);
}

void
ThreadCtx::sfence()
{
    engine_->schedulePoint(tid_);
    if (engine_->config_.consistency == ConsistencyModel::TSO)
        engine_->drainAll(tid_);
    engine_->emit(tid_, EventKind::StoreFence, 0, 0, 0);
}

void
ThreadCtx::mfence()
{
    engine_->schedulePoint(tid_);
    if (engine_->config_.consistency == ConsistencyModel::TSO)
        engine_->drainAll(tid_);
    engine_->emit(tid_, EventKind::FullFence, 0, 0, 0);
}

void
ThreadCtx::marker(MarkerCode code, std::uint64_t arg)
{
    engine_->schedulePoint(tid_);
    engine_->emit(tid_, EventKind::Marker, 0, 0, arg,
                  static_cast<std::uint16_t>(code));
}

Addr
ThreadCtx::pmalloc(std::uint64_t size, std::uint64_t align)
{
    engine_->schedulePoint(tid_);
    const Addr addr = engine_->palloc_.allocate(size, align);
    engine_->emit(tid_, EventKind::PMalloc, addr, 0, size);
    return addr;
}

void
ThreadCtx::pfree(Addr addr)
{
    engine_->schedulePoint(tid_);
    engine_->palloc_.free(addr);
    engine_->emit(tid_, EventKind::PFree, addr, 0, 0);
}

Addr
ThreadCtx::vmalloc(std::uint64_t size, std::uint64_t align)
{
    engine_->schedulePoint(tid_);
    return engine_->valloc_.allocate(size, align);
}

void
ThreadCtx::vfree(Addr addr)
{
    engine_->schedulePoint(tid_);
    engine_->valloc_.free(addr);
}

} // namespace persim
