#include "sync/native_locks.hh"

#include <thread>

namespace persim {

void
NativeMcsLock::lock(Qnode &qnode)
{
    qnode.next.store(nullptr, std::memory_order_relaxed);
    qnode.locked.store(1, std::memory_order_relaxed);
    Qnode *pred = tail_.exchange(&qnode, std::memory_order_acq_rel);
    if (pred != nullptr) {
        pred->next.store(&qnode, std::memory_order_release);
        while (qnode.locked.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    }
}

void
NativeMcsLock::unlock(Qnode &qnode)
{
    Qnode *next = qnode.next.load(std::memory_order_acquire);
    if (next == nullptr) {
        Qnode *expected = &qnode;
        if (tail_.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel))
            return;
        while ((next = qnode.next.load(std::memory_order_acquire))
               == nullptr)
            std::this_thread::yield();
    }
    next->locked.store(0, std::memory_order_release);
}

void
NativeTicketLock::lock()
{
    const std::uint64_t ticket =
        next_ticket_.fetch_add(1, std::memory_order_relaxed);
    while (now_serving_.load(std::memory_order_acquire) != ticket)
        std::this_thread::yield();
}

void
NativeTicketLock::unlock()
{
    now_serving_.store(now_serving_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
}

void
NativeSpinLock::lock()
{
    for (;;) {
        if (word_.load(std::memory_order_relaxed) != 0) {
            std::this_thread::yield();
            continue;
        }
        {
            std::uint64_t expected = 0;
            if (word_.compare_exchange_weak(expected, 1,
                                            std::memory_order_acquire))
                return;
        }
    }
}

void
NativeSpinLock::unlock()
{
    word_.store(0, std::memory_order_release);
}

} // namespace persim
