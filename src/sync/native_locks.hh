/**
 * @file
 * Native (real-hardware) locks for instruction-rate measurement.
 *
 * The paper measures "instruction execution rate" by running the
 * queue benchmarks natively, optimized for volatile performance, on a
 * real machine. These locks are the native twins of the traced locks
 * in locks.hh, built on std::atomic; NativeMcsLock mirrors the MCS
 * algorithm [20] used in the paper's methodology.
 */

#ifndef PERSIM_SYNC_NATIVE_LOCKS_HH
#define PERSIM_SYNC_NATIVE_LOCKS_HH

#include <atomic>
#include <cstdint>

namespace persim {

/** MCS queue lock over std::atomic. */
class NativeMcsLock
{
  public:
    /** Per-thread queue node; 64-byte aligned to avoid false sharing. */
    struct alignas(64) Qnode
    {
        std::atomic<Qnode *> next{nullptr};
        std::atomic<std::uint64_t> locked{0};
    };

    void lock(Qnode &qnode);
    void unlock(Qnode &qnode);

  private:
    std::atomic<Qnode *> tail_{nullptr};
};

/** Ticket lock over std::atomic. */
class NativeTicketLock
{
  public:
    void lock();
    void unlock();

  private:
    alignas(64) std::atomic<std::uint64_t> next_ticket_{0};
    alignas(64) std::atomic<std::uint64_t> now_serving_{0};
};

/** Test-and-test-and-set lock over std::atomic. */
class NativeSpinLock
{
  public:
    void lock();
    void unlock();

  private:
    alignas(64) std::atomic<std::uint64_t> word_{0};
};

} // namespace persim

#endif // PERSIM_SYNC_NATIVE_LOCKS_HH
