#include "sync/locks.hh"

namespace persim {

namespace {

constexpr std::uint64_t qnode_next_off = 0;
constexpr std::uint64_t qnode_locked_off = 8;

} // namespace

McsLock
McsLock::create(ThreadCtx &ctx)
{
    const Addr tail = ctx.vmalloc(lock_bytes, 64);
    ctx.store(tail, 0);
    return McsLock(tail);
}

Addr
McsLock::createQnode(ThreadCtx &ctx)
{
    const Addr qnode = ctx.vmalloc(qnode_bytes, 64);
    ctx.store(qnode + qnode_next_off, 0);
    ctx.store(qnode + qnode_locked_off, 0);
    return qnode;
}

void
McsLock::lock(ThreadCtx &ctx, Addr qnode) const
{
    ctx.store(qnode + qnode_next_off, 0);
    ctx.store(qnode + qnode_locked_off, 1);
    const Addr pred = ctx.rmwExchange(tail_, qnode);
    if (pred != 0) {
        ctx.store(pred + qnode_next_off, qnode);
        while (ctx.load(qnode + qnode_locked_off) != 0) {
            // Local spin on our own qnode flag.
        }
    }
}

void
McsLock::unlock(ThreadCtx &ctx, Addr qnode) const
{
    Addr next = ctx.load(qnode + qnode_next_off);
    if (next == 0) {
        // No known successor: try to swing the tail back to empty.
        if (ctx.rmwCas(tail_, qnode, 0) == qnode)
            return;
        // A successor is enqueueing; wait for it to link itself.
        while ((next = ctx.load(qnode + qnode_next_off)) == 0) {
        }
    }
    ctx.store(next + qnode_locked_off, 0);
}

TicketLock
TicketLock::create(ThreadCtx &ctx)
{
    const Addr base = ctx.vmalloc(lock_bytes, 64);
    ctx.store(base, 0);
    ctx.store(base + 8, 0);
    return TicketLock(base);
}

void
TicketLock::lock(ThreadCtx &ctx) const
{
    const std::uint64_t ticket = ctx.rmwFetchAdd(base_, 1);
    while (ctx.load(base_ + 8) != ticket) {
    }
}

void
TicketLock::unlock(ThreadCtx &ctx) const
{
    const std::uint64_t serving = ctx.load(base_ + 8);
    ctx.store(base_ + 8, serving + 1);
}

SpinLock
SpinLock::create(ThreadCtx &ctx)
{
    const Addr word = ctx.vmalloc(lock_bytes, 64);
    ctx.store(word, 0);
    return SpinLock(word);
}

void
SpinLock::lock(ThreadCtx &ctx) const
{
    for (;;) {
        if (ctx.load(word_) == 0 && ctx.rmwCas(word_, 0, 1) == 0)
            return;
    }
}

void
SpinLock::unlock(ThreadCtx &ctx) const
{
    ctx.store(word_, 0);
}

} // namespace persim
