/**
 * @file
 * Locks over the traced memory API.
 *
 * The paper's queue benchmarks use MCS queue locks [20]; we provide
 * MCS plus ticket and test-and-set locks. All lock state lives in
 * simulated memory (by convention the volatile address space, as the
 * paper recommends), so lock accesses appear in the trace and
 * participate in persist-ordering conflict analysis exactly as they
 * would under hardware tracing.
 */

#ifndef PERSIM_SYNC_LOCKS_HH
#define PERSIM_SYNC_LOCKS_HH

#include "common/types.hh"
#include "sim/engine.hh"

namespace persim {

/**
 * MCS queue lock. Waiters enqueue a per-thread qnode with an atomic
 * exchange on the tail pointer and spin on their own node's flag,
 * giving FIFO admission with local spinning.
 *
 * Qnode layout (16 bytes): [0..7] next pointer, [8..15] locked flag.
 */
class McsLock
{
  public:
    /** Bytes a caller must allocate for the lock word. */
    static constexpr std::uint64_t lock_bytes = 8;

    /** Bytes a caller must allocate per thread for a qnode. */
    static constexpr std::uint64_t qnode_bytes = 16;

    McsLock() : tail_(invalid_addr) {}

    /** Adopt an 8-byte lock word at @p tail_addr (must read as 0). */
    explicit McsLock(Addr tail_addr) : tail_(tail_addr) {}

    /** Allocate and zero the lock word in volatile simulated memory. */
    static McsLock create(ThreadCtx &ctx);

    /** Allocate and zero a qnode in volatile simulated memory. */
    static Addr createQnode(ThreadCtx &ctx);

    /** Acquire with the caller's @p qnode. */
    void lock(ThreadCtx &ctx, Addr qnode) const;

    /** Release; @p qnode must be the one passed to lock. */
    void unlock(ThreadCtx &ctx, Addr qnode) const;

    Addr tailAddr() const { return tail_; }

  private:
    Addr tail_;
};

/** Ticket lock: FIFO via a fetch-add ticket and a now-serving word. */
class TicketLock
{
  public:
    /** Bytes a caller must allocate (two 8-byte words). */
    static constexpr std::uint64_t lock_bytes = 16;

    TicketLock() : base_(invalid_addr) {}

    /** Adopt 16 zeroed bytes at @p base. */
    explicit TicketLock(Addr base) : base_(base) {}

    /** Allocate and zero the lock in volatile simulated memory. */
    static TicketLock create(ThreadCtx &ctx);

    void lock(ThreadCtx &ctx) const;
    void unlock(ThreadCtx &ctx) const;

  private:
    Addr base_;
};

/** Test-and-test-and-set spin lock on a single word. */
class SpinLock
{
  public:
    static constexpr std::uint64_t lock_bytes = 8;

    SpinLock() : word_(invalid_addr) {}

    /** Adopt an 8-byte word at @p word (must read as 0). */
    explicit SpinLock(Addr word) : word_(word) {}

    /** Allocate and zero the lock in volatile simulated memory. */
    static SpinLock create(ThreadCtx &ctx);

    void lock(ThreadCtx &ctx) const;
    void unlock(ThreadCtx &ctx) const;

  private:
    Addr word_;
};

/** RAII guard for McsLock. */
class McsGuard
{
  public:
    McsGuard(ThreadCtx &ctx, const McsLock &lock, Addr qnode)
        : ctx_(ctx), lock_(lock), qnode_(qnode)
    {
        lock_.lock(ctx_, qnode_);
    }

    ~McsGuard() { lock_.unlock(ctx_, qnode_); }

    McsGuard(const McsGuard &) = delete;
    McsGuard &operator=(const McsGuard &) = delete;

  private:
    ThreadCtx &ctx_;
    const McsLock &lock_;
    Addr qnode_;
};

} // namespace persim

#endif // PERSIM_SYNC_LOCKS_HH
