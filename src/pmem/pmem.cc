#include "pmem/pmem.hh"

namespace persim {

void
RootDirectory::set(const std::string &name, Addr addr)
{
    roots_[name] = addr;
}

Addr
RootDirectory::get(const std::string &name) const
{
    auto it = roots_.find(name);
    PERSIM_REQUIRE(it != roots_.end(), "unknown root: " << name);
    return it->second;
}

bool
RootDirectory::has(const std::string &name) const
{
    return roots_.find(name) != roots_.end();
}

} // namespace persim
