/**
 * @file
 * Persistent-memory programming conveniences.
 *
 * These helpers make recoverable data structures written against the
 * traced memory API readable: typed persistent variables, bounded
 * persistent buffers, RAII epoch scopes, and a root directory so that
 * recovery code can find structures after a simulated failure.
 */

#ifndef PERSIM_PMEM_PMEM_HH
#define PERSIM_PMEM_PMEM_HH

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>

#include "common/error.hh"
#include "memtrace/event.hh"
#include "sim/engine.hh"

namespace persim {

/**
 * A typed word-sized variable in simulated memory (volatile or
 * persistent, depending on its address).
 */
template <typename T>
class PVar
{
    static_assert(std::is_integral_v<T> && sizeof(T) <= 8,
                  "PVar requires an integral type of at most 8 bytes");

  public:
    PVar() : addr_(invalid_addr) {}
    explicit PVar(Addr addr) : addr_(addr) {}

    Addr addr() const { return addr_; }
    bool valid() const { return addr_ != invalid_addr; }

    /** Traced load. */
    T
    load(ThreadCtx &ctx) const
    {
        return static_cast<T>(ctx.load(addr_, sizeof(T)));
    }

    /** Traced store (a persist when the address is persistent). */
    void
    store(ThreadCtx &ctx, T value) const
    {
        ctx.store(addr_, static_cast<std::uint64_t>(value), sizeof(T));
    }

    /** Traced atomic exchange; returns the previous value. */
    T
    exchange(ThreadCtx &ctx, T value) const
    {
        return static_cast<T>(ctx.rmwExchange(
            addr_, static_cast<std::uint64_t>(value), sizeof(T)));
    }

    /** Traced atomic fetch-add; returns the previous value. */
    T
    fetchAdd(ThreadCtx &ctx, T delta) const
    {
        return static_cast<T>(ctx.rmwFetchAdd(
            addr_, static_cast<std::uint64_t>(delta), sizeof(T)));
    }

    /**
     * Traced compare-and-swap.
     * @return The previous value (== expected iff the swap happened).
     */
    T
    compareExchange(ThreadCtx &ctx, T expected, T desired) const
    {
        return static_cast<T>(ctx.rmwCas(
            addr_, static_cast<std::uint64_t>(expected),
            static_cast<std::uint64_t>(desired), sizeof(T)));
    }

  private:
    Addr addr_;
};

/** A bounds-checked byte buffer in simulated memory. */
class PBuffer
{
  public:
    PBuffer() : base_(invalid_addr), size_(0) {}
    PBuffer(Addr base, std::uint64_t size) : base_(base), size_(size) {}

    Addr base() const { return base_; }
    std::uint64_t size() const { return size_; }
    bool valid() const { return base_ != invalid_addr; }

    /** Address of byte @p offset; fatals when out of bounds. */
    Addr
    at(std::uint64_t offset) const
    {
        PERSIM_REQUIRE(offset < size_,
                       "PBuffer offset " << offset << " out of bounds ("
                       << size_ << ")");
        return base_ + offset;
    }

    /** Traced write of @p n host bytes at @p offset. */
    void
    write(ThreadCtx &ctx, std::uint64_t offset, const void *src,
          std::size_t n) const
    {
        PERSIM_REQUIRE(offset + n <= size_, "PBuffer write out of bounds");
        ctx.copyIn(base_ + offset, src, n);
    }

    /** Traced read of @p n bytes at @p offset into host memory. */
    void
    read(ThreadCtx &ctx, std::uint64_t offset, void *dst,
         std::size_t n) const
    {
        PERSIM_REQUIRE(offset + n <= size_, "PBuffer read out of bounds");
        ctx.copyOut(dst, base_ + offset, n);
    }

  private:
    Addr base_;
    std::uint64_t size_;
};

/**
 * RAII persist epoch: emits a persist barrier on construction and on
 * destruction, bracketing the enclosed persists into their own epoch.
 */
class EpochScope
{
  public:
    explicit EpochScope(ThreadCtx &ctx) : ctx_(ctx)
    {
        ctx_.persistBarrier();
    }

    ~EpochScope() { ctx_.persistBarrier(); }

    EpochScope(const EpochScope &) = delete;
    EpochScope &operator=(const EpochScope &) = delete;

  private:
    ThreadCtx &ctx_;
};

/**
 * Maps names to the persistent addresses of long-lived structures,
 * so recovery code can locate them after a failure. Persim keeps this
 * directory out-of-band (host-side): durable naming is an orthogonal
 * OS/runtime concern the paper also leaves aside.
 */
class RootDirectory
{
  public:
    /** Register or update a named root. */
    void set(const std::string &name, Addr addr);

    /** Look up a named root; fatals when missing. */
    Addr get(const std::string &name) const;

    /** True iff a root with this name exists. */
    bool has(const std::string &name) const;

    const std::map<std::string, Addr> &all() const { return roots_; }

  private:
    std::map<std::string, Addr> roots_;
};

} // namespace persim

#endif // PERSIM_PMEM_PMEM_HH
