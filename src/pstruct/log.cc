#include "pstruct/log.hh"

#include "common/bitops.hh"
#include "common/error.hh"

namespace persim {

std::uint64_t
LogLayout::recordBytes(std::uint64_t len)
{
    return 8 + alignUp(len, 8) + 8;
}

std::uint64_t
LogLayout::checksum(std::uint64_t pos, std::uint64_t len,
                    const std::uint8_t *payload)
{
    // FNV-1a over (pos, len, payload). Covering the position means a
    // record never validates against bytes written for a different
    // offset.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t word) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (word >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    };
    mix(pos);
    mix(len);
    for (std::uint64_t i = 0; i < len; ++i) {
        hash ^= payload[i];
        hash *= 0x100000001b3ULL;
    }
    // A zero checksum would let blank memory validate a zero-length
    // record; keep it nonzero.
    return hash == 0 ? 1 : hash;
}

PersistentLog
PersistentLog::create(ThreadCtx &ctx, const LogOptions &options,
                      std::size_t threads)
{
    PERSIM_REQUIRE(options.capacity >= 64 && options.capacity % 8 == 0,
                   "log capacity must be a multiple of 8, >= 64");
    PERSIM_REQUIRE(threads >= 1, "need at least one writer slot");

    PersistentLog log;
    log.options_ = options;
    log.layout_.base = ctx.pmalloc(options.capacity, 64);
    log.layout_.capacity = options.capacity;
    ctx.persistBarrier(); // The blank log is the durable baseline.

    log.cursor_ = ctx.vmalloc(8, 64);
    ctx.store(log.cursor_, 0);
    log.prev_start_ = ctx.vmalloc(8, 64);
    ctx.store(log.prev_start_, 0);
    log.lock_ = McsLock::create(ctx);
    for (std::size_t i = 0; i < threads; ++i)
        log.qnodes_.push_back(McsLock::createQnode(ctx));
    return log;
}

std::uint64_t
PersistentLog::tailOffset(ThreadCtx &ctx) const
{
    return ctx.load(cursor_);
}

std::uint64_t
PersistentLog::append(ThreadCtx &ctx, std::size_t slot,
                      const void *payload, std::uint64_t len)
{
    PERSIM_REQUIRE(slot < qnodes_.size(), "bad writer slot");
    PERSIM_REQUIRE(len >= 1, "empty records are not representable");
    McsGuard guard(ctx, lock_, qnodes_[slot]);

    const std::uint64_t pos = ctx.load(cursor_);
    const std::uint64_t bytes = LogLayout::recordBytes(len);
    PERSIM_REQUIRE(pos + bytes <= layout_.capacity,
                   "log full: " << pos + bytes << " > "
                   << layout_.capacity);

    // Inter-record ordering: recovery scans until the first invalid
    // record, so record k must not persist while k-1 can still tear —
    // otherwise durable records hide behind a torn one. Note this is
    // a durability (bounded-loss) property, not integrity: the scan
    // never returns wrong bytes either way.
    //
    // Strand idiom (paper Section 5.3): a fresh strand rebuilds its
    // ordering by *reading every word* of the previous record (strong
    // persist atomicity makes each word's pending persist a
    // dependence) and then barriering. Reading only part of the
    // record would leave the unread words racing ahead.
    //
    // Epoch idiom: a trailing barrier folds this record's persists
    // into the thread's epoch state so the lock release publishes
    // them; the next appender's leading barrier (after its lock
    // acquisition) inherits them — the same two-barrier structure as
    // the queue's Algorithm 1 lines 8/11.
    if (!options_.omit_order_annotations) {
        if (options_.use_strands) {
            ctx.newStrand();
            const std::uint64_t prev = ctx.load(prev_start_);
            for (std::uint64_t word = prev; word < pos; word += 8)
                ctx.load(layout_.base + word);
            ctx.persistBarrier();
        } else {
            ctx.persistBarrier(); // Leading: inherit the predecessor.
        }
    } else if (options_.use_strands) {
        ctx.newStrand();
    }

    const auto *bytes_in = static_cast<const std::uint8_t *>(payload);
    ctx.store(layout_.base + pos, len);
    ctx.copyIn(layout_.base + pos + 8, bytes_in, len);
    ctx.store(layout_.base + pos + 8 + alignUp(len, 8),
              LogLayout::checksum(pos, len, bytes_in));

    if (!options_.omit_order_annotations && !options_.use_strands)
        ctx.persistBarrier(); // Trailing: publish through the lock.

    ctx.store(prev_start_, pos);
    ctx.store(cursor_, pos + bytes);
    return pos;
}

LogRecovery
PersistentLog::recover(const MemoryImage &image, const LogLayout &layout)
{
    LogRecovery result;
    std::uint64_t pos = 0;
    while (pos + 24 <= layout.capacity) {
        const std::uint64_t len = image.load(layout.base + pos, 8);
        if (len == 0 ||
            pos + LogLayout::recordBytes(len) > layout.capacity)
            break;
        std::vector<std::uint8_t> payload(len);
        image.readBytes(payload.data(), layout.base + pos + 8, len);
        const std::uint64_t stored = image.load(
            layout.base + pos + 8 + alignUp(len, 8), 8);
        if (stored != LogLayout::checksum(pos, len, payload.data()))
            break;
        RecoveredRecord record;
        record.offset = pos;
        record.payload = std::move(payload);
        result.records.push_back(std::move(record));
        pos += LogLayout::recordBytes(len);
    }
    result.valid_bytes = pos;
    return result;
}

} // namespace persim
