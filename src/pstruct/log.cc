#include "pstruct/log.hh"

#include <sstream>

#include "common/bitops.hh"
#include "common/error.hh"

namespace persim {

std::uint64_t
LogLayout::recordBytes(std::uint64_t len)
{
    // [len][seq][payload padded to 8][checksum]
    return 8 + 8 + alignUp(len, 8) + 8;
}

std::uint64_t
LogLayout::checksum(std::uint64_t pos, std::uint64_t seq,
                    std::uint64_t len, const std::uint8_t *payload)
{
    // FNV-1a over (pos, seq, len, payload). Covering the position
    // means a record never validates against bytes written for a
    // different offset; covering the sequence number ties the record
    // to its place in the append order.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t word) {
        for (int i = 0; i < 8; ++i) {
            hash ^= (word >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    };
    mix(pos);
    mix(seq);
    mix(len);
    for (std::uint64_t i = 0; i < len; ++i) {
        hash ^= payload[i];
        hash *= 0x100000001b3ULL;
    }
    // A zero checksum would let blank memory validate a zero-length
    // record; keep it nonzero.
    return hash == 0 ? 1 : hash;
}

PersistentLog
PersistentLog::create(ThreadCtx &ctx, const LogOptions &options,
                      std::size_t threads)
{
    PERSIM_REQUIRE(options.capacity >= 64 && options.capacity % 8 == 0,
                   "log capacity must be a multiple of 8, >= 64");
    PERSIM_REQUIRE(threads >= 1, "need at least one writer slot");

    PersistentLog log;
    log.options_ = options;
    log.layout_.base = ctx.pmalloc(options.capacity, 64);
    log.layout_.capacity = options.capacity;
    ctx.persistBarrier(); // The blank log is the durable baseline.

    log.cursor_ = ctx.vmalloc(8, 64);
    ctx.store(log.cursor_, 0);
    log.seq_ = ctx.vmalloc(8, 64);
    ctx.store(log.seq_, 0);
    log.prev_start_ = ctx.vmalloc(8, 64);
    ctx.store(log.prev_start_, 0);
    log.lock_ = McsLock::create(ctx);
    for (std::size_t i = 0; i < threads; ++i)
        log.qnodes_.push_back(McsLock::createQnode(ctx));
    log.golden_ = std::make_shared<Golden>();
    return log;
}

std::uint64_t
PersistentLog::tailOffset(ThreadCtx &ctx) const
{
    return ctx.load(cursor_);
}

std::vector<GoldenLogRecord>
PersistentLog::goldenRecords() const
{
    PERSIM_REQUIRE(golden_ != nullptr, "log was not created");
    std::lock_guard<std::mutex> guard(golden_->mutex);
    return golden_->records;
}

std::uint64_t
PersistentLog::append(ThreadCtx &ctx, std::size_t slot,
                      const void *payload, std::uint64_t len)
{
    static const std::vector<Addr> no_deps;
    return append(ctx, slot, payload, len, no_deps);
}

std::uint64_t
PersistentLog::append(ThreadCtx &ctx, std::size_t slot,
                      const void *payload, std::uint64_t len,
                      const std::vector<Addr> &order_after)
{
    PERSIM_REQUIRE(slot < qnodes_.size(), "bad writer slot");
    PERSIM_REQUIRE(len >= 1, "empty records are not representable");
    McsGuard guard(ctx, lock_, qnodes_[slot]);

    const std::uint64_t pos = ctx.load(cursor_);
    const std::uint64_t seq = ctx.load(seq_);
    const std::uint64_t bytes = LogLayout::recordBytes(len);
    PERSIM_REQUIRE(pos + bytes <= layout_.capacity,
                   "log full: " << pos + bytes << " > "
                   << layout_.capacity);

    // Inter-record ordering: recovery scans until the first invalid
    // record, so record k must not persist while k-1 can still tear —
    // otherwise durable records hide behind a torn one. Note this is
    // a durability (bounded-loss) property, not integrity: the scan
    // never returns wrong bytes either way.
    //
    // Strand idiom (paper Section 5.3): a fresh strand rebuilds its
    // ordering by *reading every word* of the previous record (strong
    // persist atomicity makes each word's pending persist a
    // dependence) and then barriering. Reading only part of the
    // record would leave the unread words racing ahead.
    //
    // Epoch idiom: a trailing barrier folds this record's persists
    // into the thread's epoch state so the lock release publishes
    // them; the next appender's leading barrier (after its lock
    // acquisition) inherits them — the same two-barrier structure as
    // the queue's Algorithm 1 lines 8/11.
    if (!options_.omit_order_annotations) {
        if (options_.use_strands) {
            ctx.newStrand();
            const std::uint64_t prev = ctx.load(prev_start_);
            for (std::uint64_t word = prev; word < pos; word += 8)
                ctx.load(layout_.base + word);
            // Cross-structure predecessors (see the header comment):
            // one conflicting load each pulls their pending persists
            // into this strand's ordering before the barrier.
            for (Addr dep : order_after)
                ctx.load(dep);
            ctx.persistBarrier();
        } else {
            for (Addr dep : order_after)
                ctx.load(dep);
            ctx.persistBarrier(); // Leading: inherit the predecessor.
        }
    } else if (options_.use_strands) {
        ctx.newStrand();
    }

    const auto *bytes_in = static_cast<const std::uint8_t *>(payload);
    ctx.store(layout_.base + pos, len);
    ctx.store(layout_.base + pos + 8, seq);
    ctx.copyIn(layout_.base + pos + 16, bytes_in, len);
    ctx.store(layout_.base + pos + 16 + alignUp(len, 8),
              LogLayout::checksum(pos, seq, len, bytes_in));

    if (!options_.omit_order_annotations && !options_.use_strands)
        ctx.persistBarrier(); // Trailing: publish through the lock.

    ctx.store(prev_start_, pos);
    ctx.store(cursor_, pos + bytes);
    ctx.store(seq_, seq + 1);

    if (options_.record_golden) {
        std::lock_guard<std::mutex> golden_guard(golden_->mutex);
        GoldenLogRecord record;
        record.offset = pos;
        record.seq = seq;
        record.payload.assign(bytes_in, bytes_in + len);
        golden_->records.push_back(std::move(record));
    }
    return pos;
}

LogRecovery
PersistentLog::recover(const MemoryImage &image, const LogLayout &layout)
{
    LogRecovery result;
    std::uint64_t pos = 0;
    while (pos + LogLayout::recordBytes(1) <= layout.capacity) {
        const std::uint64_t len = image.load(layout.base + pos, 8);
        if (len == 0 ||
            pos + LogLayout::recordBytes(len) > layout.capacity)
            break;
        const std::uint64_t seq = image.load(layout.base + pos + 8, 8);
        if (seq != result.records.size())
            break; // Stale or torn header: not the next append.
        std::vector<std::uint8_t> payload(len);
        image.readBytes(payload.data(), layout.base + pos + 16, len);
        const std::uint64_t stored = image.load(
            layout.base + pos + 16 + alignUp(len, 8), 8);
        if (stored != LogLayout::checksum(pos, seq, len, payload.data()))
            break;
        RecoveredRecord record;
        record.offset = pos;
        record.seq = seq;
        record.payload = std::move(payload);
        result.records.push_back(std::move(record));
        pos += LogLayout::recordBytes(len);
    }
    result.valid_bytes = pos;
    return result;
}

bool
PersistentLog::recordDurableAt(const MemoryImage &image,
                               const LogLayout &layout,
                               std::uint64_t offset, std::uint64_t seq)
{
    if (offset + LogLayout::recordBytes(1) > layout.capacity)
        return false;
    const std::uint64_t len = image.load(layout.base + offset, 8);
    if (len == 0 ||
        offset + LogLayout::recordBytes(len) > layout.capacity)
        return false;
    if (image.load(layout.base + offset + 8, 8) != seq)
        return false;
    std::vector<std::uint8_t> payload(len);
    image.readBytes(payload.data(), layout.base + offset + 16, len);
    const std::uint64_t stored = image.load(
        layout.base + offset + 16 + alignUp(len, 8), 8);
    return stored == LogLayout::checksum(offset, seq, len,
                                         payload.data());
}

bool
PersistentLog::recordAt(const MemoryImage &image,
                        const LogLayout &layout, std::uint64_t offset,
                        RecoveredRecord &record)
{
    if (offset % 8 != 0 ||
        offset + LogLayout::recordBytes(1) > layout.capacity)
        return false;
    const std::uint64_t len = image.load(layout.base + offset, 8);
    if (len == 0 ||
        offset + LogLayout::recordBytes(len) > layout.capacity)
        return false;
    const std::uint64_t seq = image.load(layout.base + offset + 8, 8);
    std::vector<std::uint8_t> payload(len);
    image.readBytes(payload.data(), layout.base + offset + 16, len);
    const std::uint64_t stored = image.load(
        layout.base + offset + 16 + alignUp(len, 8), 8);
    if (stored != LogLayout::checksum(offset, seq, len, payload.data()))
        return false;
    record.offset = offset;
    record.seq = seq;
    record.payload = std::move(payload);
    return true;
}

std::string
checkLogAgainstGolden(const MemoryImage &image, const LogLayout &layout,
                      const LogRecovery &recovery,
                      const std::vector<GoldenLogRecord> &golden)
{
    if (recovery.records.size() > golden.size()) {
        std::ostringstream oss;
        oss << "recovered " << recovery.records.size()
            << " records but only " << golden.size()
            << " were appended";
        return oss.str();
    }
    for (std::size_t i = 0; i < recovery.records.size(); ++i) {
        const RecoveredRecord &got = recovery.records[i];
        const GoldenLogRecord &want = golden[i];
        if (got.offset != want.offset || got.seq != want.seq ||
            got.payload != want.payload) {
            std::ostringstream oss;
            oss << "recovered record " << i << " at offset "
                << got.offset << " does not match append " << want.seq
                << " at offset " << want.offset;
            return oss.str();
        }
    }
    // Everything beyond the truncation point must be gone: a record
    // that still validates there persisted ahead of a predecessor
    // that did not (an inter-record ordering violation), and
    // truncate-at-first-bad recovery silently loses it.
    for (std::size_t i = recovery.records.size(); i < golden.size();
         ++i) {
        if (PersistentLog::recordDurableAt(image, layout,
                                           golden[i].offset,
                                           golden[i].seq)) {
            std::ostringstream oss;
            oss << "hole: record " << golden[i].seq << " at offset "
                << golden[i].offset
                << " is durable beyond the truncation point ("
                << recovery.valid_bytes << " valid bytes)";
            return oss.str();
        }
    }
    return "";
}

std::function<std::string(const MemoryImage &)>
makeLogRecoveryInvariant(const LogLayout &layout,
                         const std::vector<GoldenLogRecord> &golden)
{
    return [layout, golden](const MemoryImage &image) {
        const LogRecovery recovery =
            PersistentLog::recover(image, layout);
        return checkLogAgainstGolden(image, layout, recovery, golden);
    };
}

} // namespace persim
