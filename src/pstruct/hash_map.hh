/**
 * @file
 * A recoverable open-addressing hash map on persistent memory.
 *
 * This is a library-grade application of the persistency API (the
 * annotated counterpart of the sketch in examples/kvstore.cpp): a
 * fixed-size linear-probing table whose durability protocol needs
 * exactly one persist barrier per mutation class:
 *
 *  - insert: write key+value into a dead bucket, persist barrier,
 *    publish state=LIVE (the classic update-then-publish pattern);
 *  - update: a single atomic 8-byte persist of the value — versions
 *    of one cell are ordered by strong persist atomicity alone;
 *  - erase: a single atomic persist of state=TOMBSTONE (tombstones
 *    keep probe chains intact and are reused by later inserts; the
 *    same-address state transitions are SPA-ordered).
 *
 * Writers serialize on one MCS lock; reads are lock-free. Each
 * mutation optionally starts a new strand (operations on a map are
 * logically independent), which makes the whole structure persist
 * concurrently under strand persistency while remaining recoverable:
 * failure injection across all models is part of the test suite.
 *
 * Keys are nonzero 64-bit integers; values are 64-bit.
 */

#ifndef PERSIM_PSTRUCT_HASH_MAP_HH
#define PERSIM_PSTRUCT_HASH_MAP_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pstruct/bucket_fault.hh"
#include "sim/engine.hh"
#include "sim/memory_image.hh"
#include "sync/locks.hh"

namespace persim {

/** Placement and geometry of a persistent hash map. */
struct HashMapLayout
{
    Addr table = invalid_addr;  //!< Bucket array base.
    std::uint64_t buckets = 0;  //!< Bucket count (power of two).

    static constexpr std::uint64_t bucket_bytes = 24;
    static constexpr std::uint64_t key_off = 0;
    static constexpr std::uint64_t value_off = 8;
    static constexpr std::uint64_t state_off = 16;

    /** Bucket states. */
    static constexpr std::uint64_t state_empty = 0;
    static constexpr std::uint64_t state_live = 1;
    static constexpr std::uint64_t state_tombstone = 2;

    /** Base address of bucket @p index. */
    Addr
    bucketAddr(std::uint64_t index) const
    {
        return table + index * bucket_bytes;
    }
};

/** Hash map construction options. */
struct HashMapOptions
{
    /** Bucket count (power of two >= 2). */
    std::uint64_t buckets = 1024;

    /** Start a new persist strand at each mutation. */
    bool use_strands = true;

    /**
     * FAULT DEMONSTRATION ONLY: omit the barrier between writing a
     * bucket's key/value and publishing it live.
     */
    bool omit_publish_barrier = false;
};

/** Outcome of a put(). */
enum class PutStatus : std::uint8_t {
    Inserted, //!< A new entry was published.
    Updated,  //!< An existing entry's value was overwritten.
    TableFull, //!< No dead bucket on the probe chain; nothing written.
};

/** Human-readable PutStatus name. */
const char *putStatusName(PutStatus status);

/**
 * Entries parsed out of a (possibly crashed) map image.
 *
 * recover() no longer stops at the first inconsistency: every bucket
 * is validated and each failure is recorded as a BucketFault naming
 * which invariant broke (state / zero key / dup key /
 * probe-reachability). `entries` holds only buckets that passed every
 * check, so a caller may serve them in degraded mode; `ok` is true
 * iff no bucket faulted, and `error` keeps the first fault's
 * description for single-verdict callers (recovery invariants).
 */
struct HashMapRecovery
{
    bool ok = false;
    std::string error;
    std::vector<BucketFault> faults;
    std::map<std::uint64_t, std::uint64_t> entries;
    std::uint64_t tombstones = 0;

    /** Faulted buckets of one kind. */
    std::uint64_t faultCount(BucketFaultKind kind) const;
};

/** A fixed-size recoverable hash map. */
class PersistentHashMap
{
  public:
    PersistentHashMap() = default;

    /**
     * Allocate and initialize the table in persistent memory, with
     * MCS qnodes for @p threads writer slots.
     */
    static PersistentHashMap create(ThreadCtx &ctx,
                                    const HashMapOptions &options,
                                    std::size_t threads);

    /**
     * Insert or update @p key (nonzero). A full table (no empty or
     * tombstone bucket on the probe chain) is a recoverable
     * condition, not an error: nothing is written and
     * PutStatus::TableFull is returned so the caller can shed load or
     * back off — a fault campaign must never be aborted by a full
     * table.
     */
    [[nodiscard]] PutStatus put(ThreadCtx &ctx, std::size_t slot,
                                std::uint64_t key, std::uint64_t value);

    /**
     * Remove @p key.
     * @return True iff the key was present.
     */
    bool erase(ThreadCtx &ctx, std::size_t slot, std::uint64_t key);

    /** Lock-free lookup. @return True iff found (value written). */
    bool get(ThreadCtx &ctx, std::uint64_t key,
             std::uint64_t &value) const;

    /** Number of live entries (walks the table with traced loads). */
    std::uint64_t count(ThreadCtx &ctx) const;

    const HashMapLayout &layout() const { return layout_; }

    /**
     * Parse a map out of a memory image: collect live entries, verify
     * structural invariants (valid states, nonzero live keys, no
     * duplicate live keys, every live entry reachable by probing).
     */
    static HashMapRecovery recover(const MemoryImage &image,
                                   const HashMapLayout &layout);

    /** The probe start for @p key in a table of @p buckets. */
    static std::uint64_t hashIndex(std::uint64_t key,
                                   std::uint64_t buckets);

  private:
    HashMapLayout layout_;
    HashMapOptions options_;
    McsLock lock_;
    std::vector<Addr> qnodes_;
};

} // namespace persim

#endif // PERSIM_PSTRUCT_HASH_MAP_HH
