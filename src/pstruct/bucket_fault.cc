#include "pstruct/bucket_fault.hh"

namespace persim {

const char *
bucketFaultKindName(BucketFaultKind kind)
{
    switch (kind) {
      case BucketFaultKind::InvalidState:
        return "bad-state";
      case BucketFaultKind::ZeroKey:
        return "zero-key";
      case BucketFaultKind::DuplicateKey:
        return "dup-key";
      case BucketFaultKind::Unreachable:
        return "unreachable";
      case BucketFaultKind::BadValueRef:
        return "bad-value-ref";
      case BucketFaultKind::BadChecksum:
        return "bad-checksum";
    }
    return "unknown";
}

} // namespace persim
