/**
 * @file
 * Per-bucket recovery fault taxonomy.
 *
 * Recovery of an open-addressed persistent table can fail one bucket
 * at a time, for structurally different reasons: an invalid state
 * word, a zero live key, a duplicated live key, a live key stranded
 * off its probe chain, a checksum mismatch, or a value reference
 * pointing outside the value heap. The taxonomy is shared between
 * PersistentHashMap::recover (which reports faults but has no
 * checksums) and the KV store's recovery ladder (src/kvstore/), whose
 * quarantine accounting is keyed by it — so campaign tables and tests
 * can ask "how many buckets failed, and why" instead of parsing an
 * error string.
 */

#ifndef PERSIM_PSTRUCT_BUCKET_FAULT_HH
#define PERSIM_PSTRUCT_BUCKET_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace persim {

/** Which structural invariant a bucket violated. */
enum class BucketFaultKind : std::uint8_t {
    InvalidState = 0, //!< State word is none of empty/live/tombstone.
    ZeroKey,          //!< Live bucket with a zero key.
    DuplicateKey,     //!< Key live in more than one bucket.
    Unreachable,      //!< Live key unreachable from its probe chain.
    BadValueRef,      //!< Value reference outside the value heap.
    BadChecksum,      //!< Bucket checksum mismatch (torn or bit-rotted).
};

/** Number of BucketFaultKind enumerators (for per-cause counters). */
constexpr std::size_t bucket_fault_kinds = 6;

/** Short stable name ("bad-state", "dup-key", ...). */
const char *bucketFaultKindName(BucketFaultKind kind);

/** One quarantinable bucket failure. */
struct BucketFault
{
    std::uint64_t bucket = 0;   //!< Bucket index in the table.
    BucketFaultKind kind = BucketFaultKind::InvalidState;
    std::string detail;         //!< Human-readable description.
};

} // namespace persim

#endif // PERSIM_PSTRUCT_BUCKET_FAULT_HH
