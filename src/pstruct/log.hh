/**
 * @file
 * A recoverable append-only log with checksummed records.
 *
 * PersistentLog demonstrates the *other* classic durability protocol:
 * where the queue publishes entries by persisting a head pointer
 * after the data (pointer-publish), the log writes self-validating
 * records — [length][payload][checksum(length, payload, position)] —
 * and recovery simply scans forward until the first record that fails
 * its checksum. Consequences for persistency:
 *
 *  - NO ordering is required between a record's pieces: a torn record
 *    fails its checksum and ends the scan, so appends need no persist
 *    barrier at all;
 *  - ordering IS required *between* records: recovery stops at the
 *    first invalid record, so if record k persisted while k-1 did
 *    not, k would be silently lost (or worse, a stale byte pattern at
 *    k-1 could validate). Each append therefore ends the epoch (or
 *    reads the previous record's tail on a new strand) so records
 *    persist in append order.
 *
 * The checksum covers the record's log position, so reused or stale
 * bytes from an earlier generation of the same region never validate.
 * Appends serialize on one MCS lock; recovery is a pure function of
 * the memory image.
 */

#ifndef PERSIM_PSTRUCT_LOG_HH
#define PERSIM_PSTRUCT_LOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "sim/memory_image.hh"
#include "sync/locks.hh"

namespace persim {

/** Placement of a persistent log. */
struct LogLayout
{
    Addr base = invalid_addr;   //!< Record area base.
    std::uint64_t capacity = 0; //!< Bytes in the record area.

    /** Bytes record of @p len payload occupies (header + trailer). */
    static std::uint64_t recordBytes(std::uint64_t len);

    /** Checksum of a record at byte offset @p pos. */
    static std::uint64_t checksum(std::uint64_t pos, std::uint64_t len,
                                  const std::uint8_t *payload);
};

/** Log construction options. */
struct LogOptions
{
    std::uint64_t capacity = 1 << 20;

    /** Start a new strand per append (appends chain via the previous
        record's bytes, re-read on the new strand). */
    bool use_strands = true;

    /**
     * FAULT DEMONSTRATION ONLY: skip the inter-record ordering (no
     * epoch boundary and no strand re-read), letting record k persist
     * before record k-1.
     */
    bool omit_order_annotations = false;
};

/** One record parsed out of an image. */
struct RecoveredRecord
{
    std::uint64_t offset = 0;
    std::vector<std::uint8_t> payload;
};

/** Result of scanning a log image. */
struct LogRecovery
{
    /** Valid records, in order; the scan stops at the first record
        that fails validation (which is normal at the log's end). */
    std::vector<RecoveredRecord> records;

    /** Bytes of valid log. */
    std::uint64_t valid_bytes = 0;
};

/** An append-only persistent log. */
class PersistentLog
{
  public:
    PersistentLog() = default;

    /** Allocate the log area and writer qnodes. */
    static PersistentLog create(ThreadCtx &ctx, const LogOptions &options,
                                std::size_t threads);

    /**
     * Append @p len payload bytes; fatals when the log is full.
     * @return The record's byte offset.
     */
    std::uint64_t append(ThreadCtx &ctx, std::size_t slot,
                         const void *payload, std::uint64_t len);

    /** Volatile view of the append cursor (traced load). */
    std::uint64_t tailOffset(ThreadCtx &ctx) const;

    const LogLayout &layout() const { return layout_; }

    /** Scan an image: every prefix record that validates. */
    static LogRecovery recover(const MemoryImage &image,
                               const LogLayout &layout);

  private:
    LogLayout layout_;
    LogOptions options_;
    Addr cursor_ = invalid_addr;     //!< Volatile append cursor cell.
    Addr prev_start_ = invalid_addr; //!< Previous record's offset
                                     //!< (volatile), for the strand
                                     //!< re-read idiom.
    McsLock lock_;
    std::vector<Addr> qnodes_;
};

} // namespace persim

#endif // PERSIM_PSTRUCT_LOG_HH
