/**
 * @file
 * A recoverable append-only log with checksummed records.
 *
 * PersistentLog demonstrates the *other* classic durability protocol:
 * where the queue publishes entries by persisting a head pointer
 * after the data (pointer-publish), the log writes self-validating
 * records — [length][sequence][payload][checksum(position, sequence,
 * length, payload)] — and recovery simply scans forward, truncating
 * at the first record that fails validation. Consequences for
 * persistency:
 *
 *  - NO ordering is required between a record's pieces: a torn record
 *    fails its checksum and ends the scan, so appends need no persist
 *    barrier at all;
 *  - ordering IS required *between* records: recovery stops at the
 *    first invalid record, so if record k persisted while k-1 did
 *    not, k would be silently lost (or worse, a stale byte pattern at
 *    k-1 could validate). Each append therefore ends the epoch (or
 *    reads the previous record's tail on a new strand) so records
 *    persist in append order.
 *
 * The checksum covers the record's log position and sequence number,
 * so reused or stale bytes from an earlier generation of the same
 * region never validate. Appends serialize on one MCS lock; recovery
 * is a pure function of the memory image.
 *
 * Truncate-at-first-bad is also the log's graceful-degradation story
 * under device faults (src/nvram/faults.hh): a torn *tail* record
 * fails its checksum and is silently discarded — bounded loss, not an
 * error. What the scan cannot express is a durable record *behind*
 * the truncation point: makeLogRecoveryInvariant cross-checks the
 * image against the appends actually made and reports such a hole as
 * an ordering violation (record k persisted while k-1 tore).
 */

#ifndef PERSIM_PSTRUCT_LOG_HH
#define PERSIM_PSTRUCT_LOG_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "sim/memory_image.hh"
#include "sync/locks.hh"

namespace persim {

/** Placement of a persistent log. */
struct LogLayout
{
    Addr base = invalid_addr;   //!< Record area base.
    std::uint64_t capacity = 0; //!< Bytes in the record area.

    /** Bytes record of @p len payload occupies (header + trailer). */
    static std::uint64_t recordBytes(std::uint64_t len);

    /** Checksum of record number @p seq at byte offset @p pos. */
    static std::uint64_t checksum(std::uint64_t pos, std::uint64_t seq,
                                  std::uint64_t len,
                                  const std::uint8_t *payload);
};

/** Log construction options. */
struct LogOptions
{
    std::uint64_t capacity = 1 << 20;

    /** Start a new strand per append (appends chain via the previous
        record's bytes, re-read on the new strand). */
    bool use_strands = true;

    /**
     * FAULT DEMONSTRATION ONLY: skip the inter-record ordering (no
     * epoch boundary and no strand re-read), letting record k persist
     * before record k-1.
     */
    bool omit_order_annotations = false;

    /**
     * Keep a host-side golden copy of every append (for recovery
     * cross-checking). Disable on multi-million-record perf runs where
     * the copies would dominate memory.
     */
    bool record_golden = true;
};

/** One record parsed out of an image. */
struct RecoveredRecord
{
    std::uint64_t offset = 0;
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> payload;
};

/** Result of scanning a log image. */
struct LogRecovery
{
    /** Valid records, in order; the scan stops at the first record
        that fails validation (which is normal at the log's end). */
    std::vector<RecoveredRecord> records;

    /** Bytes of valid log. */
    std::uint64_t valid_bytes = 0;
};

/** Host-side record of one append, for recovery cross-checking. */
struct GoldenLogRecord
{
    std::uint64_t offset = 0;
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> payload;
};

/** An append-only persistent log. */
class PersistentLog
{
  public:
    PersistentLog() = default;

    /** Allocate the log area and writer qnodes. */
    static PersistentLog create(ThreadCtx &ctx, const LogOptions &options,
                                std::size_t threads);

    /**
     * Append @p len payload bytes; fatals when the log is full.
     * @return The record's byte offset.
     */
    std::uint64_t append(ThreadCtx &ctx, std::size_t slot,
                         const void *payload, std::uint64_t len);

    /**
     * Append, additionally ordering this record's persists after the
     * words named in @p order_after. Under strand persistency a fresh
     * strand only inherits ordering through conflicts, so a record
     * that must follow persists made on *other* strands (a cross-shard
     * commit record following the per-shard staged records it names)
     * re-reads one word of each predecessor before writing. Under
     * epoch models the extra loads are harmless; the barriers already
     * order everything.
     * @return The record's byte offset.
     */
    std::uint64_t append(ThreadCtx &ctx, std::size_t slot,
                         const void *payload, std::uint64_t len,
                         const std::vector<Addr> &order_after);

    /** Volatile view of the append cursor (traced load). */
    std::uint64_t tailOffset(ThreadCtx &ctx) const;

    const LogLayout &layout() const { return layout_; }

    /** Appends made so far (host-side), in sequence order. */
    std::vector<GoldenLogRecord> goldenRecords() const;

    /** Scan an image: every prefix record that validates. */
    static LogRecovery recover(const MemoryImage &image,
                               const LogLayout &layout);

    /**
     * Does a fully valid record with sequence number @p seq sit at
     * byte offset @p offset of the image? Used for hole detection:
     * a record that validates *beyond* the recovery truncation point
     * persisted ahead of a predecessor that did not.
     */
    static bool recordDurableAt(const MemoryImage &image,
                                const LogLayout &layout,
                                std::uint64_t offset, std::uint64_t seq);

    /**
     * Parse and validate the single record at byte offset @p offset,
     * without knowing its sequence number in advance. Used by
     * cross-shard commit resolution, which holds (shard, offset)
     * pairs from a commit record and must check each named staged
     * record independently of the prefix scan.
     * @return True iff a fully valid record sits there.
     */
    static bool recordAt(const MemoryImage &image,
                         const LogLayout &layout, std::uint64_t offset,
                         RecoveredRecord &record);

  private:
    /** Appends from every copy of this log (create() returns by
        value); engine threads are real OS threads, hence the lock. */
    struct Golden
    {
        std::mutex mutex;
        std::vector<GoldenLogRecord> records;
    };

    LogLayout layout_;
    LogOptions options_;
    Addr cursor_ = invalid_addr;     //!< Volatile append cursor cell.
    Addr seq_ = invalid_addr;        //!< Volatile next-sequence cell.
    Addr prev_start_ = invalid_addr; //!< Previous record's offset
                                     //!< (volatile), for the strand
                                     //!< re-read idiom.
    McsLock lock_;
    std::vector<Addr> qnodes_;
    std::shared_ptr<Golden> golden_;
};

/**
 * Cross-check a log recovery against the appends actually made:
 * recovered records must be a prefix of the golden sequence
 * (offset, sequence number, payload), and no golden record beyond the
 * truncation point may still validate in the image (a hole: it
 * persisted while an earlier record tore or was lost).
 * @return Empty string when consistent, else a description.
 */
std::string checkLogAgainstGolden(
    const MemoryImage &image, const LogLayout &layout,
    const LogRecovery &recovery,
    const std::vector<GoldenLogRecord> &golden);

/**
 * Build a recovery invariant for failure injection (see
 * src/recovery/): recover the log from the crashed image and
 * cross-check it against the recorded appends.
 */
std::function<std::string(const MemoryImage &)>
makeLogRecoveryInvariant(const LogLayout &layout,
                         const std::vector<GoldenLogRecord> &golden);

} // namespace persim

#endif // PERSIM_PSTRUCT_LOG_HH
