#include "pstruct/hash_map.hh"

#include <sstream>
#include <unordered_map>

#include "common/bitops.hh"
#include "common/error.hh"

namespace persim {

const char *
putStatusName(PutStatus status)
{
    switch (status) {
      case PutStatus::Inserted:
        return "inserted";
      case PutStatus::Updated:
        return "updated";
      case PutStatus::TableFull:
        return "table-full";
    }
    return "unknown";
}

std::uint64_t
HashMapRecovery::faultCount(BucketFaultKind kind) const
{
    std::uint64_t n = 0;
    for (const BucketFault &fault : faults)
        if (fault.kind == kind)
            ++n;
    return n;
}

std::uint64_t
PersistentHashMap::hashIndex(std::uint64_t key, std::uint64_t buckets)
{
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    key *= 0xc4ceb9fe1a85ec53ULL;
    key ^= key >> 33;
    return key & (buckets - 1);
}

PersistentHashMap
PersistentHashMap::create(ThreadCtx &ctx, const HashMapOptions &options,
                          std::size_t threads)
{
    PERSIM_REQUIRE(isPowerOfTwo(options.buckets) && options.buckets >= 2,
                   "bucket count must be a power of two >= 2");
    PERSIM_REQUIRE(threads >= 1, "need at least one writer slot");

    PersistentHashMap map;
    map.options_ = options;
    map.layout_.buckets = options.buckets;
    map.layout_.table = ctx.pmalloc(
        options.buckets * HashMapLayout::bucket_bytes, 64);
    // Fresh persistent memory reads zero (state_empty); make the
    // initialized (empty) table durable before first use.
    ctx.persistBarrier();

    map.lock_ = McsLock::create(ctx);
    for (std::size_t i = 0; i < threads; ++i)
        map.qnodes_.push_back(McsLock::createQnode(ctx));
    return map;
}

PutStatus
PersistentHashMap::put(ThreadCtx &ctx, std::size_t slot,
                       std::uint64_t key, std::uint64_t value)
{
    PERSIM_REQUIRE(key != 0, "keys must be nonzero");
    PERSIM_REQUIRE(slot < qnodes_.size(), "bad writer slot");
    McsGuard guard(ctx, lock_, qnodes_[slot]);
    if (options_.use_strands)
        ctx.newStrand();

    const std::uint64_t buckets = layout_.buckets;
    std::uint64_t index = hashIndex(key, buckets);
    std::uint64_t insert_at = buckets; // First dead bucket seen.
    for (std::uint64_t probe = 0; probe < buckets; ++probe) {
        const Addr bucket = layout_.bucketAddr(index);
        const std::uint64_t state =
            ctx.load(bucket + HashMapLayout::state_off);
        if (state == HashMapLayout::state_live) {
            if (ctx.load(bucket + HashMapLayout::key_off) == key) {
                // Update in place: one atomic persist; versions of
                // this cell are ordered by strong persist atomicity.
                ctx.store(bucket + HashMapLayout::value_off, value);
                return PutStatus::Updated;
            }
        } else {
            if (insert_at == buckets)
                insert_at = index;
            if (state == HashMapLayout::state_empty)
                break; // Key cannot be live past an empty bucket.
        }
        index = (index + 1) & (buckets - 1);
    }
    if (insert_at == buckets)
        return PutStatus::TableFull;

    // Insert: fill the dead bucket, then publish.
    const Addr bucket = layout_.bucketAddr(insert_at);
    ctx.store(bucket + HashMapLayout::key_off, key);
    ctx.store(bucket + HashMapLayout::value_off, value);
    if (!options_.omit_publish_barrier)
        ctx.persistBarrier();
    ctx.store(bucket + HashMapLayout::state_off,
              HashMapLayout::state_live);
    return PutStatus::Inserted;
}

bool
PersistentHashMap::erase(ThreadCtx &ctx, std::size_t slot,
                         std::uint64_t key)
{
    PERSIM_REQUIRE(key != 0, "keys must be nonzero");
    PERSIM_REQUIRE(slot < qnodes_.size(), "bad writer slot");
    McsGuard guard(ctx, lock_, qnodes_[slot]);
    if (options_.use_strands)
        ctx.newStrand();

    const std::uint64_t buckets = layout_.buckets;
    std::uint64_t index = hashIndex(key, buckets);
    for (std::uint64_t probe = 0; probe < buckets; ++probe) {
        const Addr bucket = layout_.bucketAddr(index);
        const std::uint64_t state =
            ctx.load(bucket + HashMapLayout::state_off);
        if (state == HashMapLayout::state_empty)
            return false;
        if (state == HashMapLayout::state_live &&
            ctx.load(bucket + HashMapLayout::key_off) == key) {
            // One atomic persist; the LIVE -> TOMBSTONE transition is
            // ordered against the bucket's other state persists by
            // strong persist atomicity.
            ctx.store(bucket + HashMapLayout::state_off,
                      HashMapLayout::state_tombstone);
            return true;
        }
        index = (index + 1) & (buckets - 1);
    }
    return false;
}

bool
PersistentHashMap::get(ThreadCtx &ctx, std::uint64_t key,
                       std::uint64_t &value) const
{
    const std::uint64_t buckets = layout_.buckets;
    std::uint64_t index = hashIndex(key, buckets);
    for (std::uint64_t probe = 0; probe < buckets; ++probe) {
        const Addr bucket = layout_.bucketAddr(index);
        const std::uint64_t state =
            ctx.load(bucket + HashMapLayout::state_off);
        if (state == HashMapLayout::state_empty)
            return false;
        if (state == HashMapLayout::state_live &&
            ctx.load(bucket + HashMapLayout::key_off) == key) {
            value = ctx.load(bucket + HashMapLayout::value_off);
            return true;
        }
        index = (index + 1) & (buckets - 1);
    }
    return false;
}

std::uint64_t
PersistentHashMap::count(ThreadCtx &ctx) const
{
    std::uint64_t live = 0;
    for (std::uint64_t i = 0; i < layout_.buckets; ++i) {
        if (ctx.load(layout_.bucketAddr(i) + HashMapLayout::state_off) ==
            HashMapLayout::state_live)
            ++live;
    }
    return live;
}

HashMapRecovery
PersistentHashMap::recover(const MemoryImage &image,
                           const HashMapLayout &layout)
{
    HashMapRecovery result;
    std::unordered_map<std::uint64_t, std::uint64_t> seen; // key -> bucket
    std::vector<std::uint64_t> states(layout.buckets);
    std::vector<bool> healthy(layout.buckets, false);

    auto fault = [&result](std::uint64_t bucket, BucketFaultKind kind,
                           std::string detail) {
        result.faults.push_back({bucket, kind, std::move(detail)});
    };

    for (std::uint64_t i = 0; i < layout.buckets; ++i) {
        const Addr bucket = layout.bucketAddr(i);
        const std::uint64_t state =
            image.load(bucket + HashMapLayout::state_off, 8);
        states[i] = state;
        if (state == HashMapLayout::state_tombstone) {
            ++result.tombstones;
            continue;
        }
        if (state == HashMapLayout::state_empty)
            continue;
        if (state != HashMapLayout::state_live) {
            std::ostringstream oss;
            oss << "bucket " << i << " has invalid state " << state;
            fault(i, BucketFaultKind::InvalidState, oss.str());
            continue;
        }
        const std::uint64_t key =
            image.load(bucket + HashMapLayout::key_off, 8);
        if (key == 0) {
            std::ostringstream oss;
            oss << "live bucket " << i << " has a zero key";
            fault(i, BucketFaultKind::ZeroKey, oss.str());
            continue;
        }
        auto inserted = seen.emplace(key, i);
        if (!inserted.second) {
            // Quarantine the later bucket; the first occurrence keeps
            // its entry.
            std::ostringstream oss;
            oss << "key " << key << " is live in two buckets ("
                << inserted.first->second << " and " << i << ")";
            fault(i, BucketFaultKind::DuplicateKey, oss.str());
            continue;
        }
        healthy[i] = true;
        result.entries[key] =
            image.load(bucket + HashMapLayout::value_off, 8);
    }

    // Reachability: every healthy live key must be findable by probing
    // from its hash index without crossing an empty bucket first.
    // Buckets already faulted above still occupy their slot, so they
    // keep probe chains alive for this check (as they would for get()).
    for (std::uint64_t i = 0; i < layout.buckets; ++i) {
        if (!healthy[i])
            continue;
        const std::uint64_t key =
            image.load(layout.bucketAddr(i) + HashMapLayout::key_off, 8);
        std::uint64_t index = hashIndex(key, layout.buckets);
        bool reachable = false;
        for (std::uint64_t probe = 0; probe < layout.buckets; ++probe) {
            if (index == i) {
                reachable = true;
                break;
            }
            if (states[index] == HashMapLayout::state_empty)
                break;
            index = (index + 1) & (layout.buckets - 1);
        }
        if (!reachable) {
            std::ostringstream oss;
            oss << "live key " << key << " in bucket " << i
                << " is unreachable from its probe chain";
            fault(i, BucketFaultKind::Unreachable, oss.str());
            result.entries.erase(key);
        }
    }
    result.ok = result.faults.empty();
    if (!result.ok)
        result.error = result.faults.front().detail;
    return result;
}

} // namespace persim
