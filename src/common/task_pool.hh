/**
 * @file
 * Fixed-size worker pool for the heavy analysis paths.
 *
 * The sweeps behind Figures 3-5 / Table 1 replay one trace through a
 * bank of independent PersistTimingEngine instances, and the explorer
 * (src/explore/) shards a decision-prefix work queue; both are
 * embarrassingly parallel at the granularity of one task. TaskPool
 * gives them one runtime: a fixed set of OS worker threads, a
 * submit/wait API whose tasks may themselves submit subtasks
 * (recursive decomposition), and a parallelFor convenience for flat
 * index ranges.
 *
 * Scheduling is LIFO: the newest submitted task runs first. For
 * recursive workloads (the explorer's DFS over decision prefixes)
 * this keeps the traversal depth-first-ish and the queue small; for
 * flat parallelFor ranges the order is irrelevant.
 *
 * Error handling: a task that throws does not kill its worker. The
 * first exception is captured and rethrown from the owner's wait()
 * (or parallelFor()); later exceptions of the same batch are dropped.
 *
 * wait() must be called from outside the pool: a worker blocking on
 * the pool it serves can deadlock it. parallelFor() is nest-safe: a
 * caller running *inside* a pool task helps execute queued tasks
 * while its batch is outstanding instead of parking the worker, so
 * intra-trace segment replay can fan out from within a bench's
 * per-series parallelFor on the same pool.
 */

#ifndef PERSIM_COMMON_TASK_POOL_HH
#define PERSIM_COMMON_TASK_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace persim {

/** Fixed worker pool with submit/wait and parallel-for. */
class TaskPool
{
  public:
    using Task = std::function<void()>;

    /** Start @p workers threads (0 = one per hardware thread). */
    explicit TaskPool(std::uint32_t workers = 0);

    /** Drains every queued task, then joins the workers. */
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Number of worker threads. */
    std::uint32_t workerCount() const { return workers_; }

    /**
     * Enqueue a task. Thread-safe; in particular a running task may
     * submit follow-up work to its own pool.
     */
    void submit(Task task);

    /**
     * Block until every submitted task (including tasks submitted by
     * tasks) has finished, then rethrow the first captured task
     * exception, if any. Owner thread only — never call from a task.
     */
    void wait();

    /**
     * Run body(i) for every i in [0, n) on the pool and wait for the
     * batch; rethrows the first exception a body raised. Independent
     * of submit()/wait() bookkeeping errors-wise: a concurrent
     * submit()'s failure is not reported here. Safe to call from
     * inside a pool task: the caller help-executes queued tasks
     * (possibly from unrelated batches) until its own batch is done.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** Hardware concurrency, never less than 1. */
    static std::uint32_t defaultWorkers();

  private:
    void workerLoop();

    std::uint32_t workers_ = 0;
    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable work_cv_; //!< Queued work or stop.
    std::condition_variable done_cv_; //!< pending_ reached zero.
    std::vector<Task> queue_;         //!< LIFO: back runs first.
    std::size_t pending_ = 0;         //!< Queued + running tasks.
    std::exception_ptr error_;        //!< First submit()-task failure.
    bool stop_ = false;
};

} // namespace persim

#endif // PERSIM_COMMON_TASK_POOL_HH
