/**
 * @file
 * Fundamental scalar types shared across all persim modules.
 */

#ifndef PERSIM_COMMON_TYPES_HH
#define PERSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace persim {

/** Simulated virtual address. The simulator owns a flat 64-bit space. */
using Addr = std::uint64_t;

/** Identifier of a simulated thread (dense, starting at 0). */
using ThreadId = std::uint32_t;

/** Sequence number of an event in the global (SC) memory order. */
using SeqNum = std::uint64_t;

/**
 * Persist level. Persist timing is measured in discrete levels: a
 * persist at level L may begin only after every persist at level < L
 * that it depends on has completed. The critical path of a trace is
 * the maximum level assigned to any persist (paper Section 7).
 */
using Level = std::uint64_t;

/** Identifier of a persist node in a dependence graph. */
using PersistId = std::uint64_t;

/** Sentinel for "no thread". */
constexpr ThreadId invalid_thread = std::numeric_limits<ThreadId>::max();

/** Sentinel for "no persist". */
constexpr PersistId invalid_persist = std::numeric_limits<PersistId>::max();

/** Sentinel for "no address". */
constexpr Addr invalid_addr = std::numeric_limits<Addr>::max();

/**
 * Largest access the traced memory API issues as a single event.
 * Matches the paper's assumption that NVRAM persists are atomic at
 * (at least) eight-byte granularity; larger copies are split.
 */
constexpr std::uint32_t max_access_size = 8;

} // namespace persim

#endif // PERSIM_COMMON_TYPES_HH
