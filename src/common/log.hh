/**
 * @file
 * Minimal leveled logging to stderr.
 *
 * persim is a library; by default only warnings are printed. Tools
 * and benches may raise the level for progress reporting.
 */

#ifndef PERSIM_COMMON_LOG_HH
#define PERSIM_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace persim {

/** Severity of a log message. */
enum class LogLevel : int {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Silent = 3,
};

/** Global minimum severity that will be emitted. */
LogLevel logLevel();

/** Set the global minimum severity. */
void setLogLevel(LogLevel level);

/** Emit @p msg at @p level if the global threshold permits. */
void logMessage(LogLevel level, const std::string &msg);

} // namespace persim

#define PERSIM_LOG(level, msg)                                             \
    do {                                                                   \
        if (static_cast<int>(level) >=                                     \
            static_cast<int>(::persim::logLevel())) {                      \
            std::ostringstream oss_;                                       \
            oss_ << msg;                                                   \
            ::persim::logMessage(level, oss_.str());                       \
        }                                                                  \
    } while (0)

#define PERSIM_DEBUG(msg) PERSIM_LOG(::persim::LogLevel::Debug, msg)
#define PERSIM_INFO(msg) PERSIM_LOG(::persim::LogLevel::Info, msg)
#define PERSIM_WARN(msg) PERSIM_LOG(::persim::LogLevel::Warn, msg)

#endif // PERSIM_COMMON_LOG_HH
