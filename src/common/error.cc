#include "common/error.hh"

namespace persim {
namespace detail {

std::string
formatError(const char *kind, const char *file, int line,
            const std::string &msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": " << kind << ": " << msg;
    return oss.str();
}

} // namespace detail

void
fatal(const char *file, int line, const std::string &msg)
{
    throw FatalError(detail::formatError("fatal", file, line, msg));
}

void
panic(const char *file, int line, const std::string &msg)
{
    throw PanicError(detail::formatError("panic", file, line, msg));
}

} // namespace persim
