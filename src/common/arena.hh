/**
 * @file
 * Reusable bump (arena) allocation for analysis hot paths.
 *
 * The persist-timing engine's steady state must not touch the heap
 * per event (ISSUE 4 / DESIGN.md Section 11): its per-block state
 * lives in struct-of-arrays banks whose storage comes from an Arena.
 * An Arena hands out raw aligned spans from geometrically growing
 * chunks; nothing is freed individually, and reset() recycles every
 * chunk for the next analysis without returning memory to the
 * system. ArenaVector is the POD-only growable array on top of it:
 * push_back is a bounds check and a store, and growth relocates into
 * a fresh arena span (so elements must be trivially copyable and
 * callers must hold slot indices, never references, across growth).
 */

#ifndef PERSIM_COMMON_ARENA_HH
#define PERSIM_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/error.hh"

namespace persim {

/** Chunked bump allocator; spans live until reset() or destruction. */
class Arena
{
  public:
    /** @param chunk_bytes Size of the first chunk (doubles as needed). */
    explicit Arena(std::size_t chunk_bytes = 1ULL << 16)
        : next_chunk_bytes_(chunk_bytes)
    {
        PERSIM_REQUIRE(chunk_bytes > 0, "arena chunk size must be > 0");
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Allocate @p bytes aligned to @p align (a power of two). */
    void *
    allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t))
    {
        std::uintptr_t at = reinterpret_cast<std::uintptr_t>(cursor_);
        const std::uintptr_t aligned = (at + (align - 1)) & ~(align - 1);
        const std::size_t pad = aligned - at;
        if (cursor_ == nullptr || pad + bytes > remaining_)
            return allocateSlow(bytes, align);
        cursor_ += pad + bytes;
        remaining_ -= pad + bytes;
        allocated_ += pad + bytes;
        return reinterpret_cast<void *>(aligned);
    }

    /** Allocate an uninitialized array of @p count POD elements. */
    template <typename T>
    T *
    allocateArray(std::size_t count)
    {
        static_assert(std::is_trivially_copyable_v<T> &&
                          std::is_trivially_destructible_v<T>,
                      "arenas never run destructors");
        return static_cast<T *>(allocate(count * sizeof(T), alignof(T)));
    }

    /**
     * Recycle every chunk: previously returned spans become invalid,
     * but the memory stays owned by the arena, so the next analysis
     * of similar size allocates nothing from the system.
     */
    void
    reset()
    {
        chunk_index_ = 0;
        allocated_ = 0;
        if (chunks_.empty()) {
            cursor_ = nullptr;
            remaining_ = 0;
        } else {
            cursor_ = chunks_[0].data.get();
            remaining_ = chunks_[0].bytes;
        }
    }

    /** Bytes handed out since construction or the last reset(). */
    std::size_t allocatedBytes() const { return allocated_; }

    /** Bytes owned (allocated from the system), across resets. */
    std::size_t
    ownedBytes() const
    {
        std::size_t total = 0;
        for (const Chunk &chunk : chunks_)
            total += chunk.bytes;
        return total;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t bytes = 0;
    };

    /** Out-of-line refill: advance to (or mint) a chunk that fits. */
    void *
    allocateSlow(std::size_t bytes, std::size_t align)
    {
        // A fresh chunk is max_align_t aligned; over-reserve so any
        // requested alignment fits after padding.
        const std::size_t need = bytes + align;
        while (chunk_index_ < chunks_.size() &&
               chunks_[chunk_index_].bytes < need)
            ++chunk_index_;
        if (chunk_index_ == chunks_.size()) {
            while (next_chunk_bytes_ < need)
                next_chunk_bytes_ *= 2;
            Chunk chunk;
            chunk.data =
                std::make_unique<unsigned char[]>(next_chunk_bytes_);
            chunk.bytes = next_chunk_bytes_;
            next_chunk_bytes_ *= 2;
            chunks_.push_back(std::move(chunk));
        }
        cursor_ = chunks_[chunk_index_].data.get();
        remaining_ = chunks_[chunk_index_].bytes;
        ++chunk_index_;
        return allocate(bytes, align);
    }

    std::vector<Chunk> chunks_;
    std::size_t chunk_index_ = 0;  //!< Next chunk allocateSlow may use.
    unsigned char *cursor_ = nullptr;
    std::size_t remaining_ = 0;
    std::size_t allocated_ = 0;
    std::size_t next_chunk_bytes_;
};

/**
 * Growable POD array whose storage comes from an Arena.
 *
 * Growth relocates the elements into a larger arena span; the old
 * span is abandoned (reclaimed wholesale at Arena::reset). Hold
 * indices across push_back, never pointers or references.
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "ArenaVector is for POD element types only");

  public:
    explicit ArenaVector(Arena &arena) : arena_(&arena) {}

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T *data() { return data_; }
    const T *data() const { return data_; }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    void
    push_back(const T &value)
    {
        if (size_ == capacity_)
            grow();
        data_[size_++] = value;
    }

    /** Append @p count copies of @p value; returns the first index. */
    std::size_t
    append(std::size_t count, const T &value)
    {
        const std::size_t first = size_;
        while (size_ + count > capacity_)
            grow();
        for (std::size_t i = 0; i < count; ++i)
            data_[size_ + i] = value;
        size_ += count;
        return first;
    }

    /** Append a raw span; returns the index of its first element. */
    std::size_t
    appendSpan(const T *values, std::size_t count)
    {
        const std::size_t first = size_;
        while (size_ + count > capacity_)
            grow();
        if (count > 0)
            std::memcpy(data_ + size_, values, count * sizeof(T));
        size_ += count;
        return first;
    }

    /** Forget the contents (storage stays with the arena). */
    void
    clear()
    {
        size_ = 0;
    }

  private:
    void
    grow()
    {
        const std::size_t new_capacity =
            capacity_ == 0 ? 16 : capacity_ * 2;
        T *fresh = arena_->allocateArray<T>(new_capacity);
        if (size_ > 0)
            std::memcpy(fresh, data_, size_ * sizeof(T));
        data_ = fresh;
        capacity_ = new_capacity;
    }

    Arena *arena_;
    T *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

} // namespace persim

#endif // PERSIM_COMMON_ARENA_HH
