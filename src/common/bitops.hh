/**
 * @file
 * Alignment and bit-manipulation helpers used throughout persim.
 *
 * Granularity parameters (atomic persist size, dependence tracking
 * size) are required to be powers of two, matching the aligned-block
 * semantics the paper assumes for atomic persists and conflict
 * detection.
 */

#ifndef PERSIM_COMMON_BITOPS_HH
#define PERSIM_COMMON_BITOPS_HH

#include <cstdint>

#include "common/types.hh"

namespace persim {

/** True iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** True iff @p v is a multiple of power-of-two @p align. */
constexpr bool
isAligned(std::uint64_t v, std::uint64_t align)
{
    return (v & (align - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/**
 * Block index of @p addr for power-of-two block size @p block_size.
 * Two addresses conflict at a given granularity iff they map to the
 * same block index.
 */
constexpr std::uint64_t
blockIndex(Addr addr, std::uint64_t block_size)
{
    return addr / block_size;
}

/** Base address of the block containing @p addr. */
constexpr Addr
blockBase(Addr addr, std::uint64_t block_size)
{
    return alignDown(addr, block_size);
}

/**
 * True iff the byte range [addr, addr+size) lies within a single
 * aligned block of @p block_size bytes, i.e. it could persist
 * atomically at that granularity.
 */
constexpr bool
fitsInBlock(Addr addr, std::uint64_t size, std::uint64_t block_size)
{
    return size > 0 &&
        blockIndex(addr, block_size) ==
        blockIndex(addr + size - 1, block_size);
}

} // namespace persim

#endif // PERSIM_COMMON_BITOPS_HH
