#include "common/rng.hh"

#include <cmath>

namespace persim {

std::uint64_t
Rng::splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    PERSIM_REQUIRE(bound > 0, "nextBounded needs a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    PERSIM_REQUIRE(lo <= hi, "nextRange needs lo <= hi");
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextExponential(double mean)
{
    PERSIM_REQUIRE(mean > 0.0, "exponential mean must be positive");
    double u = nextDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace persim
