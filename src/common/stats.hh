/**
 * @file
 * Lightweight statistics accumulators for experiment reporting.
 */

#ifndef PERSIM_COMMON_STATS_HH
#define PERSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace persim {

/**
 * Streaming scalar statistic: count, min, max, mean, and variance via
 * Welford's online algorithm.
 */
class RunningStat
{
  public:
    /** Fold one sample into the statistic. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void reset();

    std::uint64_t count() const { return count_; }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return sum_; }
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fixed-bucket histogram over a [lo, hi) range with uniform buckets,
 * plus underflow/overflow counts.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    double bucketLo(std::size_t i) const;
    double bucketHi(std::size_t i) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Render a compact textual summary, one line per nonempty bucket. */
    std::string render() const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Named counter set, used by engines and devices to expose internal
 * event counts (persists issued, coalesced, conflicts detected, ...).
 */
class CounterSet
{
  public:
    /** Add @p delta to counter @p name, creating it at zero if new. */
    void inc(const std::string &name, std::uint64_t delta = 1);

    /** Value of @p name, or 0 if never incremented. */
    std::uint64_t get(const std::string &name) const;

    /** All counters in name order. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Merge another counter set into this one (summing). */
    void merge(const CounterSet &other);

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace persim

#endif // PERSIM_COMMON_STATS_HH
