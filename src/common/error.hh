/**
 * @file
 * Error reporting for persim.
 *
 * Following the gem5 convention, we distinguish two failure classes:
 *   - fatal(): the condition is the caller's fault (bad configuration,
 *     invalid arguments). Raised as FatalError.
 *   - panic(): the condition indicates a bug in persim itself (a
 *     broken invariant). Raised as PanicError.
 *
 * Both are exceptions rather than process aborts so that unit tests
 * can assert on misuse without forking.
 */

#ifndef PERSIM_COMMON_ERROR_HH
#define PERSIM_COMMON_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace persim {

/** Base class for all persim errors. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/** User-caused error: bad configuration or invalid arguments. */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &msg) : Error(msg) {}
};

/** Internal invariant violation: a bug in persim. */
class PanicError : public Error
{
  public:
    explicit PanicError(const std::string &msg) : Error(msg) {}
};

namespace detail {

/** Build "file:line: what: message" for error text. */
std::string formatError(const char *kind, const char *file, int line,
                        const std::string &msg);

} // namespace detail

/** Raise a FatalError with file/line context. */
[[noreturn]] void fatal(const char *file, int line, const std::string &msg);

/** Raise a PanicError with file/line context. */
[[noreturn]] void panic(const char *file, int line, const std::string &msg);

} // namespace persim

/** Raise FatalError: the user misconfigured or misused the library. */
#define PERSIM_FATAL(msg)                                                  \
    do {                                                                   \
        std::ostringstream oss_;                                           \
        oss_ << msg;                                                       \
        ::persim::fatal(__FILE__, __LINE__, oss_.str());                   \
    } while (0)

/** Raise PanicError: persim itself is broken. */
#define PERSIM_PANIC(msg)                                                  \
    do {                                                                   \
        std::ostringstream oss_;                                           \
        oss_ << msg;                                                       \
        ::persim::panic(__FILE__, __LINE__, oss_.str());                   \
    } while (0)

/** Check an internal invariant; panics with the condition text. */
#define PERSIM_ASSERT(cond, msg)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream oss_;                                       \
            oss_ << "assertion '" #cond "' failed: " << msg;               \
            ::persim::panic(__FILE__, __LINE__, oss_.str());               \
        }                                                                  \
    } while (0)

/** Check a user-facing precondition; fatals with the condition text. */
#define PERSIM_REQUIRE(cond, msg)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream oss_;                                       \
            oss_ << "requirement '" #cond "' violated: " << msg;           \
            ::persim::fatal(__FILE__, __LINE__, oss_.str());               \
        }                                                                  \
    } while (0)

#endif // PERSIM_COMMON_ERROR_HH
