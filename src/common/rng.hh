/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in persim (schedulers, workload generators, failure
 * injection) flows through Rng so that every experiment is exactly
 * reproducible from its seed. The generator is xoshiro256**, which is
 * fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef PERSIM_COMMON_RNG_HH
#define PERSIM_COMMON_RNG_HH

#include <array>
#include <cstdint>

#include "common/error.hh"

namespace persim {

/** Seeded xoshiro256** pseudo-random number generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound), bound > 0, without modulo bias. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Exponentially distributed double with the given mean. */
    double nextExponential(double mean);

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p = 0.5);

    /** Fork an independent stream (for per-thread determinism). */
    Rng split();

  private:
    static std::uint64_t splitmix64(std::uint64_t &state);
    static std::uint64_t rotl(std::uint64_t x, int k);

    std::array<std::uint64_t, 4> state_;
};

} // namespace persim

#endif // PERSIM_COMMON_RNG_HH
