#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hh"

namespace persim {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::min() const
{
    PERSIM_REQUIRE(count_ > 0, "min of empty statistic");
    return min_;
}

double
RunningStat::max() const
{
    PERSIM_REQUIRE(count_ > 0, "max of empty statistic");
    return max_;
}

double
RunningStat::mean() const
{
    PERSIM_REQUIRE(count_ > 0, "mean of empty statistic");
    return mean_;
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    PERSIM_REQUIRE(hi > lo, "histogram range must be nonempty");
    PERSIM_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        ++counts_[idx];
    }
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::bucketHi(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i + 1);
}

std::string
Histogram::render() const
{
    std::ostringstream oss;
    if (underflow_ > 0)
        oss << "  (<" << lo_ << "): " << underflow_ << "\n";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        oss << "  [" << bucketLo(i) << ", " << bucketHi(i) << "): "
            << counts_[i] << "\n";
    }
    if (overflow_ > 0)
        oss << "  (>=" << hi_ << "): " << overflow_ << "\n";
    return oss.str();
}

void
CounterSet::inc(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

std::uint64_t
CounterSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
CounterSet::merge(const CounterSet &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
}

} // namespace persim
