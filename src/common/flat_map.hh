/**
 * @file
 * Open-addressing hash index from u64 keys to dense slot numbers.
 *
 * The timing engine's per-block state is keyed by block index; the
 * generic std::unordered_map<u64, State> costs a node allocation per
 * block and a pointer chase per event. FlatIndexMap separates the two
 * concerns: it maps keys to dense u32 slots via linear probing over a
 * flat power-of-two table (splitmix64-finalizer hash, ~0.7 max load),
 * and the caller keeps the actual state in parallel struct-of-arrays
 * banks indexed by slot. Slots are handed out in insertion order, so
 * iteration order of the banks is deterministic.
 */

#ifndef PERSIM_COMMON_FLAT_MAP_HH
#define PERSIM_COMMON_FLAT_MAP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.hh"

namespace persim {

/** Hash map u64 key -> dense u32 slot; keys must not be ~0ULL. */
class FlatIndexMap
{
  public:
    static constexpr std::uint64_t empty_key = ~0ULL;
    static constexpr std::uint32_t no_slot = ~0U;

    /**
     * @p max_slots bounds the number of distinct keys; inserting past
     * it is a hard FatalError. The default (= no_slot) is the largest
     * safe bound: it keeps every handed-out slot strictly below the
     * no_slot sentinel, so an unchecked `count_++` can never mint a
     * slot that find() would report as "absent" (the sentinel
     * collision this guard exists for — 2^32 keys would previously
     * have wrapped count_ silently).
     */
    explicit FlatIndexMap(std::uint32_t max_slots = no_slot)
        : max_slots_(max_slots)
    {
        rehash(initial_buckets);
    }

    /** Number of distinct keys inserted. */
    std::uint32_t size() const { return count_; }

    /**
     * Slot of @p key, inserting the next dense slot if absent; sets
     * @p inserted so the caller can extend its SoA banks in step.
     */
    std::uint32_t
    findOrInsert(std::uint64_t key, bool &inserted)
    {
        // The sentinel key would silently alias the first empty
        // bucket probed (and corrupt the table if inserted); one
        // never-taken compare is noise next to the hash + probe.
        PERSIM_REQUIRE(key != empty_key,
                       "FlatIndexMap: key ~0 is reserved as the "
                       "empty-bucket sentinel");
        std::size_t at = static_cast<std::size_t>(mix(key)) & mask_;
        while (true) {
            Bucket &bucket = buckets_[at];
            if (bucket.key == key) {
                inserted = false;
                return bucket.slot;
            }
            if (bucket.key == empty_key) {
                // Cold path (first sighting of the key): the capacity
                // bound sits here, off the per-event probe loop.
                if (count_ >= max_slots_)
                    PERSIM_FATAL("FlatIndexMap: slot capacity "
                                 "exhausted (max_slots reached)");
                inserted = true;
                const std::uint32_t slot = count_++;
                bucket.key = key;
                bucket.slot = slot;
                if (count_ * 10 >= (mask_ + 1) * 7)
                    rehash((mask_ + 1) * 2);
                return slot;
            }
            at = (at + 1) & mask_;
        }
    }

    /** Slot of @p key, or no_slot when absent. */
    std::uint32_t
    find(std::uint64_t key) const
    {
        std::size_t at = static_cast<std::size_t>(mix(key)) & mask_;
        while (true) {
            const Bucket &bucket = buckets_[at];
            if (bucket.key == key)
                return bucket.slot;
            if (bucket.key == empty_key)
                return no_slot;
            at = (at + 1) & mask_;
        }
    }

    /** Drop every key; keeps the table storage. */
    void
    clear()
    {
        buckets_.assign(buckets_.size(), Bucket{});
        count_ = 0;
    }

  private:
    static constexpr std::size_t initial_buckets = 64;

    /**
     * Key and slot live side by side (16 bytes) so one probe touches
     * a single cache line rather than one line in a key array plus
     * one in a slot array.
     */
    struct Bucket
    {
        std::uint64_t key = empty_key;
        std::uint32_t slot = no_slot;
    };

    /** splitmix64 finalizer: full-avalanche mix of the key. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    void
    rehash(std::size_t buckets)
    {
        std::vector<Bucket> old = std::move(buckets_);
        buckets_.assign(buckets, Bucket{});
        mask_ = buckets - 1;
        for (const Bucket &bucket : old) {
            if (bucket.key == empty_key)
                continue;
            std::size_t at =
                static_cast<std::size_t>(mix(bucket.key)) & mask_;
            while (buckets_[at].key != empty_key)
                at = (at + 1) & mask_;
            buckets_[at] = bucket;
        }
    }

    std::vector<Bucket> buckets_;
    std::size_t mask_ = 0;
    std::uint32_t count_ = 0;
    std::uint32_t max_slots_ = no_slot;
};

/**
 * FlatIndexMap sharded by the high bits of the key hash.
 *
 * Same contract as FlatIndexMap — u64 keys to dense u32 slots handed
 * out in global insertion order (the dense counter is shared across
 * shards, so slot numbering is exactly what an unsharded map would
 * produce and bank iteration order stays deterministic). The table is
 * split into 2^shard_bits independent probe arrays selected by the
 * top hash bits (the probe offset uses the low bits, so the selector
 * and the probe are independent). Two wins over one big table for the
 * multi-million-block address sets the compiled-trace path interns:
 * rehashes move 1/16th of the keys at a time instead of stalling on
 * one full-table copy, and a shard's probe array stays small enough
 * to live in cache while a run of nearby addresses hammers it.
 */
class ShardedIndexMap
{
  public:
    static constexpr std::uint64_t empty_key = FlatIndexMap::empty_key;
    static constexpr std::uint32_t no_slot = FlatIndexMap::no_slot;
    static constexpr unsigned shard_bits = 4;
    static constexpr std::size_t shard_count =
        std::size_t{1} << shard_bits;

    explicit ShardedIndexMap(std::uint32_t max_slots = no_slot)
        : max_slots_(max_slots)
    {
        for (Shard &shard : shards_)
            shard.rehash(initial_buckets);
    }

    /** Number of distinct keys inserted (across all shards). */
    std::uint32_t size() const { return count_; }

    /**
     * Slot of @p key, inserting the next dense slot if absent; sets
     * @p inserted so the caller can extend its SoA banks in step.
     */
    std::uint32_t
    findOrInsert(std::uint64_t key, bool &inserted)
    {
        PERSIM_REQUIRE(key != empty_key,
                       "ShardedIndexMap: key ~0 is reserved as the "
                       "empty-bucket sentinel");
        const std::uint64_t hash = mix(key);
        Shard &shard = shards_[hash >> (64 - shard_bits)];
        std::size_t at = static_cast<std::size_t>(hash) & shard.mask;
        while (true) {
            Bucket &bucket = shard.buckets[at];
            if (bucket.key == key) {
                inserted = false;
                return bucket.slot;
            }
            if (bucket.key == empty_key) {
                if (count_ >= max_slots_)
                    PERSIM_FATAL("ShardedIndexMap: slot capacity "
                                 "exhausted (max_slots reached)");
                inserted = true;
                const std::uint32_t slot = count_++;
                bucket.key = key;
                bucket.slot = slot;
                if (++shard.count * 10 >= (shard.mask + 1) * 7) {
                    shard.rehash((shard.mask + 1) * 2);
                }
                return slot;
            }
            at = (at + 1) & shard.mask;
        }
    }

    /** Slot of @p key, or no_slot when absent. */
    std::uint32_t
    find(std::uint64_t key) const
    {
        const std::uint64_t hash = mix(key);
        const Shard &shard = shards_[hash >> (64 - shard_bits)];
        std::size_t at = static_cast<std::size_t>(hash) & shard.mask;
        while (true) {
            const Bucket &bucket = shard.buckets[at];
            if (bucket.key == key)
                return bucket.slot;
            if (bucket.key == empty_key)
                return no_slot;
            at = (at + 1) & shard.mask;
        }
    }

    /** Drop every key; keeps the table storage. */
    void
    clear()
    {
        for (Shard &shard : shards_) {
            shard.buckets.assign(shard.buckets.size(), Bucket{});
            shard.count = 0;
        }
        count_ = 0;
    }

  private:
    static constexpr std::size_t initial_buckets = 16;

    struct Bucket
    {
        std::uint64_t key = empty_key;
        std::uint32_t slot = no_slot;
    };

    struct Shard
    {
        std::vector<Bucket> buckets;
        std::size_t mask = 0;
        std::size_t count = 0;

        void
        rehash(std::size_t size)
        {
            std::vector<Bucket> old = std::move(buckets);
            buckets.assign(size, Bucket{});
            mask = size - 1;
            for (const Bucket &bucket : old) {
                if (bucket.key == empty_key)
                    continue;
                std::size_t at = static_cast<std::size_t>(
                                     mix(bucket.key)) &
                    mask;
                while (buckets[at].key != empty_key)
                    at = (at + 1) & mask;
                buckets[at] = bucket;
            }
        }
    };

    /** splitmix64 finalizer, identical to FlatIndexMap's. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    std::array<Shard, shard_count> shards_;
    std::uint32_t count_ = 0;
    std::uint32_t max_slots_ = no_slot;
};

} // namespace persim

#endif // PERSIM_COMMON_FLAT_MAP_HH
