/**
 * @file
 * FNV-1a 64-bit checksum.
 *
 * Used by the compiled-trace container (memtrace/compiled_trace.hh)
 * for header and payload integrity words, and for fingerprinting a
 * source trace's raw bytes so a stale compiled artifact can never be
 * replayed silently. Not cryptographic — it guards against
 * truncation, bit rot, and mismatched inputs, like the rest of the
 * repo's container checksums.
 */

#ifndef PERSIM_COMMON_CHECKSUM_HH
#define PERSIM_COMMON_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace persim {

constexpr std::uint64_t fnv1a64_seed = 0xcbf29ce484222325ULL;

/** Fold @p size bytes at @p data into @p seed (chainable). */
inline std::uint64_t
fnv1a64(const void *data, std::size_t size,
        std::uint64_t seed = fnv1a64_seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = seed;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace persim

#endif // PERSIM_COMMON_CHECKSUM_HH
