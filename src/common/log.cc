#include "common/log.hh"

#include <atomic>
#include <iostream>
#include <mutex>

namespace persim {

namespace {

std::atomic<LogLevel> global_level{LogLevel::Warn};
std::mutex emit_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      default:
        return "?";
    }
}

} // namespace

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> guard(emit_mutex);
    std::cerr << "persim [" << levelName(level) << "] " << msg << "\n";
}

} // namespace persim
