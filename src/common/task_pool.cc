#include "common/task_pool.hh"

#include <memory>

#include "common/error.hh"

namespace persim {

std::uint32_t
TaskPool::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

TaskPool::TaskPool(std::uint32_t workers)
    : workers_(workers > 0 ? workers : defaultWorkers())
{
    threads_.reserve(workers_);
    for (std::uint32_t i = 0; i < workers_; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
TaskPool::submit(Task task)
{
    PERSIM_REQUIRE(task != nullptr, "task pool needs a callable task");
    {
        std::lock_guard<std::mutex> guard(mutex_);
        PERSIM_REQUIRE(!stop_, "submit to a stopping task pool");
        queue_.push_back(std::move(task));
        ++pending_;
    }
    work_cv_.notify_one();
}

void
TaskPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [this] { return pending_ == 0; });
        error = error_;
        error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
TaskPool::parallelFor(std::size_t n,
                      const std::function<void(std::size_t)> &body)
{
    PERSIM_REQUIRE(body != nullptr, "parallelFor needs a callable body");
    if (n == 0)
        return;

    // Private completion latch so a parallelFor is well-defined even
    // alongside unrelated submit() traffic on the same pool. Guarded
    // by the pool mutex so the help-execute loop below can wait for
    // "batch done OR new work" on one condition variable.
    struct Batch
    {
        std::size_t remaining = 0;
        std::exception_ptr error;
    };
    auto batch = std::make_shared<Batch>();
    batch->remaining = n;

    // `body` is captured by reference: this frame outlives the batch
    // because it blocks below until remaining == 0.
    for (std::size_t i = 0; i < n; ++i) {
        submit([this, batch, &body, i] {
            std::exception_ptr error;
            try {
                body(i);
            } catch (...) {
                error = std::current_exception();
            }
            std::lock_guard<std::mutex> guard(mutex_);
            if (error && !batch->error)
                batch->error = error;
            // Completion must wake help-execute loops sleeping on
            // work_cv_ (their batch may just have finished), not only
            // a plain-wait owner. The spurious worker wakeup per
            // batch is noise.
            if (--batch->remaining == 0)
                work_cv_.notify_all();
        });
    }

    // Help execute while the batch is outstanding instead of blocking:
    // a parallelFor issued from inside a pool task would otherwise
    // park the worker it runs on, and nested fan-outs could park every
    // worker with their subtasks still queued. Progress argument: if
    // remaining > 0, some wrapper task is queued (we pop and run it)
    // or running on another thread (it completes and notifies).
    std::unique_lock<std::mutex> lock(mutex_);
    while (batch->remaining != 0) {
        if (!queue_.empty()) {
            Task task = std::move(queue_.back());
            queue_.pop_back();
            lock.unlock();

            std::exception_ptr error;
            try {
                task();
            } catch (...) {
                error = std::current_exception();
            }

            lock.lock();
            if (error && !error_)
                error_ = error;
            if (--pending_ == 0)
                done_cv_.notify_all();
            continue;
        }
        work_cv_.wait(lock, [this, &batch] {
            return batch->remaining == 0 || !queue_.empty();
        });
    }
    lock.unlock();
    if (batch->error)
        std::rethrow_exception(batch->error);
}

void
TaskPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty())
            break; // stop_ set and nothing left to drain.
        Task task = std::move(queue_.back());
        queue_.pop_back();
        lock.unlock();

        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }

        lock.lock();
        if (error && !error_)
            error_ = error;
        if (--pending_ == 0)
            done_cv_.notify_all();
    }
}

} // namespace persim
