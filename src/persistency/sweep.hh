/**
 * @file
 * Parameter sweep helpers.
 *
 * The paper's figures are sweeps over a single knob — persist latency
 * (Figure 3), atomic persist granularity (Figure 4), tracking
 * granularity (Figure 5). These helpers run one trace through a bank
 * of engines, one per knob value (engines are sinks), returning
 * structured series that benches or applications can render or
 * post-process.
 *
 * Two execution strategies, selected by SweepOptions::jobs:
 *
 *  - jobs == 1 (default): the serial baseline — one FanoutSink pass
 *    replays the trace once through every engine on the caller's
 *    thread.
 *  - jobs != 1: each (model, knob) config replays independently on a
 *    TaskPool. Engines share nothing (the trace is read-only), so the
 *    parallel results are bit-identical to the serial pass — asserted
 *    by tests/persistency/sweep_test.cc.
 *
 * granularitySweepFile additionally streams the trace from disk in
 * batched chunks, so sweeps over very large traces never materialize
 * the whole event stream in memory.
 */

#ifndef PERSIM_PERSISTENCY_SWEEP_HH
#define PERSIM_PERSISTENCY_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "memtrace/sink.hh"
#include "persistency/timing_engine.hh"

namespace persim {

/** How a sweep schedules its engine replays. */
struct SweepOptions
{
    /**
     * Analysis workers: 1 = serial single-pass FanoutSink baseline on
     * the calling thread; 0 = one worker per hardware thread; N > 1 =
     * a TaskPool of N workers, one engine replay per task.
     */
    std::uint32_t jobs = 1;

    /** Streaming batch size in events (granularitySweepFile). */
    std::uint64_t chunk_events = 1ULL << 16;

    /**
     * granularitySweepFile only: map the trace file with
     * MmapTraceReader and feed every engine the zero-copy event span
     * in one batch instead of copying chunks through a read buffer.
     * Results are identical to both the streaming and the in-memory
     * paths; peak memory is the map itself (shared, read-only).
     */
    bool mmap = false;

    /**
     * Run every config through the compiled-trace path
     * (persistency/compiled_replay.hh) instead of interpreted replay;
     * bit-identical results. granularitySweepFile maps the trace for
     * this (the compiler needs the whole event span), so compiled
     * sweeps ignore chunk_events.
     */
    bool compiled = false;

    /**
     * Compiled-artifact cache directory (empty = compile in memory
     * each run). Distinct granularities compile under distinct spec
     * fingerprints, so one sweep populates one .ctc per knob value.
     */
    std::string compile_cache;
};

/** One sweep sample: the knob value and the analysis result. */
struct SweepPoint
{
    std::uint64_t value = 0;
    TimingResult result;

    /**
     * Wall time spent analyzing this config, in seconds. Under the
     * serial single-pass strategy the engines share one replay, so
     * every point reports that shared pass time.
     */
    double wall_seconds = 0.0;
};

/** A sweep for one model across knob values. */
struct SweepSeries
{
    ModelConfig model;
    std::vector<SweepPoint> points;
};

/** Which granularity knob a sweep varies. */
enum class GranularityKnob : std::uint8_t {
    AtomicPersist,
    Tracking,
};

/**
 * Analyze @p trace once per (model, granularity) pair; returns one
 * series per model, each with one point per granularity. Results are
 * identical regardless of SweepOptions::jobs.
 */
std::vector<SweepSeries>
granularitySweep(const InMemoryTrace &trace,
                 const std::vector<ModelConfig> &models,
                 const std::vector<std::uint64_t> &granularities,
                 GranularityKnob knob,
                 const SweepOptions &options = {});

/**
 * Same sweep, streaming the trace from @p path in batches of
 * SweepOptions::chunk_events events instead of materializing it:
 * every engine consumes each chunk (in parallel across engines when
 * jobs != 1) before the next chunk is read. Event order per engine is
 * identical to the in-memory replay, so results match it exactly.
 */
std::vector<SweepSeries>
granularitySweepFile(const std::string &path,
                     const std::vector<ModelConfig> &models,
                     const std::vector<std::uint64_t> &granularities,
                     GranularityKnob knob,
                     const SweepOptions &options = {});

/** One latency sample: latency and the achievable ops/s. */
struct LatencyPoint
{
    double latency_ns = 0.0;
    double achievable_rate = 0.0; //!< min(instruction, persist-bound).
    bool persist_bound = false;
};

/**
 * Achievable-rate curve for a fixed critical path (Figure 3): the
 * analysis is latency-independent, so this is pure arithmetic over
 * the given latency grid.
 */
std::vector<LatencyPoint>
latencyCurve(std::uint64_t ops, double critical_path,
             double instruction_rate,
             const std::vector<double> &latencies_ns);

/** Log-spaced latency grid (points_per_decade >= 1). */
std::vector<double> logLatencyGrid(double lo_ns, double hi_ns,
                                   unsigned points_per_decade);

/**
 * The persist latency at which the persist-bound rate equals the
 * instruction rate (the Figure 3 break-even).
 */
double breakEvenLatencyNs(std::uint64_t ops, double critical_path,
                          double instruction_rate);

} // namespace persim

#endif // PERSIM_PERSISTENCY_SWEEP_HH
