/**
 * @file
 * Parameter sweep helpers.
 *
 * The paper's figures are sweeps over a single knob — persist latency
 * (Figure 3), atomic persist granularity (Figure 4), tracking
 * granularity (Figure 5). These helpers run one trace through a bank
 * of engines, one per knob value, in a single pass (engines are
 * sinks), returning structured series that benches or applications
 * can render or post-process.
 */

#ifndef PERSIM_PERSISTENCY_SWEEP_HH
#define PERSIM_PERSISTENCY_SWEEP_HH

#include <cstdint>
#include <vector>

#include "memtrace/sink.hh"
#include "persistency/timing_engine.hh"

namespace persim {

/** One sweep sample: the knob value and the analysis result. */
struct SweepPoint
{
    std::uint64_t value = 0;
    TimingResult result;
};

/** A sweep for one model across knob values. */
struct SweepSeries
{
    ModelConfig model;
    std::vector<SweepPoint> points;
};

/** Which granularity knob a sweep varies. */
enum class GranularityKnob : std::uint8_t {
    AtomicPersist,
    Tracking,
};

/**
 * Analyze @p trace once per (model, granularity) pair in a single
 * replay pass; returns one series per model, each with one point per
 * granularity.
 */
std::vector<SweepSeries>
granularitySweep(const InMemoryTrace &trace,
                 const std::vector<ModelConfig> &models,
                 const std::vector<std::uint64_t> &granularities,
                 GranularityKnob knob);

/** One latency sample: latency and the achievable ops/s. */
struct LatencyPoint
{
    double latency_ns = 0.0;
    double achievable_rate = 0.0; //!< min(instruction, persist-bound).
    bool persist_bound = false;
};

/**
 * Achievable-rate curve for a fixed critical path (Figure 3): the
 * analysis is latency-independent, so this is pure arithmetic over
 * the given latency grid.
 */
std::vector<LatencyPoint>
latencyCurve(std::uint64_t ops, double critical_path,
             double instruction_rate,
             const std::vector<double> &latencies_ns);

/** Log-spaced latency grid (points_per_decade >= 1). */
std::vector<double> logLatencyGrid(double lo_ns, double hi_ns,
                                   unsigned points_per_decade);

/**
 * The persist latency at which the persist-bound rate equals the
 * instruction rate (the Figure 3 break-even).
 */
double breakEvenLatencyNs(std::uint64_t ops, double critical_path,
                          double instruction_rate);

} // namespace persim

#endif // PERSIM_PERSISTENCY_SWEEP_HH
