/**
 * @file
 * Persistency model definitions (paper Sections 4-5).
 *
 * A persistency model determines which persists are ordered with
 * respect to the recovery observer. All models here assume SC as the
 * underlying consistency model and guarantee strong persist
 * atomicity (persists to the same address serialize, and the order
 * agrees with store order).
 */

#ifndef PERSIM_PERSISTENCY_MODEL_HH
#define PERSIM_PERSISTENCY_MODEL_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace persim {

/** Which persistency model governs persist ordering. */
enum class ModelKind : std::uint8_t {
    /**
     * Strict persistency (Section 5.1): persistent memory order
     * equals volatile memory order; under SC every persist is ordered
     * after everything the thread has observed. Persist barriers are
     * redundant and ignored.
     */
    Strict,

    /**
     * Epoch persistency (Section 5.2): persist barriers divide each
     * thread's execution into epochs. Persists within an epoch are
     * concurrent; barrier-separated accesses are ordered; conflicting
     * accesses inherit order (strong persist atomicity).
     */
    Epoch,

    /**
     * Strand persistency (Section 5.3): NewStrand clears all
     * previously observed persist dependences on the thread; ordering
     * is rebuilt minimally via conflicts/strong persist atomicity and
     * persist barriers within the strand.
     */
    Strand,

    /**
     * Px86: the operational persistency model of real x86 persistent
     * memory ("Taming x86-TSO Persistency", PAPERS.md). Stores dirty
     * their cache line but never persist by themselves; clflush /
     * clflushopt / clwb issue an asynchronous per-line persist;
     * sfence / mfence order the weak flushes with surrounding stores;
     * persist barriers replay as their canonical x86 compilation
     * (weak-flush the thread's dirty lines, then sfence). DESIGN.md
     * Section 13 gives the full semantics and the divergence
     * catalogue against epoch persistency.
     */
    Px86,
};

/** Which address space participates in conflict-based ordering. */
enum class ConflictScope : std::uint8_t {
    /**
     * All memory accesses propagate persist order (the paper's epoch
     * persistency: "our definition considers all memory accesses").
     */
    AllAddresses,

    /**
     * Only accesses to the persistent address space propagate persist
     * order, as in BPFS [10].
     */
    PersistentOnly,
};

/** Full configuration of a persistency model instance. */
struct ModelConfig
{
    ModelKind kind = ModelKind::Epoch;

    /**
     * Atomic persist granularity in bytes (power of two >= 8):
     * aligned blocks of this size persist atomically, enabling
     * coalescing (Figure 4).
     */
    std::uint64_t atomic_granularity = 8;

    /**
     * Dependence tracking granularity in bytes (power of two >= 8):
     * accesses conflict when they touch the same aligned block of
     * this size; coarse tracking introduces persistent false sharing
     * (Figure 5).
     */
    std::uint64_t tracking_granularity = 8;

    /** Conflict scope (AllAddresses for our models, see above). */
    ConflictScope conflict_scope = ConflictScope::AllAddresses;

    /**
     * Whether load-before-store conflicts order persists. BPFS's
     * last-writer tracking cannot detect them, so it effectively
     * detects conflicts under TSO rather than SC (Section 5.2);
     * set false to reproduce that variant.
     */
    bool detect_load_before_store = true;

    /** Human-readable model name for reports. */
    std::string name() const;

    /** Validate granularity parameters; fatals when invalid. */
    void validate() const;

    /** @name Preset configurations */
    ///@{
    static ModelConfig strict();
    static ModelConfig epoch();
    static ModelConfig strand();
    /** BPFS-like epoch variant (persistent-only, TSO detection). */
    static ModelConfig bpfs();
    /** Px86: cache-line atomic persists, TSO conflict detection. */
    static ModelConfig px86();
    ///@}
};

} // namespace persim

#endif // PERSIM_PERSISTENCY_MODEL_HH
