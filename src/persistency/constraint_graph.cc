#include "persistency/constraint_graph.hh"

#include <algorithm>
#include <sstream>

#include "common/error.hh"

namespace persim {

ConstraintGraph::NodeId
ConstraintGraph::addNode(const std::string &label)
{
    labels_.push_back(label);
    adjacency_.emplace_back();
    return labels_.size() - 1;
}

void
ConstraintGraph::addEdge(NodeId from, NodeId to, const std::string &why)
{
    PERSIM_REQUIRE(from < labels_.size() && to < labels_.size(),
                   "edge references unknown node");
    adjacency_[from].push_back(Edge{to, why});
    ++edge_count_;
}

std::vector<ConstraintGraph::NodeId>
ConstraintGraph::findCycle() const
{
    enum class Mark : std::uint8_t { White, Grey, Black };
    std::vector<Mark> mark(labels_.size(), Mark::White);
    std::vector<NodeId> parent(labels_.size(), 0);

    // Iterative DFS carrying an explicit stack of (node, next-edge).
    for (NodeId root = 0; root < labels_.size(); ++root) {
        if (mark[root] != Mark::White)
            continue;
        std::vector<std::pair<NodeId, std::size_t>> stack;
        stack.emplace_back(root, 0);
        mark[root] = Mark::Grey;
        while (!stack.empty()) {
            auto &[node, next] = stack.back();
            if (next < adjacency_[node].size()) {
                const NodeId to = adjacency_[node][next].to;
                ++next;
                if (mark[to] == Mark::White) {
                    mark[to] = Mark::Grey;
                    parent[to] = node;
                    stack.emplace_back(to, 0);
                } else if (mark[to] == Mark::Grey) {
                    // Found a back edge: reconstruct the cycle.
                    std::vector<NodeId> cycle{to};
                    NodeId cur = node;
                    while (cur != to) {
                        cycle.push_back(cur);
                        cur = parent[cur];
                    }
                    cycle.push_back(to);
                    std::reverse(cycle.begin() + 1, cycle.end() - 1);
                    return cycle;
                }
            } else {
                mark[node] = Mark::Black;
                stack.pop_back();
            }
        }
    }
    return {};
}

bool
ConstraintGraph::satisfiable() const
{
    return findCycle().empty();
}

std::vector<ConstraintGraph::NodeId>
ConstraintGraph::topologicalOrder() const
{
    std::vector<std::size_t> indegree(labels_.size(), 0);
    for (const auto &edges : adjacency_)
        for (const auto &edge : edges)
            ++indegree[edge.to];

    std::vector<NodeId> ready;
    for (NodeId node = 0; node < labels_.size(); ++node)
        if (indegree[node] == 0)
            ready.push_back(node);

    std::vector<NodeId> order;
    while (!ready.empty()) {
        const NodeId node = ready.back();
        ready.pop_back();
        order.push_back(node);
        for (const auto &edge : adjacency_[node])
            if (--indegree[edge.to] == 0)
                ready.push_back(edge.to);
    }
    PERSIM_REQUIRE(order.size() == labels_.size(),
                   "constraint graph has a cycle; no persist order exists");
    return order;
}

std::string
ConstraintGraph::explain() const
{
    const auto cycle = findCycle();
    if (cycle.empty())
        return "satisfiable: a persist order exists";
    std::ostringstream oss;
    oss << "unsatisfiable constraint cycle: ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        if (i > 0)
            oss << " -> ";
        oss << labels_[cycle[i]];
    }
    return oss.str();
}

} // namespace persim
