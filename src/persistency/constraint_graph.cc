#include "persistency/constraint_graph.hh"

#include <algorithm>
#include <sstream>

#include "common/error.hh"

namespace persim {

ConstraintGraph::NodeId
ConstraintGraph::addNode(const std::string &label)
{
    labels_.push_back(label);
    nodes_.emplace_back();
    return labels_.size() - 1;
}

void
ConstraintGraph::addEdge(NodeId from, NodeId to, const std::string &why)
{
    PERSIM_REQUIRE(from < labels_.size() && to < labels_.size(),
                   "edge references unknown node");
    const auto id = static_cast<std::uint32_t>(edges_.size());
    EdgeCell cell;
    cell.to = to;
    cell.next = no_edge;
    cell.why_off = static_cast<std::uint32_t>(why_blob_.size());
    cell.why_len = static_cast<std::uint32_t>(why.size());
    why_blob_.append(why);
    edges_.push_back(cell);

    NodeCell &node = nodes_[from];
    if (node.head == no_edge)
        node.head = id;
    else
        edges_[node.tail].next = id;
    node.tail = id;
}

std::string_view
ConstraintGraph::edgeWhy(std::size_t index) const
{
    PERSIM_REQUIRE(index < edges_.size(), "unknown edge index");
    const EdgeCell &cell = edges_[index];
    return std::string_view(why_blob_).substr(cell.why_off,
                                              cell.why_len);
}

std::vector<ConstraintGraph::NodeId>
ConstraintGraph::findCycle() const
{
    enum class Mark : std::uint8_t { White, Grey, Black };
    std::vector<Mark> mark(labels_.size(), Mark::White);
    std::vector<NodeId> parent(labels_.size(), 0);

    // Iterative DFS carrying an explicit stack of (node, next edge in
    // its chain); chains preserve insertion order, so the cycle found
    // is the same one the old nested-vector layout produced.
    for (NodeId root = 0; root < labels_.size(); ++root) {
        if (mark[root] != Mark::White)
            continue;
        std::vector<std::pair<NodeId, std::uint32_t>> stack;
        stack.emplace_back(root, nodes_[root].head);
        mark[root] = Mark::Grey;
        while (!stack.empty()) {
            auto &[node, cursor] = stack.back();
            if (cursor != no_edge) {
                const EdgeCell &edge = edges_[cursor];
                const NodeId to = edge.to;
                cursor = edge.next;
                if (mark[to] == Mark::White) {
                    mark[to] = Mark::Grey;
                    parent[to] = node;
                    stack.emplace_back(to, nodes_[to].head);
                } else if (mark[to] == Mark::Grey) {
                    // Found a back edge: reconstruct the cycle.
                    std::vector<NodeId> cycle{to};
                    NodeId cur = node;
                    while (cur != to) {
                        cycle.push_back(cur);
                        cur = parent[cur];
                    }
                    cycle.push_back(to);
                    std::reverse(cycle.begin() + 1, cycle.end() - 1);
                    return cycle;
                }
            } else {
                mark[node] = Mark::Black;
                stack.pop_back();
            }
        }
    }
    return {};
}

bool
ConstraintGraph::satisfiable() const
{
    return findCycle().empty();
}

std::vector<ConstraintGraph::NodeId>
ConstraintGraph::topologicalOrder() const
{
    std::vector<std::size_t> indegree(labels_.size(), 0);
    for (const EdgeCell &edge : edges_)
        ++indegree[edge.to];

    std::vector<NodeId> ready;
    for (NodeId node = 0; node < labels_.size(); ++node)
        if (indegree[node] == 0)
            ready.push_back(node);

    std::vector<NodeId> order;
    while (!ready.empty()) {
        const NodeId node = ready.back();
        ready.pop_back();
        order.push_back(node);
        for (std::uint32_t at = nodes_[node].head; at != no_edge;
             at = edges_[at].next)
            if (--indegree[edges_[at].to] == 0)
                ready.push_back(edges_[at].to);
    }
    PERSIM_REQUIRE(order.size() == labels_.size(),
                   "constraint graph has a cycle; no persist order exists");
    return order;
}

std::string
ConstraintGraph::explain() const
{
    const auto cycle = findCycle();
    if (cycle.empty())
        return "satisfiable: a persist order exists";
    std::ostringstream oss;
    oss << "unsatisfiable constraint cycle: ";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        if (i > 0)
            oss << " -> ";
        oss << labels_[cycle[i]];
    }
    return oss.str();
}

} // namespace persim
