#include "persistency/timing_engine.hh"

#include <algorithm>
#include <iterator>

#include "common/bitops.hh"
#include "common/error.hh"
#include "persistency/analysis_plugin.hh"

namespace persim {

const char *
depSourceName(DepSource source)
{
    switch (source) {
      case DepSource::None:
        return "none";
      case DepSource::ThreadEpoch:
        return "thread_epoch";
      case DepSource::ConflictStore:
        return "conflict_store";
      case DepSource::ConflictLoad:
        return "conflict_load";
      case DepSource::SameBlockSPA:
        return "same_block_spa";
      case DepSource::Coalesced:
        return "coalesced";
    }
    return "unknown";
}

double
TimingResult::criticalPathPerOp() const
{
    return ops > 0 ? critical_path / static_cast<double>(ops)
                   : critical_path;
}

PersistTimingEngine::PersistTimingEngine(const TimingConfig &config)
    : config_(config), rng_(config.seed), track_store_(arena_),
      track_load_(arena_), track_sc_(arena_), track_sc_src_(arena_),
      atomic_last_(arena_), atomic_group_start_(arena_),
      atomic_group_begin_(arena_), px86_ctx_(arena_),
      px86_dirty_head_(arena_), px86_dirty_tail_(arena_),
      px86_mark_(arena_), deps_(arena_)
{
    config_.model.validate();
    PERSIM_REQUIRE(config_.mean_latency > 0.0,
                   "mean persist latency must be positive");
    if (config_.record_deps)
        config_.record_log = true;

    strict_ = config_.model.kind == ModelKind::Strict;
    px86_ = config_.model.kind == ModelKind::Px86;
    track_loads_ = config_.model.detect_load_before_store;
    record_deps_ = config_.record_deps;
    detect_races_ = config_.detect_races;
    all_scope_ =
        config_.model.conflict_scope == ConflictScope::AllAddresses;
    track_shift_ = log2Exact(config_.model.tracking_granularity);
    atomic_shift_ = log2Exact(config_.model.atomic_granularity);
    unified_ = track_shift_ == atomic_shift_;
    has_plugins_ = !config_.plugins.empty();
    fold_barrier_ = !strict_ && !px86_ &&
        config_.mutant != EngineMutant::ElideEpochBarrier;

    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onAttach(config_);
}

PersistTimingEngine::DepSetRef
PersistTimingEngine::DepSetPool::unionOf(DepSetRef a, DepSetRef b)
{
    // Handle-0 invariant (ISSUE 7 audit): spans_[0] is pushed by the
    // constructor as the canonical empty set, so singleton() and the
    // push below always return refs >= 1 and `Tag::deps = 0` can
    // never alias a real allocation. There is no reset path — the
    // pool lives exactly as long as one analysis (the engine is
    // rebuilt per replay), so steady-state reuse cannot recycle
    // handle 0 either. Pinned by DepSetHandleZeroIsAlwaysEmpty in
    // tests/persistency/timing_engine_test.cc.
    if (a == 0 || spans_[a].len == 0)
        return b;
    if (b == 0 || spans_[b].len == 0)
        return a;
    if (a == b)
        return a;
    scratch_.clear();
    std::set_union(data(a), data(a) + size(a), data(b),
                   data(b) + size(b), std::back_inserter(scratch_));
    // Subset short-circuit: mergeInto unions overlapping sets on the
    // hottest path, and chains of same-block persists repeatedly
    // union a set with a subset of itself. When the union equals one
    // side, reuse that handle instead of appending a copy — handles
    // change but set contents never do, so logs are unaffected.
    if (scratch_.size() == size(a))
        return a;
    if (scratch_.size() == size(b))
        return b;
    const std::uint64_t off =
        ids_.appendSpan(scratch_.data(), scratch_.size());
    spans_.push_back(
        Span{off, static_cast<std::uint32_t>(scratch_.size())});
    return static_cast<DepSetRef>(spans_.size() - 1);
}

void
PersistTimingEngine::onEvent(const TraceEvent &event)
{
    process(event);
}

void
PersistTimingEngine::onBatch(const TraceEvent *events, std::size_t count)
{
    // One virtual dispatch per batch; the per-event loop below is
    // direct calls the compiler can inline.
    for (std::size_t i = 0; i < count; ++i)
        process(events[i]);
}

void
PersistTimingEngine::process(const TraceEvent &event)
{
    ++result_.events;
    ThreadState &thread = threadState(event.thread);

    switch (event.kind) {
      case EventKind::Load:
      case EventKind::Store:
      case EventKind::Rmw: {
        // Split the access at 8-byte aligned boundaries so each piece
        // lies within a single tracking block and atomic block (both
        // granularities are >= 8 bytes).
        Addr addr = event.addr;
        unsigned remaining = event.size;
        while (remaining > 0) {
            const auto room = static_cast<unsigned>(
                max_access_size - (addr % max_access_size));
            const unsigned chunk = std::min(remaining, room);
            const unsigned shift =
                static_cast<unsigned>(8 * (addr - event.addr));
            std::uint64_t piece_value = event.value >> shift;
            if (chunk < 8)
                piece_value &= (1ULL << (8 * chunk)) - 1;
            handlePiece(event, thread, addr, chunk, piece_value,
                        event.isWrite());
            addr += chunk;
            remaining -= chunk;
        }
        break;
      }
      case EventKind::PersistBarrier:
      case EventKind::PersistSync:
        handleBarrierEvent(event.seq, event.thread, thread);
        break;
      case EventKind::CacheFlush:
      case EventKind::CacheFlushOpt:
      case EventKind::CacheWriteBack:
        handleFlushEvent(event.kind == EventKind::CacheFlush,
                         event.seq, event.thread, thread, event.addr,
                         no_slot_hint);
        break;
      case EventKind::StoreFence:
      case EventKind::FullFence:
        handleFenceEvent(event.kind == EventKind::FullFence,
                         event.thread, thread);
        break;
      case EventKind::NewStrand:
        handleStrandEvent(event.thread, thread);
        break;
      case EventKind::Marker:
        switch (event.markerCode()) {
          case MarkerCode::OpBegin:
            thread.op = event.value;
            thread.role = PersistRole::None;
            break;
          case MarkerCode::OpEnd:
            ++result_.ops;
            thread.op = no_operation;
            thread.role = PersistRole::None;
            break;
          case MarkerCode::RoleData:
            thread.role = PersistRole::Data;
            break;
          case MarkerCode::RoleHead:
            thread.role = PersistRole::Head;
            break;
          default:
            break;
        }
        break;
      default:
        break;
    }
}

void
PersistTimingEngine::handlePiece(const TraceEvent &event,
                                 ThreadState &thread, Addr addr,
                                 unsigned size, std::uint64_t value,
                                 bool is_write)
{
    const bool persistent = isPersistentAddr(addr);
    const bool in_scope = all_scope_ || persistent;
    if (!in_scope && !detect_races_) {
        // BPFS-style tracking ignores volatile-space accesses and no
        // shadow propagation wants the block state: skip the probe.
        return;
    }

    const std::uint32_t slot = trackSlot(addr >> track_shift_);
    handlePieceAt(slot, no_slot_hint, event.seq, event.thread, thread,
                  addr, size, value, is_write);
}

void
PersistTimingEngine::notifyPersist(SeqNum seq, ThreadId tid, Addr addr,
                                   unsigned size, std::uint64_t value,
                                   double time, double start,
                                   double race_bound, PersistId id,
                                   PersistId binding,
                                   DepSource binding_source,
                                   std::uint64_t op, bool coalesced,
                                   DepSetRef record_ref)
{
    PersistInfo info;
    info.id = id;
    info.seq = seq;
    info.addr = addr;
    info.value = value;
    info.start = start;
    info.time = time;
    info.race_bound = race_bound;
    info.thread = tid;
    info.op = op;
    info.binding = binding;
    info.binding_source = binding_source;
    if (record_deps_ && record_ref != 0) {
        info.deps = deps_.data(record_ref);
        info.dep_count = deps_.size(record_ref);
    }
    info.size = static_cast<std::uint8_t>(size);
    info.coalesced = coalesced;
    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onPersistIssue(info);
    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onPersistComplete(info);
}

void
PersistTimingEngine::notifyAccessPlugins(SeqNum seq, Addr addr,
                                         std::uint64_t value,
                                         ThreadId tid, unsigned size,
                                         bool is_write, bool persistent)
{
    AccessInfo info;
    info.seq = seq;
    info.addr = addr;
    info.value = value;
    info.thread = tid;
    info.size = static_cast<std::uint8_t>(size);
    info.is_write = is_write;
    info.persistent = persistent;
    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onAccess(info);
}

void
PersistTimingEngine::notifyFlushPlugins(SeqNum seq, ThreadId tid,
                                        bool strong, bool line_dirty,
                                        Addr line_base)
{
    FlushInfo info;
    info.seq = seq;
    info.thread = tid;
    info.strong = strong;
    info.line_dirty = line_dirty;
    info.line_base = line_base;
    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onFlush(info);
}

void
PersistTimingEngine::notifyBarrierPlugins(ThreadId tid)
{
    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onFence(FenceEvent::PersistBarrier, tid);
}

void
PersistTimingEngine::notifyFencePlugins(bool full, ThreadId tid)
{
    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onFence(full ? FenceEvent::FullFence
                             : FenceEvent::StoreFence,
                        tid);
}

void
PersistTimingEngine::notifyStrandPlugins(ThreadId tid)
{
    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onStrand(tid);
}

PersistRecord
PersistTimingEngine::materializeRecord(const StagedRecord &staged) const
{
    PersistRecord record;
    record.id = staged.id;
    record.seq = staged.seq;
    record.addr = staged.addr;
    record.size = staged.size;
    record.value = staged.value;
    record.time = staged.time;
    record.start = staged.start;
    record.thread = staged.thread;
    record.op = staged.op;
    record.role = staged.role;
    record.binding = staged.binding;
    record.binding_source = staged.binding_source;
    if (staged.deps != 0)
        record.deps.assign(deps_.data(staged.deps),
                           deps_.data(staged.deps) +
                               deps_.size(staged.deps));
    return record;
}

void
PersistTimingEngine::flushStage() const
{
    if (stage_count_ == 0)
        return;
    if (defer_log_) {
        deferred_.insert(deferred_.end(), stage_.data(),
                         stage_.data() + stage_count_);
        stage_count_ = 0;
        return;
    }
    // Grow geometrically: reserve(size + batch) on every flush pins
    // capacity to exactly that, reallocating the whole log every 256
    // records — O(persists^2) record moves on big traces.
    if (log_.capacity() < log_.size() + stage_count_)
        log_.reserve(std::max(log_.size() + stage_count_,
                              2 * log_.capacity()));
    for (std::size_t i = 0; i < stage_count_; ++i)
        log_.push_back(materializeRecord(stage_[i]));
    stage_count_ = 0;
}

void
PersistTimingEngine::materializeDeferred() const
{
    if (deferred_.empty())
        return;
    log_.reserve(log_.size() + deferred_.size());
    for (const StagedRecord &staged : deferred_)
        log_.push_back(materializeRecord(staged));
    deferred_.clear();
    deferred_.shrink_to_fit();
}

void
PersistTimingEngine::onFinish()
{
    if (px86_) {
        // Tail audit: dirty pieces no flush ever covered. They are
        // simply not durable — deliberately not persisted here, so
        // recovery analyses see exactly what the hardware promises.
        const std::size_t lines = px86_dirty_head_.size();
        for (std::size_t i = 0; i < lines; ++i)
            for (std::uint32_t idx = px86_dirty_head_[i];
                 idx != no_piece; idx = px86_pieces_[idx].next)
                ++result_.unflushed;
    }
    flushStage();
    if (has_plugins_)
        for (AnalysisPlugin *plugin : config_.plugins)
            plugin->onTraceEnd(result_);
}

} // namespace persim
