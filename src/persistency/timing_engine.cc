#include "persistency/timing_engine.hh"

#include <algorithm>
#include <iterator>

#include "common/bitops.hh"
#include "common/error.hh"

namespace persim {

const char *
depSourceName(DepSource source)
{
    switch (source) {
      case DepSource::None:
        return "none";
      case DepSource::ThreadEpoch:
        return "thread_epoch";
      case DepSource::ConflictStore:
        return "conflict_store";
      case DepSource::ConflictLoad:
        return "conflict_load";
      case DepSource::SameBlockSPA:
        return "same_block_spa";
      case DepSource::Coalesced:
        return "coalesced";
    }
    return "unknown";
}

double
TimingResult::criticalPathPerOp() const
{
    return ops > 0 ? critical_path / static_cast<double>(ops)
                   : critical_path;
}

PersistTimingEngine::PersistTimingEngine(const TimingConfig &config)
    : config_(config), rng_(config.seed)
{
    config_.model.validate();
    PERSIM_REQUIRE(config_.mean_latency > 0.0,
                   "mean persist latency must be positive");
    if (config_.record_deps)
        config_.record_log = true;
}

std::shared_ptr<const std::vector<PersistId>>
PersistTimingEngine::unionDeps(
    const std::shared_ptr<const std::vector<PersistId>> &a,
    const std::shared_ptr<const std::vector<PersistId>> &b)
{
    if (!a || a->empty())
        return b;
    if (!b || b->empty())
        return a;
    auto merged = std::make_shared<std::vector<PersistId>>();
    merged->reserve(a->size() + b->size());
    std::set_union(a->begin(), a->end(), b->begin(), b->end(),
                   std::back_inserter(*merged));
    return merged;
}

PersistTimingEngine::Tag
PersistTimingEngine::mergeTag(const Tag &a, const Tag &b)
{
    if (a.src == invalid_persist)
        return b;
    if (b.src == invalid_persist)
        return a;
    if (a.block == b.block && a.t == b.t) {
        // Same coalescing group: keep the newest witness.
        Tag merged = a;
        merged.src = std::max(a.src, b.src);
        merged.oth = std::max(a.oth, b.oth);
        merged.deps = unionDeps(a.deps, b.deps);
        return merged;
    }
    const Tag &winner = (b.t > a.t) ? b : a;
    const Tag &loser = (b.t > a.t) ? a : b;
    Tag merged = winner;
    merged.oth = std::max({winner.oth, loser.t, loser.oth});
    merged.deps = unionDeps(winner.deps, loser.deps);
    return merged;
}

double
PersistTimingEngine::nextTime(double base)
{
    if (config_.clock == ClockMode::Levels)
        return base + 1.0;
    return base + rng_.nextExponential(config_.mean_latency);
}

PersistTimingEngine::ThreadState &
PersistTimingEngine::threadState(ThreadId tid)
{
    if (tid >= threads_.size())
        threads_.resize(tid + 1);
    return threads_[tid];
}

void
PersistTimingEngine::onEvent(const TraceEvent &event)
{
    ++result_.events;
    ThreadState &thread = threadState(event.thread);
    const ModelKind kind = config_.model.kind;

    switch (event.kind) {
      case EventKind::Load:
      case EventKind::Store:
      case EventKind::Rmw: {
        // Split the access at 8-byte aligned boundaries so each piece
        // lies within a single tracking block and atomic block (both
        // granularities are >= 8 bytes).
        Addr addr = event.addr;
        unsigned remaining = event.size;
        while (remaining > 0) {
            const auto room = static_cast<unsigned>(
                max_access_size - (addr % max_access_size));
            const unsigned chunk = std::min(remaining, room);
            const unsigned shift =
                static_cast<unsigned>(8 * (addr - event.addr));
            std::uint64_t piece_value = event.value >> shift;
            if (chunk < 8)
                piece_value &= (1ULL << (8 * chunk)) - 1;
            handlePiece(event, addr, chunk, piece_value,
                        event.isRead(), event.isWrite());
            addr += chunk;
            remaining -= chunk;
        }
        break;
      }
      case EventKind::PersistBarrier:
      case EventKind::PersistSync:
        ++result_.barriers;
        if (kind != ModelKind::Strict)
            thread.epoch_dep = mergeTag(thread.epoch_dep,
                                        thread.accum_dep);
        break;
      case EventKind::NewStrand:
        ++result_.strands;
        if (kind == ModelKind::Strand) {
            thread.epoch_dep = Tag{};
            thread.accum_dep = Tag{};
        }
        break;
      case EventKind::Marker:
        switch (event.markerCode()) {
          case MarkerCode::OpBegin:
            thread.op = event.value;
            thread.role = PersistRole::None;
            break;
          case MarkerCode::OpEnd:
            ++result_.ops;
            thread.op = no_operation;
            thread.role = PersistRole::None;
            break;
          case MarkerCode::RoleData:
            thread.role = PersistRole::Data;
            break;
          case MarkerCode::RoleHead:
            thread.role = PersistRole::Head;
            break;
          default:
            break;
        }
        break;
      default:
        break;
    }
}

void
PersistTimingEngine::handlePiece(const TraceEvent &event, Addr addr,
                                 unsigned size, std::uint64_t value,
                                 bool is_read, bool is_write)
{
    (void)is_read;
    const ModelConfig &model = config_.model;
    TrackState &track = track_[blockIndex(addr, model.tracking_granularity)];
    ThreadState &thread = threadState(event.thread);

    if (config_.detect_races) {
        // Shadow SC propagation (all addresses, regardless of the
        // model's conflict scope): inherit the latest foreign persist
        // SC-ordered before the previous access of this block.
        if (track.sc_src != invalid_thread &&
            track.sc_src != event.thread &&
            track.sc_tag.t > thread.shadow.t)
            thread.shadow = track.sc_tag;
    }

    const bool in_scope =
        model.conflict_scope == ConflictScope::AllAddresses ||
        isPersistentAddr(addr);
    if (!in_scope) {
        // BPFS-style tracking ignores volatile-space accesses for the
        // *model*; the SC shadow above still records ground truth.
        if (config_.detect_races)
            recordScTag(track, thread, event.thread);
        return;
    }

    const bool strict = model.kind == ModelKind::Strict;

    if (!is_write) {
        // Load: conflicts with prior stores to the block; persists
        // ordered before those stores must precede this thread's
        // post-barrier persists (immediately, under strict).
        if (strict) {
            thread.epoch_dep = mergeTag(thread.epoch_dep, track.store_tag);
        } else {
            thread.accum_dep = mergeTag(thread.accum_dep, track.store_tag);
        }
        // Record the load so later conflicting stores inherit order
        // (the load-before-store conflicts BPFS cannot detect).
        if (model.detect_load_before_store)
            track.load_tag = mergeTag(track.load_tag, thread.epoch_dep);
        if (config_.detect_races)
            recordScTag(track, thread, event.thread);
        return;
    }

    // Store or RMW: conflicts with prior loads and stores to the block.
    Tag dep = thread.epoch_dep;
    DepSource dep_source = dep.src != invalid_persist
        ? DepSource::ThreadEpoch : DepSource::None;
    auto fold = [&dep, &dep_source](const Tag &cand, DepSource kind) {
        if (cand.src != invalid_persist && cand.t > dep.t)
            dep_source = kind;
        dep = mergeTag(dep, cand);
    };
    fold(track.store_tag, DepSource::ConflictStore);
    if (model.detect_load_before_store)
        fold(track.load_tag, DepSource::ConflictLoad);

    if (isPersistentAddr(addr)) {
        persistPiece(event, thread, track, addr, size, value, dep,
                     dep_source, dep.src);
        if (config_.detect_races)
            recordScTag(track, thread, event.thread);
        return;
    }

    // Volatile store: inherit the conflict order; record that persists
    // already barrier-ordered before this store precede it.
    if (strict) {
        thread.epoch_dep = mergeTag(thread.epoch_dep, dep);
    } else {
        thread.accum_dep = mergeTag(thread.accum_dep, dep);
    }
    track.store_tag = mergeTag(track.store_tag, thread.epoch_dep);
    if (config_.detect_races)
        recordScTag(track, thread, event.thread);
}

void
PersistTimingEngine::recordScTag(TrackState &track, ThreadState &thread,
                                 ThreadId tid)
{
    // The SC tag carries the latest persist ordered before this
    // access in volatile memory order: the thread's inherited shadow
    // or its own latest persist, whichever is later.
    const Tag &best = thread.own_persist.t > thread.shadow.t
        ? thread.own_persist : thread.shadow;
    if (best.src != invalid_persist && best.t > track.sc_tag.t) {
        track.sc_tag = best;
        track.sc_src = tid;
    }
}

PersistTimingEngine::Tag
PersistTimingEngine::persistPiece(const TraceEvent &event,
                                  ThreadState &thread, TrackState &track,
                                  Addr addr, unsigned size,
                                  std::uint64_t value, const Tag &dep,
                                  DepSource dep_source, PersistId dep_src_id)
{
    const ModelConfig &model = config_.model;
    const std::uint64_t block =
        blockIndex(addr, model.atomic_granularity);
    AtomicState &atomic = atomic_[block];

    const PersistId id = next_persist_id_++;
    ++result_.persists;

    // A persist coalesces into its block's pending atomic persist iff
    // every dependence outside that pending group completes strictly
    // before it: either the whole dependence summary is earlier, or
    // its top dependence *is* the pending group and the rest (oth)
    // is earlier.
    bool coalesce = atomic.valid &&
        (dep.t < atomic.last.t ||
         (dep.block == block && dep.t == atomic.last.t &&
          dep.oth < atomic.last.t));
    if (coalesce && config_.coalesce_window > 0 &&
        id - atomic.group_start > config_.coalesce_window) {
        // The pending persist has drained (finite buffering): the new
        // persist must be issued separately.
        coalesce = false;
        ++result_.window_blocked;
    }

    double time = 0.0;
    double start = 0.0;
    double race_bound = 0.0;
    PersistId binding = invalid_persist;
    DepSource binding_source = DepSource::None;
    if (coalesce) {
        time = atomic.last.t;
        start = atomic.group_begin;
        binding = atomic.last.src;
        binding_source = DepSource::Coalesced;
        ++result_.coalesced;
        race_bound = time;
    } else {
        double base = dep.t;
        binding = dep_src_id;
        binding_source = dep_source;
        if (atomic.valid && atomic.last.t > dep.t) {
            // Strong persist atomicity: serialize after the previous
            // persist to this block.
            base = atomic.last.t;
            binding = atomic.last.src;
            binding_source = DepSource::SameBlockSPA;
        }
        time = nextTime(base);
        start = base;
        race_bound = base;
    }

    if (config_.detect_races) {
        // Every persist in this persist's constraint cone has a time
        // no later than race_bound (times are monotone along
        // constraint edges), so an SC-preceding foreign persist past
        // that bound is provably unordered with it: a persist-epoch
        // race. (Races below the bound can go unreported; the check
        // is sound, not complete.)
        if (thread.shadow.src != invalid_persist &&
            thread.shadow.t > race_bound) {
            ++result_.races;
            if (race_samples_.size() < 16) {
                RaceSample sample;
                sample.seq = event.seq;
                sample.thread = event.thread;
                sample.persist = id;
                sample.foreign = thread.shadow.src;
                race_samples_.push_back(sample);
            }
        }
    }

    std::shared_ptr<const std::vector<PersistId>> record_deps;
    if (config_.record_deps) {
        record_deps = dep.deps;
        if (!coalesce && atomic.valid) {
            // Strong persist atomicity: the previous group to this
            // block is a direct predecessor even when it is not the
            // timing argmax (same-word persists never reorder).
            auto one = std::make_shared<std::vector<PersistId>>(
                std::vector<PersistId>{atomic.last.src});
            record_deps = unionDeps(record_deps, one);
        }
    }

    Tag out{time, id, block, 0.0, nullptr};
    if (config_.record_deps)
        out.deps = std::make_shared<const std::vector<PersistId>>(
            std::vector<PersistId>{id});
    atomic.last = out;
    atomic.valid = true;
    if (!coalesce) {
        atomic.group_start = id;
        atomic.group_begin = start;
    }

    if (config_.detect_races && time > thread.own_persist.t)
        thread.own_persist = Tag{time, id, block, 0.0, nullptr};

    track.store_tag = mergeTag(track.store_tag, out);
    const bool strict = model.kind == ModelKind::Strict;
    if (strict) {
        thread.epoch_dep = mergeTag(thread.epoch_dep, out);
    } else {
        thread.accum_dep = mergeTag(thread.accum_dep, out);
    }

    result_.critical_path = std::max(result_.critical_path, time);

    if (config_.record_log) {
        PersistRecord record;
        record.id = id;
        record.seq = event.seq;
        record.addr = addr;
        record.size = static_cast<std::uint8_t>(size);
        record.value = value;
        record.time = time;
        record.start = start;
        record.thread = event.thread;
        record.op = thread.op;
        record.role = thread.role;
        record.binding = binding;
        record.binding_source = binding_source;
        if (record_deps)
            record.deps = *record_deps;
        log_.push_back(record);
    }
    return out;
}

void
PersistTimingEngine::onFinish()
{
    // Nothing to finalize: results accumulate incrementally.
}

} // namespace persim
