#include "persistency/timing_engine.hh"

#include <algorithm>
#include <iterator>

#include "common/bitops.hh"
#include "common/error.hh"
#include "persistency/analysis_plugin.hh"

namespace persim {

const char *
depSourceName(DepSource source)
{
    switch (source) {
      case DepSource::None:
        return "none";
      case DepSource::ThreadEpoch:
        return "thread_epoch";
      case DepSource::ConflictStore:
        return "conflict_store";
      case DepSource::ConflictLoad:
        return "conflict_load";
      case DepSource::SameBlockSPA:
        return "same_block_spa";
      case DepSource::Coalesced:
        return "coalesced";
    }
    return "unknown";
}

double
TimingResult::criticalPathPerOp() const
{
    return ops > 0 ? critical_path / static_cast<double>(ops)
                   : critical_path;
}

PersistTimingEngine::PersistTimingEngine(const TimingConfig &config)
    : config_(config), rng_(config.seed), track_store_(arena_),
      track_load_(arena_), track_sc_(arena_), track_sc_src_(arena_),
      atomic_last_(arena_), atomic_group_start_(arena_),
      atomic_group_begin_(arena_), px86_ctx_(arena_),
      px86_dirty_head_(arena_), px86_dirty_tail_(arena_),
      px86_mark_(arena_), deps_(arena_)
{
    config_.model.validate();
    PERSIM_REQUIRE(config_.mean_latency > 0.0,
                   "mean persist latency must be positive");
    if (config_.record_deps)
        config_.record_log = true;

    strict_ = config_.model.kind == ModelKind::Strict;
    px86_ = config_.model.kind == ModelKind::Px86;
    track_loads_ = config_.model.detect_load_before_store;
    record_deps_ = config_.record_deps;
    detect_races_ = config_.detect_races;
    all_scope_ =
        config_.model.conflict_scope == ConflictScope::AllAddresses;
    track_shift_ = log2Exact(config_.model.tracking_granularity);
    atomic_shift_ = log2Exact(config_.model.atomic_granularity);
    unified_ = track_shift_ == atomic_shift_;
    has_plugins_ = !config_.plugins.empty();
    fold_barrier_ = !strict_ && !px86_ &&
        config_.mutant != EngineMutant::ElideEpochBarrier;

    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onAttach(config_);
}

PersistTimingEngine::DepSetRef
PersistTimingEngine::DepSetPool::unionOf(DepSetRef a, DepSetRef b)
{
    // Handle-0 invariant (ISSUE 7 audit): spans_[0] is pushed by the
    // constructor as the canonical empty set, so singleton() and the
    // push below always return refs >= 1 and `Tag::deps = 0` can
    // never alias a real allocation. There is no reset path — the
    // pool lives exactly as long as one analysis (the engine is
    // rebuilt per replay), so steady-state reuse cannot recycle
    // handle 0 either. Pinned by DepSetHandleZeroIsAlwaysEmpty in
    // tests/persistency/timing_engine_test.cc.
    if (a == 0 || spans_[a].len == 0)
        return b;
    if (b == 0 || spans_[b].len == 0)
        return a;
    if (a == b)
        return a;
    scratch_.clear();
    std::set_union(data(a), data(a) + size(a), data(b),
                   data(b) + size(b), std::back_inserter(scratch_));
    // Subset short-circuit: mergeInto unions overlapping sets on the
    // hottest path, and chains of same-block persists repeatedly
    // union a set with a subset of itself. When the union equals one
    // side, reuse that handle instead of appending a copy — handles
    // change but set contents never do, so logs are unaffected.
    if (scratch_.size() == size(a))
        return a;
    if (scratch_.size() == size(b))
        return b;
    const std::uint64_t off =
        ids_.appendSpan(scratch_.data(), scratch_.size());
    spans_.push_back(
        Span{off, static_cast<std::uint32_t>(scratch_.size())});
    return static_cast<DepSetRef>(spans_.size() - 1);
}

void
PersistTimingEngine::onEvent(const TraceEvent &event)
{
    process(event);
}

void
PersistTimingEngine::onBatch(const TraceEvent *events, std::size_t count)
{
    // One virtual dispatch per batch; the per-event loop below is
    // direct calls the compiler can inline.
    for (std::size_t i = 0; i < count; ++i)
        process(events[i]);
}

void
PersistTimingEngine::process(const TraceEvent &event)
{
    ++result_.events;
    ThreadState &thread = threadState(event.thread);

    switch (event.kind) {
      case EventKind::Load:
      case EventKind::Store:
      case EventKind::Rmw: {
        // Split the access at 8-byte aligned boundaries so each piece
        // lies within a single tracking block and atomic block (both
        // granularities are >= 8 bytes).
        Addr addr = event.addr;
        unsigned remaining = event.size;
        while (remaining > 0) {
            const auto room = static_cast<unsigned>(
                max_access_size - (addr % max_access_size));
            const unsigned chunk = std::min(remaining, room);
            const unsigned shift =
                static_cast<unsigned>(8 * (addr - event.addr));
            std::uint64_t piece_value = event.value >> shift;
            if (chunk < 8)
                piece_value &= (1ULL << (8 * chunk)) - 1;
            handlePiece(event, thread, addr, chunk, piece_value,
                        event.isWrite());
            addr += chunk;
            remaining -= chunk;
        }
        break;
      }
      case EventKind::PersistBarrier:
      case EventKind::PersistSync:
        handleBarrierEvent(event.seq, event.thread, thread);
        break;
      case EventKind::CacheFlush:
      case EventKind::CacheFlushOpt:
      case EventKind::CacheWriteBack:
        handleFlushEvent(event.kind == EventKind::CacheFlush,
                         event.seq, event.thread, thread, event.addr,
                         no_slot_hint);
        break;
      case EventKind::StoreFence:
      case EventKind::FullFence:
        handleFenceEvent(event.kind == EventKind::FullFence,
                         event.thread, thread);
        break;
      case EventKind::NewStrand:
        handleStrandEvent(event.thread, thread);
        break;
      case EventKind::Marker:
        switch (event.markerCode()) {
          case MarkerCode::OpBegin:
            thread.op = event.value;
            thread.role = PersistRole::None;
            break;
          case MarkerCode::OpEnd:
            ++result_.ops;
            thread.op = no_operation;
            thread.role = PersistRole::None;
            break;
          case MarkerCode::RoleData:
            thread.role = PersistRole::Data;
            break;
          case MarkerCode::RoleHead:
            thread.role = PersistRole::Head;
            break;
          default:
            break;
        }
        break;
      default:
        break;
    }
}

std::uint32_t
PersistTimingEngine::trackSlot(std::uint64_t key)
{
    bool inserted = false;
    const std::uint32_t slot = track_index_.findOrInsert(key, inserted);
    if (inserted) {
        track_store_.push_back(Tag{});
        if (track_loads_)
            track_load_.push_back(Tag{});
        if (detect_races_) {
            track_sc_.push_back(Tag{});
            track_sc_src_.push_back(invalid_thread);
        }
        if (unified_) {
            // Shared index: the atomic bank grows in step, so a
            // persist piece never needs a second hash probe.
            atomic_last_.push_back(Tag{});
            atomic_group_start_.push_back(invalid_persist);
            atomic_group_begin_.push_back(0.0);
            if (px86_) {
                px86_ctx_.push_back(Tag{});
                px86_dirty_head_.push_back(no_piece);
                px86_dirty_tail_.push_back(no_piece);
                px86_mark_.push_back(invalid_thread);
            }
        }
    }
    return slot;
}

std::uint32_t
PersistTimingEngine::atomicSlot(std::uint64_t block)
{
    bool inserted = false;
    const std::uint32_t aslot = atomic_index_.findOrInsert(block, inserted);
    if (inserted) {
        atomic_last_.push_back(Tag{});
        atomic_group_start_.push_back(invalid_persist);
        atomic_group_begin_.push_back(0.0);
        if (px86_) {
            px86_ctx_.push_back(Tag{});
            px86_dirty_head_.push_back(no_piece);
            px86_dirty_tail_.push_back(no_piece);
            px86_mark_.push_back(invalid_thread);
        }
    }
    return aslot;
}

void
PersistTimingEngine::handlePiece(const TraceEvent &event,
                                 ThreadState &thread, Addr addr,
                                 unsigned size, std::uint64_t value,
                                 bool is_write)
{
    const bool persistent = isPersistentAddr(addr);
    const bool in_scope = all_scope_ || persistent;
    if (!in_scope && !detect_races_) {
        // BPFS-style tracking ignores volatile-space accesses and no
        // shadow propagation wants the block state: skip the probe.
        return;
    }

    const std::uint32_t slot = trackSlot(addr >> track_shift_);
    handlePieceAt(slot, no_slot_hint, event.seq, event.thread, thread,
                  addr, size, value, is_write);
}

void
PersistTimingEngine::handlePieceAt(std::uint32_t track_slot,
                                   std::uint32_t aslot_hint, SeqNum seq,
                                   ThreadId tid, ThreadState &thread,
                                   Addr addr, unsigned size,
                                   std::uint64_t value, bool is_write)
{
    const std::uint32_t slot = track_slot;
    const bool persistent = isPersistentAddr(addr);
    const bool in_scope = all_scope_ || persistent;

    if (has_plugins_) {
        AccessInfo info;
        info.seq = seq;
        info.addr = addr;
        info.value = value;
        info.thread = tid;
        info.size = static_cast<std::uint8_t>(size);
        info.is_write = is_write;
        info.persistent = persistent;
        for (AnalysisPlugin *plugin : config_.plugins)
            plugin->onAccess(info);
    }

    if (detect_races_) {
        // Shadow SC propagation (all addresses, regardless of the
        // model's conflict scope): inherit the latest foreign persist
        // SC-ordered before the previous access of this block.
        const ThreadId sc_src = track_sc_src_[slot];
        if (sc_src != invalid_thread && sc_src != tid &&
            track_sc_[slot].t > thread.shadow.t)
            thread.shadow = track_sc_[slot];
    }

    if (!in_scope) {
        // The SC shadow above still records ground truth.
        recordScTag(slot, thread, tid);
        return;
    }

    if (!is_write) {
        // Load: conflicts with prior stores to the block; persists
        // ordered before those stores must precede this thread's
        // post-barrier persists (immediately, under strict — and
        // under Px86, where the published facts are already durable
        // before the store was visible, so no fence is needed to
        // inherit them).
        mergeInto(strict_ || px86_ ? thread.epoch_dep
                                   : thread.accum_dep,
                  track_store_[slot]);
        // Record the load so later conflicting stores inherit order
        // (the load-before-store conflicts BPFS cannot detect).
        if (track_loads_)
            mergeInto(track_load_[slot], thread.epoch_dep);
        if (detect_races_)
            recordScTag(slot, thread, tid);
        return;
    }

    // Store or RMW: conflicts with prior loads and stores to the block.
    Tag dep = thread.epoch_dep;
    DepSource dep_source = dep.src != invalid_persist
        ? DepSource::ThreadEpoch : DepSource::None;
    {
        const Tag &cand = track_store_[slot];
        if (cand.src != invalid_persist && cand.t > dep.t)
            dep_source = DepSource::ConflictStore;
        mergeInto(dep, cand);
    }
    if (track_loads_) {
        const Tag &cand = track_load_[slot];
        if (cand.src != invalid_persist && cand.t > dep.t)
            dep_source = DepSource::ConflictLoad;
        mergeInto(dep, cand);
    }

    if (persistent) {
        if (px86_) {
            // Px86: the store only dirties its cache line; it becomes
            // durable when a later flush covers the line. The thread's
            // completed clflushes are strongly ordered before it, and
            // so is its fence-folded flush history: a store issued
            // after an sfence cannot persist ahead of the persists
            // that sfence ordered, no matter which thread eventually
            // flushes the line (false sharing flushes foreign pieces).
            Tag pdep = dep;
            mergeInto(pdep, thread.strong_dep);
            mergeInto(pdep, thread.epoch_dep);
            px86StorePiece(slot, aslot_hint, tid, thread, addr, size,
                           value, pdep);
        } else {
            persistPieceAt(seq, tid, thread, slot, aslot_hint, addr,
                           size, value, dep, dep_source);
        }
        if (detect_races_)
            recordScTag(slot, thread, tid);
        return;
    }

    // Volatile store: inherit the conflict order; record that persists
    // already barrier-ordered before this store precede it. (Under
    // Px86 the inherited facts are already durable, hence epoch_dep.)
    mergeInto(strict_ || px86_ ? thread.epoch_dep : thread.accum_dep,
              dep);
    mergeInto(track_store_[slot], thread.epoch_dep);
    if (px86_)
        mergeInto(track_store_[slot], thread.strong_dep);
    if (detect_races_)
        recordScTag(slot, thread, tid);
}

void
PersistTimingEngine::recordScTag(std::uint32_t track_slot,
                                 ThreadState &thread, ThreadId tid)
{
    // The SC tag carries the latest persist ordered before this
    // access in volatile memory order: the thread's inherited shadow
    // or its own latest persist, whichever is later.
    const Tag &best = thread.own_persist.t > thread.shadow.t
        ? thread.own_persist : thread.shadow;
    if (best.src != invalid_persist && best.t > track_sc_[track_slot].t) {
        track_sc_[track_slot] = best;
        track_sc_src_[track_slot] = tid;
    }
}

void
PersistTimingEngine::persistPieceAt(SeqNum seq, ThreadId tid,
                                    ThreadState &thread,
                                    std::uint32_t track_slot,
                                    std::uint32_t aslot_hint, Addr addr,
                                    unsigned size, std::uint64_t value,
                                    const Tag &dep, DepSource dep_source)
{
    const std::uint64_t block = addr >> atomic_shift_;
    std::uint32_t aslot;
    if (unified_) {
        // Same granularity: the tracking probe already found (or
        // created) this block's atomic slot.
        aslot = track_slot;
    } else if (aslot_hint != no_slot_hint) {
        // Segment replay pre-resolved the slot during the stitch.
        aslot = aslot_hint;
    } else {
        aslot = atomicSlot(block);
    }
    // Copy, not reference: the banks never grow below, but a copy of
    // five hot words also dodges aliasing with the writes at the end.
    const Tag last = atomic_last_[aslot];
    const bool valid = last.src != invalid_persist;

    const PersistId id = next_persist_id_++;
    ++result_.persists;

    // A persist coalesces into its block's pending atomic persist iff
    // every dependence outside that pending group completes strictly
    // before it: either the whole dependence summary is earlier, or
    // its top dependence *is* the pending group and the rest (oth)
    // is earlier.
    bool coalesce = valid && !px86_fresh_group_ &&
        (dep.t < last.t ||
         (dep.block == block && dep.t == last.t && dep.oth < last.t));
    if (coalesce && config_.coalesce_window > 0 &&
        id - atomic_group_start_[aslot] > config_.coalesce_window) {
        // The pending persist has drained (finite buffering): the new
        // persist must be issued separately.
        coalesce = false;
        ++result_.window_blocked;
    }

    double time = 0.0;
    double start = 0.0;
    double race_bound = 0.0;
    PersistId binding = invalid_persist;
    DepSource binding_source = DepSource::None;
    if (coalesce) {
        time = last.t;
        start = atomic_group_begin_[aslot];
        binding = last.src;
        binding_source = DepSource::Coalesced;
        ++result_.coalesced;
        race_bound = time;
    } else {
        double base = dep.t;
        binding = dep.src;
        binding_source = dep_source;
        if (valid && last.t > dep.t) {
            // Strong persist atomicity: serialize after the previous
            // persist to this block.
            base = last.t;
            binding = last.src;
            binding_source = DepSource::SameBlockSPA;
        }
        time = nextTime(base);
        start = base;
        race_bound = base;
    }

    if (detect_races_) {
        // Every persist in this persist's constraint cone has a time
        // no later than race_bound (times are monotone along
        // constraint edges), so an SC-preceding foreign persist past
        // that bound is provably unordered with it: a persist-epoch
        // race. (Races below the bound can go unreported; the check
        // is sound, not complete.)
        if (thread.shadow.src != invalid_persist &&
            thread.shadow.t > race_bound) {
            ++result_.races;
            if (race_samples_.size() < 16) {
                RaceSample sample;
                sample.seq = seq;
                sample.thread = tid;
                sample.persist = id;
                sample.foreign = thread.shadow.src;
                race_samples_.push_back(sample);
            }
        }
    }

    DepSetRef record_ref = 0;
    if (record_deps_) {
        record_ref = dep.deps;
        if (!coalesce && valid) {
            // Strong persist atomicity: the previous group to this
            // block is a direct predecessor even when it is not the
            // timing argmax (same-word persists never reorder).
            record_ref =
                deps_.unionOf(record_ref, deps_.singleton(last.src));
        }
    }

    Tag out;
    out.t = time;
    out.oth = 0.0;
    out.src = id;
    out.block = block;
    out.deps = record_deps_ ? deps_.singleton(id) : 0;
    atomic_last_[aslot] = out;
    if (!coalesce) {
        atomic_group_start_[aslot] = id;
        atomic_group_begin_[aslot] = start;
    }

    if (detect_races_ && time > thread.own_persist.t) {
        Tag own;
        own.t = time;
        own.src = id;
        own.block = block;
        thread.own_persist = own;
    }

    if (px86_flush_route_ != nullptr) {
        // Px86 flush persist: durability routes to the flushing
        // thread's pending-order tag (strong_dep for clflush,
        // accum_dep for clflushopt/clwb); nothing is published to
        // readers or to the thread's epoch until a fence orders it.
        mergeInto(*px86_flush_route_, out);
    } else {
        mergeInto(track_store_[track_slot], out);
        mergeInto(strict_ ? thread.epoch_dep : thread.accum_dep, out);
    }

    result_.critical_path = std::max(result_.critical_path, time);

    if (has_plugins_)
        notifyPersist(seq, tid, addr, size, value, time, start,
                      race_bound, id, binding, binding_source,
                      thread.op, coalesce, record_ref);

    if (config_.record_log) {
        if (stage_count_ == stage_capacity)
            flushStage();
        StagedRecord &staged = stage_[stage_count_++];
        staged.id = id;
        staged.seq = seq;
        staged.addr = addr;
        staged.value = value;
        staged.time = time;
        staged.start = start;
        staged.op = thread.op;
        staged.binding = binding;
        staged.thread = tid;
        staged.deps = record_ref;
        staged.role = thread.role;
        staged.binding_source = binding_source;
        staged.size = static_cast<std::uint8_t>(size);
    }
}

void
PersistTimingEngine::px86StorePiece(std::uint32_t track_slot,
                                    std::uint32_t aslot_hint,
                                    ThreadId tid, ThreadState &thread,
                                    Addr addr, unsigned size,
                                    std::uint64_t value, const Tag &dep)
{
    std::uint32_t aslot;
    if (unified_)
        aslot = track_slot;
    else if (aslot_hint != no_slot_hint)
        aslot = aslot_hint;
    else
        aslot = atomicSlot(addr >> atomic_shift_);

    mergeInto(px86_ctx_[aslot], dep);

    const std::uint32_t tail = px86_dirty_tail_[aslot];
    if (tail != no_piece && px86_pieces_[tail].addr == addr &&
        px86_pieces_[tail].size == size) {
        // Same-word overwrite in cache: only the newest value can
        // ever reach persistent memory from this line.
        px86_pieces_[tail].value = value;
    } else {
        std::uint32_t idx;
        if (px86_free_ != no_piece) {
            idx = px86_free_;
            px86_free_ = px86_pieces_[idx].next;
        } else {
            idx = static_cast<std::uint32_t>(px86_pieces_.size());
            px86_pieces_.push_back(DirtyPiece{});
        }
        DirtyPiece &piece = px86_pieces_[idx];
        piece.addr = addr;
        piece.value = value;
        piece.next = no_piece;
        piece.tslot = track_slot;
        piece.size = static_cast<std::uint8_t>(size);
        if (tail == no_piece)
            px86_dirty_head_[aslot] = idx;
        else
            px86_pieces_[tail].next = idx;
        px86_dirty_tail_[aslot] = idx;
    }

    // Durable-before-visible: a thread that later conflicts with this
    // cell inherits the store's persist dependences — they were
    // durable before the store became visible.
    mergeInto(track_store_[track_slot], dep);

    if (px86_mark_[aslot] != tid) {
        px86_mark_[aslot] = tid;
        thread.dirty_lines.push_back(aslot);
    }
}

void
PersistTimingEngine::handleFlushAt(bool strong, SeqNum seq,
                                   ThreadId tid, ThreadState &thread,
                                   Addr addr, std::uint32_t aslot_hint)
{
    std::uint32_t aslot;
    if (aslot_hint != no_slot_hint)
        aslot = aslot_hint;
    else if (unified_)
        aslot = trackSlot(addr >> track_shift_);
    else
        aslot = atomicSlot(addr >> atomic_shift_);

    std::uint32_t idx = px86_dirty_head_[aslot];

    if (has_plugins_) {
        FlushInfo info;
        info.seq = seq;
        info.thread = tid;
        info.strong = strong;
        info.line_dirty = idx != no_piece;
        if (idx != no_piece)
            // Dirty: the first dirty piece names the line (barrier
            // legs arrive with addr 0, so the event address cannot).
            info.line_base = (px86_pieces_[idx].addr >> atomic_shift_)
                             << atomic_shift_;
        else if (addr != 0)
            info.line_base = (addr >> atomic_shift_) << atomic_shift_;
        for (AnalysisPlugin *plugin : config_.plugins)
            plugin->onFlush(info);
    }

    Tag &pending = strong ? thread.strong_dep : thread.accum_dep;
    if (idx == no_piece) {
        // Clean line: nothing to persist. But same-line flushes are
        // ordered with each other, so flushing a line whose dirty
        // pieces a FOREIGN thread's flush already took must still
        // fold that line's in-flight persists into this thread's
        // pending flush order — the foreign clflushopt may never be
        // fenced, and without this fold a barrier over a stolen line
        // would publish later stores ahead of the stolen data
        // (observed as a flag-ahead-of-data cut under false sharing).
        mergeInto(pending, px86_ctx_[aslot]);
        return;
    }

    // The flush's persist is ordered after everything the line's
    // dirty stores depended on plus the thread's fence-ordered
    // history; clflush is additionally ordered after the thread's
    // earlier clflushes.
    Tag dep = thread.epoch_dep;
    mergeInto(dep, px86_ctx_[aslot]);
    if (strong)
        mergeInto(dep, thread.strong_dep);
    const DepSource dep_source = dep.src != invalid_persist
        ? DepSource::ThreadEpoch : DepSource::None;

    // Collect the persists' out-tags locally: they become the
    // thread's pending flush order AND the line's persist history
    // (px86_ctx_ survives the clear so later same-line flushes and
    // stores order after this one).
    Tag out_acc;
    px86_flush_route_ = &out_acc;
    bool first = true;
    while (idx != no_piece) {
        const DirtyPiece piece = px86_pieces_[idx];
        px86_fresh_group_ = first;
        first = false;
        persistPieceAt(seq, tid, thread, piece.tslot, aslot,
                       piece.addr, piece.size, piece.value, dep,
                       dep_source);
        px86_pieces_[idx].next = px86_free_;
        px86_free_ = idx;
        idx = piece.next;
    }
    px86_fresh_group_ = false;
    px86_flush_route_ = nullptr;
    mergeInto(pending, out_acc);

    px86_dirty_head_[aslot] = no_piece;
    px86_dirty_tail_[aslot] = no_piece;
    px86_ctx_[aslot] = out_acc;
    px86_mark_[aslot] = invalid_thread;
}

void
PersistTimingEngine::px86Fence(ThreadState &thread)
{
    if (config_.mutant == EngineMutant::ElideEpochBarrier)
        return;
    mergeInto(thread.epoch_dep, thread.accum_dep);
    mergeInto(thread.epoch_dep, thread.strong_dep);
}

void
PersistTimingEngine::px86Barrier(SeqNum seq, ThreadId tid,
                                 ThreadState &thread)
{
    // Canonical epoch->x86 compilation: weak-flush every line the
    // thread dirtied since its last barrier, then sfence. Flushing a
    // line someone else already flushed is a clean-line no-op.
    for (const std::uint32_t aslot : thread.dirty_lines)
        handleFlushAt(false, seq, tid, thread, 0, aslot);
    thread.dirty_lines.clear();
    px86Fence(thread);
}

void
PersistTimingEngine::handleBarrierEvent(SeqNum seq, ThreadId tid,
                                        ThreadState &thread)
{
    ++result_.barriers;
    if (px86_)
        px86Barrier(seq, tid, thread);
    else if (fold_barrier_)
        mergeInto(thread.epoch_dep, thread.accum_dep);
    if (has_plugins_)
        for (AnalysisPlugin *plugin : config_.plugins)
            plugin->onFence(FenceEvent::PersistBarrier, tid);
}

void
PersistTimingEngine::handleFenceEvent(bool full, ThreadId tid,
                                      ThreadState &thread)
{
    ++result_.fences;
    if (px86_)
        px86Fence(thread);
    else if (fold_barrier_)
        // Under the SC models an x86 fence acts as the persist
        // barrier of its canonical epoch counterpart.
        mergeInto(thread.epoch_dep, thread.accum_dep);
    if (has_plugins_)
        for (AnalysisPlugin *plugin : config_.plugins)
            plugin->onFence(full ? FenceEvent::FullFence
                                 : FenceEvent::StoreFence,
                            tid);
}

void
PersistTimingEngine::handleFlushEvent(bool strong, SeqNum seq,
                                      ThreadId tid, ThreadState &thread,
                                      Addr addr,
                                      std::uint32_t aslot_hint)
{
    // Under the SC-persistency models a flush carries no ordering
    // (persists are implicit in stores); only Px86 acts on it, and
    // only Px86 reports it to plugins.
    ++result_.flushes;
    if (px86_)
        handleFlushAt(strong, seq, tid, thread, addr, aslot_hint);
}

void
PersistTimingEngine::handleStrandEvent(ThreadId tid, ThreadState &thread)
{
    ++result_.strands;
    if (config_.model.kind == ModelKind::Strand) {
        thread.epoch_dep = Tag{};
        thread.accum_dep = Tag{};
    }
    if (has_plugins_)
        for (AnalysisPlugin *plugin : config_.plugins)
            plugin->onStrand(tid);
}

void
PersistTimingEngine::notifyPersist(SeqNum seq, ThreadId tid, Addr addr,
                                   unsigned size, std::uint64_t value,
                                   double time, double start,
                                   double race_bound, PersistId id,
                                   PersistId binding,
                                   DepSource binding_source,
                                   std::uint64_t op, bool coalesced,
                                   DepSetRef record_ref)
{
    PersistInfo info;
    info.id = id;
    info.seq = seq;
    info.addr = addr;
    info.value = value;
    info.start = start;
    info.time = time;
    info.race_bound = race_bound;
    info.thread = tid;
    info.op = op;
    info.binding = binding;
    info.binding_source = binding_source;
    if (record_deps_ && record_ref != 0) {
        info.deps = deps_.data(record_ref);
        info.dep_count = deps_.size(record_ref);
    }
    info.size = static_cast<std::uint8_t>(size);
    info.coalesced = coalesced;
    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onPersistIssue(info);
    for (AnalysisPlugin *plugin : config_.plugins)
        plugin->onPersistComplete(info);
}

PersistRecord
PersistTimingEngine::materializeRecord(const StagedRecord &staged) const
{
    PersistRecord record;
    record.id = staged.id;
    record.seq = staged.seq;
    record.addr = staged.addr;
    record.size = staged.size;
    record.value = staged.value;
    record.time = staged.time;
    record.start = staged.start;
    record.thread = staged.thread;
    record.op = staged.op;
    record.role = staged.role;
    record.binding = staged.binding;
    record.binding_source = staged.binding_source;
    if (staged.deps != 0)
        record.deps.assign(deps_.data(staged.deps),
                           deps_.data(staged.deps) +
                               deps_.size(staged.deps));
    return record;
}

void
PersistTimingEngine::flushStage() const
{
    if (stage_count_ == 0)
        return;
    if (defer_log_) {
        deferred_.insert(deferred_.end(), stage_.data(),
                         stage_.data() + stage_count_);
        stage_count_ = 0;
        return;
    }
    // Grow geometrically: reserve(size + batch) on every flush pins
    // capacity to exactly that, reallocating the whole log every 256
    // records — O(persists^2) record moves on big traces.
    if (log_.capacity() < log_.size() + stage_count_)
        log_.reserve(std::max(log_.size() + stage_count_,
                              2 * log_.capacity()));
    for (std::size_t i = 0; i < stage_count_; ++i)
        log_.push_back(materializeRecord(stage_[i]));
    stage_count_ = 0;
}

void
PersistTimingEngine::materializeDeferred() const
{
    if (deferred_.empty())
        return;
    log_.reserve(log_.size() + deferred_.size());
    for (const StagedRecord &staged : deferred_)
        log_.push_back(materializeRecord(staged));
    deferred_.clear();
    deferred_.shrink_to_fit();
}

void
PersistTimingEngine::onFinish()
{
    if (px86_) {
        // Tail audit: dirty pieces no flush ever covered. They are
        // simply not durable — deliberately not persisted here, so
        // recovery analyses see exactly what the hardware promises.
        const std::size_t lines = px86_dirty_head_.size();
        for (std::size_t i = 0; i < lines; ++i)
            for (std::uint32_t idx = px86_dirty_head_[i];
                 idx != no_piece; idx = px86_pieces_[idx].next)
                ++result_.unflushed;
    }
    flushStage();
    if (has_plugins_)
        for (AnalysisPlugin *plugin : config_.plugins)
            plugin->onTraceEnd(result_);
}

} // namespace persim
