#include "persistency/classify.hh"

#include <sstream>

#include "common/error.hh"

namespace persim {

const char *
constraintClassName(ConstraintClass cls)
{
    switch (cls) {
      case ConstraintClass::Unconstrained:
        return "unconstrained";
      case ConstraintClass::RequiredDataToHead:
        return "required_data_to_head";
      case ConstraintClass::RequiredHeadToHead:
        return "required_head_to_head";
      case ConstraintClass::UnnecessaryIntraOp:
        return "unnecessary_intra_op (A)";
      case ConstraintClass::UnnecessaryInterOp:
        return "unnecessary_inter_op (B)";
      case ConstraintClass::Coalesced:
        return "coalesced";
      case ConstraintClass::Other:
        return "other";
    }
    return "unknown";
}

ConstraintClass
classifyBinding(const PersistLog &log, const PersistRecord &record)
{
    if (record.binding == invalid_persist)
        return ConstraintClass::Unconstrained;
    if (record.binding_source == DepSource::Coalesced)
        return ConstraintClass::Coalesced;
    PERSIM_REQUIRE(record.binding < log.size(),
                   "binding id out of range; log incomplete?");
    const PersistRecord &pred = log[record.binding];

    const bool same_op =
        record.op != no_operation && record.op == pred.op;
    const bool head_to_head = pred.role == PersistRole::Head &&
        record.role == PersistRole::Head;

    if (head_to_head)
        return ConstraintClass::RequiredHeadToHead;
    if (same_op) {
        if (pred.role == PersistRole::Data &&
            record.role == PersistRole::Head)
            return ConstraintClass::RequiredDataToHead;
        if (pred.role == PersistRole::Data &&
            record.role == PersistRole::Data)
            return ConstraintClass::UnnecessaryIntraOp;
        return ConstraintClass::Other;
    }
    if (record.op != no_operation && pred.op != no_operation)
        return ConstraintClass::UnnecessaryInterOp;
    return ConstraintClass::Other;
}

ConstraintCensus
censusOf(const PersistLog &log)
{
    ConstraintCensus census;
    for (const auto &record : log) {
        const auto cls = classifyBinding(log, record);
        ++census.counts[static_cast<std::size_t>(cls)];
    }
    return census;
}

std::uint64_t
ConstraintCensus::total() const
{
    std::uint64_t sum = 0;
    for (auto c : counts)
        sum += c;
    return sum;
}

std::uint64_t
ConstraintCensus::required() const
{
    return of(ConstraintClass::RequiredDataToHead) +
        of(ConstraintClass::RequiredHeadToHead);
}

std::uint64_t
ConstraintCensus::unnecessary() const
{
    return of(ConstraintClass::UnnecessaryIntraOp) +
        of(ConstraintClass::UnnecessaryInterOp);
}

std::string
ConstraintCensus::render() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < 7; ++i) {
        if (counts[i] == 0)
            continue;
        oss << "  " << constraintClassName(static_cast<ConstraintClass>(i))
            << ": " << counts[i] << "\n";
    }
    return oss.str();
}

} // namespace persim
