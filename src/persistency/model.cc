#include "persistency/model.hh"

#include <sstream>

#include "common/bitops.hh"
#include "common/error.hh"

namespace persim {

std::string
ModelConfig::name() const
{
    std::ostringstream oss;
    switch (kind) {
      case ModelKind::Strict:
        oss << "strict";
        break;
      case ModelKind::Epoch:
        oss << "epoch";
        break;
      case ModelKind::Strand:
        oss << "strand";
        break;
    }
    if (conflict_scope == ConflictScope::PersistentOnly)
        oss << "-ponly";
    if (!detect_load_before_store)
        oss << "-tso";
    if (atomic_granularity != 8)
        oss << "-a" << atomic_granularity;
    if (tracking_granularity != 8)
        oss << "-t" << tracking_granularity;
    return oss.str();
}

void
ModelConfig::validate() const
{
    PERSIM_REQUIRE(isPowerOfTwo(atomic_granularity) &&
                   atomic_granularity >= 8,
                   "atomic persist granularity must be a power of two >= 8");
    PERSIM_REQUIRE(isPowerOfTwo(tracking_granularity) &&
                   tracking_granularity >= 8,
                   "tracking granularity must be a power of two >= 8");
}

ModelConfig
ModelConfig::strict()
{
    ModelConfig config;
    config.kind = ModelKind::Strict;
    return config;
}

ModelConfig
ModelConfig::epoch()
{
    ModelConfig config;
    config.kind = ModelKind::Epoch;
    return config;
}

ModelConfig
ModelConfig::strand()
{
    ModelConfig config;
    config.kind = ModelKind::Strand;
    return config;
}

ModelConfig
ModelConfig::bpfs()
{
    ModelConfig config;
    config.kind = ModelKind::Epoch;
    config.conflict_scope = ConflictScope::PersistentOnly;
    config.detect_load_before_store = false;
    return config;
}

} // namespace persim
