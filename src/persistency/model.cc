#include "persistency/model.hh"

#include <sstream>

#include "common/bitops.hh"
#include "common/error.hh"
#include "memtrace/event.hh"

namespace persim {

std::string
ModelConfig::name() const
{
    std::ostringstream oss;
    switch (kind) {
      case ModelKind::Strict:
        oss << "strict";
        break;
      case ModelKind::Epoch:
        oss << "epoch";
        break;
      case ModelKind::Strand:
        oss << "strand";
        break;
      case ModelKind::Px86:
        oss << "px86";
        break;
    }
    // Suffixes mark deviations from the kind's own preset: Px86's
    // natural state is cache-line atomicity with TSO conflict
    // detection, so the plain preset still names itself "px86".
    const bool is_px86 = kind == ModelKind::Px86;
    const std::uint64_t default_atomic = is_px86 ? cache_line_bytes : 8;
    const bool default_lbs = !is_px86;
    if (conflict_scope == ConflictScope::PersistentOnly)
        oss << "-ponly";
    if (detect_load_before_store != default_lbs)
        oss << (detect_load_before_store ? "-lbs" : "-tso");
    if (atomic_granularity != default_atomic)
        oss << "-a" << atomic_granularity;
    if (tracking_granularity != 8)
        oss << "-t" << tracking_granularity;
    return oss.str();
}

void
ModelConfig::validate() const
{
    PERSIM_REQUIRE(isPowerOfTwo(atomic_granularity) &&
                   atomic_granularity >= 8,
                   "atomic persist granularity must be a power of two >= 8");
    PERSIM_REQUIRE(isPowerOfTwo(tracking_granularity) &&
                   tracking_granularity >= 8,
                   "tracking granularity must be a power of two >= 8");
}

ModelConfig
ModelConfig::strict()
{
    ModelConfig config;
    config.kind = ModelKind::Strict;
    return config;
}

ModelConfig
ModelConfig::epoch()
{
    ModelConfig config;
    config.kind = ModelKind::Epoch;
    return config;
}

ModelConfig
ModelConfig::strand()
{
    ModelConfig config;
    config.kind = ModelKind::Strand;
    return config;
}

ModelConfig
ModelConfig::px86()
{
    ModelConfig config;
    config.kind = ModelKind::Px86;
    // Flushes persist whole cache lines; that line is the atomic
    // persist unit.
    config.atomic_granularity = cache_line_bytes;
    // Load-before-store conflicts are an SC-persistency notion; x86
    // propagates durable facts only along observed (TSO) order.
    config.detect_load_before_store = false;
    return config;
}

ModelConfig
ModelConfig::bpfs()
{
    ModelConfig config;
    config.kind = ModelKind::Epoch;
    config.conflict_scope = ConflictScope::PersistentOnly;
    config.detect_load_before_store = false;
    return config;
}

} // namespace persim
