/**
 * @file
 * Per-persist records produced by the timing engine.
 *
 * When log recording is enabled, the timing engine emits one record
 * per atomic persist piece: its address/size/value (for recovery
 * image reconstruction), its assigned completion time, its operation
 * attribution (for per-insert analysis and Figure 2 constraint
 * classification), and its binding dependence (the argmax constraint
 * that determined its time).
 */

#ifndef PERSIM_PERSISTENCY_PERSIST_LOG_HH
#define PERSIM_PERSISTENCY_PERSIST_LOG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace persim {

/** Sentinel for "no operation attribution". */
constexpr std::uint64_t no_operation = ~0ULL;

/** Role of a persist within its operation (set via Role* markers). */
enum class PersistRole : std::uint8_t {
    None = 0,
    Data = 1, //!< Entry payload (the queue's data segment).
    Head = 2, //!< Commit pointer (the queue's head).
};

/** Which rule supplied a persist's binding (argmax) dependence. */
enum class DepSource : std::uint8_t {
    None = 0,          //!< No predecessor: first-level persist.
    ThreadEpoch = 1,   //!< Thread/strand state (barrier-ordered or,
                       //!< under strict persistency, program order).
    ConflictStore = 2, //!< Tag left by a conflicting store.
    ConflictLoad = 3,  //!< Tag left by a conflicting load
                       //!< (load-before-store conflict).
    SameBlockSPA = 4,  //!< Strong persist atomicity with the previous
                       //!< persist to the same atomic block.
    Coalesced = 5,     //!< Merged into the previous persist to the
                       //!< same atomic block.
};

/** Human-readable name of a DepSource. */
const char *depSourceName(DepSource source);

/** One atomic persist piece with its timing and provenance. */
struct PersistRecord
{
    PersistId id = invalid_persist;   //!< Dense id (== log index).
    SeqNum seq = 0;                   //!< Trace event sequence number.
    Addr addr = 0;                    //!< Piece start address.
    std::uint8_t size = 0;            //!< Piece size (1..8 bytes).
    std::uint64_t value = 0;          //!< Bytes written (low `size`).
    double time = 0.0;                //!< Completion time/level.

    /**
     * When the persist's device write begins: the completion time of
     * its binding dependence (for a coalesced piece, of its group's
     * founding persist). [start, time) is the in-flight window the
     * device-fault model (src/nvram/faults.hh) tears persists inside;
     * the baseline recovery observer ignores it.
     */
    double start = 0.0;
    ThreadId thread = 0;              //!< Issuing thread.
    std::uint64_t op = no_operation;  //!< Enclosing operation id.
    PersistRole role = PersistRole::None;
    PersistId binding = invalid_persist; //!< Argmax predecessor.
    DepSource binding_source = DepSource::None;

    /**
     * Complete direct-dependence set (only with
     * TimingConfig::record_deps): ids of every persist this one is
     * constrained to follow, not just the binding argmax. For a
     * coalesced persist these are the dependences *external* to its
     * coalescing group (membership in the group itself is recorded
     * through the Coalesced binding chain). Exhaustive crash-state
     * enumeration (src/recovery/cuts.hh) needs the full set: the
     * binding alone would admit cuts the model forbids.
     */
    std::vector<PersistId> deps;
};

/** The full persist log of one analyzed execution. */
using PersistLog = std::vector<PersistRecord>;

} // namespace persim

#endif // PERSIM_PERSISTENCY_PERSIST_LOG_HH
