#include "persistency/compiled_replay.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/bitops.hh"
#include "common/checksum.hh"
#include "common/error.hh"
#include "persistency/segment_compile.hh"

namespace persim {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The compile-relevant slice of a TimingConfig (mirrors the engine
    constructor's unpacking, segment_replay.cc does the same via an
    engine instance). */
CompileSpec
specFor(const TimingConfig &config)
{
    config.model.validate();
    CompileSpec spec;
    spec.track_shift = log2Exact(config.model.tracking_granularity);
    spec.atomic_shift = log2Exact(config.model.atomic_granularity);
    spec.unified = spec.track_shift == spec.atomic_shift;
    spec.all_scope =
        config.model.conflict_scope == ConflictScope::AllAddresses;
    spec.detect_races = config.detect_races;
    spec.px86 = config.model.kind == ModelKind::Px86;
    return spec;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * Replay-side validation of facts the format layer cannot know:
 * every Piece op must carry a resolved tracking slot and a 1..8-byte
 * size (the executors index banks with them unchecked), and the
 * thread column must stay within the header's thread count. Runs
 * once when CompiledTraceHandle loads an artifact — not per replay —
 * so the executors trust views that reach them (compiler output is
 * correct by construction). Returns the thread count the executors
 * should size their state by.
 */
std::uint32_t
validateForReplay(const CompiledTraceView &view)
{
    std::uint32_t max_thread = 0;
    for (std::uint64_t i = 0; i < view.micro_ops; ++i) {
        if (view.kind[i] == MicroOp::Piece) {
            PERSIM_REQUIRE(view.tslot[i] != compiled_no_slot,
                           "corrupt compiled trace op " << i
                               << ": piece without a tracking slot");
            PERSIM_REQUIRE(view.size[i] >= 1 && view.size[i] <= 8,
                           "corrupt compiled trace op " << i
                               << ": piece size "
                               << unsigned(view.size[i])
                               << " outside 1..8");
        }
        if (view.thread[i] > max_thread)
            max_thread = view.thread[i];
    }
    const std::uint32_t need =
        view.micro_ops > 0 ? max_thread + 1 : 0;
    PERSIM_REQUIRE(need <= view.thread_count || view.thread_count == 0,
                   "corrupt compiled trace: thread "
                       << max_thread << " exceeds the header's "
                       << view.thread_count << "-thread count");
    return std::max(need, view.thread_count);
}

/**
 * Dependence summary for the fast path: Tag with the persist-id
 * witness and dep-set handle elided. In the eligible configurations
 * nothing observable reads Tag::src (no logs, no deps, no races, no
 * plugins, no window), so tag validity degenerates to t > 0 and the
 * tag fits 24 bytes — 40% less bank traffic than the engine's Tag.
 */
struct FastTag
{
    double t = 0.0;
    double oth = 0.0;
    std::uint64_t block = ~0ULL;
};

/** mergeInto() minus the src/deps bookkeeping (same case analysis). */
inline void
fmerge(FastTag &dst, const FastTag &cand)
{
    if (cand.t == 0.0)
        return;
    if (dst.t == 0.0) {
        dst = cand;
        return;
    }
    if (dst.block == cand.block && dst.t == cand.t) {
        if (cand.oth > dst.oth)
            dst.oth = cand.oth;
        return;
    }
    if (cand.t > dst.t) {
        double oth = dst.t > dst.oth ? dst.t : dst.oth;
        if (cand.oth > oth)
            oth = cand.oth;
        dst.t = cand.t;
        dst.oth = oth;
        dst.block = cand.block;
        return;
    }
    double oth = cand.t > cand.oth ? cand.t : cand.oth;
    if (dst.oth > oth)
        oth = dst.oth;
    dst.oth = oth;
}

} // namespace

std::uint64_t
compiledSpecFingerprint(const TimingConfig &config)
{
    const CompileSpec spec = specFor(config);
    const std::uint8_t facts[8] = {
        static_cast<std::uint8_t>(compiled_trace_version),
        static_cast<std::uint8_t>(spec.track_shift),
        static_cast<std::uint8_t>(spec.atomic_shift),
        static_cast<std::uint8_t>(spec.unified),
        static_cast<std::uint8_t>(spec.all_scope),
        static_cast<std::uint8_t>(spec.detect_races),
        static_cast<std::uint8_t>(spec.px86),
        0,
    };
    return fnv1a64(facts, sizeof(facts));
}

bool
compiledFastEligible(const TimingConfig &config)
{
    return config.model.kind != ModelKind::Px86 &&
        config.clock == ClockMode::Levels &&
        config.mutant == EngineMutant::None && !config.record_log &&
        !config.record_deps && !config.detect_races &&
        config.coalesce_window == 0 && config.plugins.empty() &&
        config.model.conflict_scope == ConflictScope::AllAddresses &&
        config.model.detect_load_before_store &&
        config.model.tracking_granularity ==
            config.model.atomic_granularity;
}

CompiledTrace
compileTrace(const TraceEvent *events, std::size_t count,
             const TimingConfig &config, std::uint32_t jobs,
             TaskPool *pool)
{
    PERSIM_REQUIRE(events != nullptr || count == 0,
                   "compileTrace needs a valid event range");
    const CompileSpec spec = specFor(config);

    if (jobs == 0)
        jobs = TaskPool::defaultWorkers();

    // Same segmentation policy as segment_replay.cc.
    constexpr std::uint64_t min_segment = 16384;
    const std::uint64_t seg = std::max<std::uint64_t>(
        min_segment, count / (4ULL * jobs + 1));
    const std::size_t segments =
        count == 0 ? 0 : (count + seg - 1) / seg;

    std::unique_ptr<TaskPool> owned;
    if (pool == nullptr && jobs > 1 && segments > 1) {
        owned = std::make_unique<TaskPool>(jobs);
        pool = owned.get();
    }

    std::vector<SegmentProgram> programs(segments);
    const auto compile_one = [&](std::size_t i) {
        const std::size_t begin = i * seg;
        const std::size_t n = std::min<std::size_t>(seg, count - begin);
        compileSegment(events + begin, n, spec, programs[i]);
    };
    if (jobs <= 1 || segments <= 1 || pool == nullptr) {
        for (std::size_t i = 0; i < segments; ++i)
            compile_one(i);
    } else {
        pool->parallelFor(segments, compile_one);
    }

    // Serial renumber: local slots -> one global first-touch order,
    // exactly the order the engine's own interning would produce when
    // replaying the events serially. The generic executor re-interns
    // these keys into a fresh engine and asserts the identity, so the
    // artifact's slot numbering is provably the engine's.
    CompiledTrace out;
    out.spec_fp = compiledSpecFingerprint(config);
    out.source_hash = fnv1a64(events, count * sizeof(TraceEvent));

    std::uint64_t total_ops = 0;
    for (const SegmentProgram &program : programs)
        total_ops += program.ops.size();
    out.kind.reserve(total_ops);
    out.size.reserve(total_ops);
    out.flags.reserve(total_ops);
    out.thread.reserve(total_ops);
    out.tslot.reserve(total_ops);
    out.aslot.reserve(total_ops);
    out.addr.reserve(total_ops);
    out.value.reserve(total_ops);
    out.seq.reserve(total_ops);

    // Sharded: whole-trace renumbering interns every distinct block
    // in the trace through one table (millions of keys for the big
    // sweeps), where the sharded rehash/locality behavior pays.
    ShardedIndexMap track_global;
    ShardedIndexMap atomic_global;
    std::vector<std::uint32_t> tmap;
    std::vector<std::uint32_t> amap;
    for (SegmentProgram &program : programs) {
        tmap.clear();
        tmap.reserve(program.track_keys.size());
        for (const std::uint64_t key : program.track_keys) {
            bool inserted = false;
            const std::uint32_t slot =
                track_global.findOrInsert(key, inserted);
            if (inserted)
                out.track_keys.push_back(key);
            tmap.push_back(slot);
        }
        amap.clear();
        amap.reserve(program.atomic_keys.size());
        for (const std::uint64_t key : program.atomic_keys) {
            bool inserted = false;
            const std::uint32_t slot =
                atomic_global.findOrInsert(key, inserted);
            if (inserted)
                out.atomic_keys.push_back(key);
            amap.push_back(slot);
        }

        for (const MicroOp &op : program.ops) {
            out.kind.push_back(op.kind);
            out.size.push_back(op.size);
            out.flags.push_back(static_cast<std::uint8_t>(
                (op.is_write ? compiled_flag_write : 0u) |
                (op.kind == MicroOp::Piece && isPersistentAddr(op.addr)
                     ? compiled_flag_persistent
                     : 0u)));
            out.thread.push_back(op.thread);
            out.tslot.push_back(op.tslot == no_local
                                    ? compiled_no_slot
                                    : tmap[op.tslot]);
            out.aslot.push_back(op.aslot == no_local
                                    ? compiled_no_slot
                                    : amap[op.aslot]);
            out.addr.push_back(op.addr);
            out.value.push_back(op.value);
            out.seq.push_back(op.seq);
            if (op.thread >= out.thread_count)
                out.thread_count = op.thread + 1;
        }
        out.events += program.events;
        program = SegmentProgram{};
    }
    out.buildRuns();
    return out;
}

/**
 * Friend of PersistTimingEngine: both compiled execution paths.
 */
class CompiledReplayer
{
  public:
    /**
     * Fast path: strict / epoch / strand on the Levels clock with
     * unified granularity, all-address scope, load tracking, and no
     * observers. STRICT folds dependences into epoch_dep immediately;
     * STRAND additionally honors NewStrand resets.
     *
     * Correctness leans on three facts proved in DESIGN.md Section 17
     * (and pinned by the bit-identity tests):
     *
     *  1. nothing observable reads Tag::src in these configurations,
     *     so tag validity is exactly t > 0 and src can be elided;
     *  2. in unified mode a persist piece's tracking slot *is* its
     *     atomic slot and the tracked block equals the persist block,
     *     so the store-conflict merge makes dep.t >= last.t always:
     *     the engine's same-block serialization arm (base = last.t
     *     when last.t > dep.t) is unreachable and the issue time is
     *     simply tmax + 1;
     *  3. coalescing requires dep.t == last.t with everything outside
     *     the pending group strictly earlier, which is decidable from
     *     the three unmerged sources (epoch, store tag, load tag)
     *     without materializing the merged dependence summary — the
     *     merge itself is only needed on persists, and only its
     *     (t, block) result, never a full Tag.
     */
    template <bool STRICT, bool STRAND>
    static TimingResult
    runFast(const CompiledTraceView &view, unsigned atomic_shift,
            std::uint32_t thread_count)
    {
        struct FThread
        {
            FastTag epoch;
            FastTag accum;
        };

        TimingResult res;
        std::vector<FastTag> ts(view.track_slots);
        std::vector<FastTag> tl(view.track_slots);
        std::vector<FThread> threads(thread_count ? thread_count : 1);

        const std::uint8_t *kind = view.kind;
        const std::uint8_t *flags = view.flags;
        const std::uint32_t *thr = view.thread;
        const std::uint32_t *tsl = view.tslot;
        const std::uint64_t *addr = view.addr;
        double critical = 0.0;

        std::uint64_t i = 0;
        for (std::uint64_t r = 0; r < view.runs; ++r) {
            const std::uint64_t end = i + view.run_len[r];
            const std::uint8_t rk = view.run_kind[r];
            if (rk == MicroOp::Piece) {
                for (; i < end; ++i) {
                    FThread &thread = threads[thr[i]];
                    const std::uint32_t slot = tsl[i];
                    FastTag &epoch = thread.epoch;
                    FastTag &sink =
                        STRICT ? thread.epoch : thread.accum;
                    const std::uint8_t fl = flags[i];
                    if (!(fl & compiled_flag_write)) {
                        // Load: inherit the block's store order,
                        // record the load for later conflicting
                        // stores.
                        fmerge(sink, ts[slot]);
                        fmerge(tl[slot], epoch);
                        continue;
                    }
                    if (fl & compiled_flag_persistent) {
                        FastTag &tss = ts[slot];
                        const std::uint64_t block =
                            addr[i] >> atomic_shift;
                        ++res.persists;
                        const double last_t = tss.t;
                        double tmax =
                            epoch.t > tss.t ? epoch.t : tss.t;
                        if (tl[slot].t > tmax)
                            tmax = tl[slot].t;
                        bool coalesce = false;
                        if (last_t != 0.0 && tmax == last_t) {
                            // The pending group is the dependence
                            // argmax; coalesce unless a dependence
                            // outside that group also reaches last_t.
                            // Closed form of the three-way merge's
                            // (block, oth) result.
                            const FastTag &tll = tl[slot];
                            double oth = epoch.oth > tss.oth
                                ? epoch.oth
                                : tss.oth;
                            if (tll.oth > oth)
                                oth = tll.oth;
                            const bool e_in = epoch.t == last_t &&
                                epoch.block == block;
                            if (!e_in && epoch.t > oth)
                                oth = epoch.t;
                            const bool l_in = tll.t == last_t &&
                                tll.block == block;
                            if (!l_in && tll.t > oth)
                                oth = tll.t;
                            coalesce = !(epoch.t == last_t &&
                                         epoch.block != block) &&
                                oth < last_t;
                        }
                        if (coalesce) {
                            ++res.coalesced;
                            const FastTag out{last_t, 0.0, block};
                            fmerge(sink, out);
                        } else {
                            const double time = tmax + 1.0;
                            const double oth_ts =
                                tss.t > tss.oth ? tss.t : tss.oth;
                            tss.t = time;
                            tss.oth = oth_ts;
                            tss.block = block;
                            if (STRICT) {
                                // epoch_dep always holds the latest
                                // persist: overwrite, don't merge.
                                const double oth_e = sink.t > sink.oth
                                    ? sink.t
                                    : sink.oth;
                                sink.t = time;
                                sink.oth = oth_e;
                                sink.block = block;
                            } else {
                                // accum is NOT part of dep, so the
                                // new persist may be older than what
                                // accum already holds: full merge.
                                fmerge(sink,
                                       FastTag{time, 0.0, block});
                            }
                            if (time > critical)
                                critical = time;
                        }
                    } else if (STRICT) {
                        fmerge(epoch, ts[slot]);
                        fmerge(epoch, tl[slot]);
                        fmerge(ts[slot], epoch);
                    } else {
                        // Volatile store: dep = epoch + conflicts.
                        FastTag dep = epoch;
                        fmerge(dep, ts[slot]);
                        fmerge(dep, tl[slot]);
                        fmerge(sink, dep);
                        fmerge(ts[slot], epoch);
                    }
                }
                continue;
            }
            for (; i < end; ++i) {
                FThread &thread = threads[thr[i]];
                switch (rk) {
                  case MicroOp::Barrier:
                    ++res.barriers;
                    if (!STRICT)
                        fmerge(thread.epoch, thread.accum);
                    break;
                  case MicroOp::Flush:
                    ++res.flushes;
                    break;
                  case MicroOp::FenceOp:
                    ++res.fences;
                    if (!STRICT)
                        fmerge(thread.epoch, thread.accum);
                    break;
                  case MicroOp::Strand:
                    ++res.strands;
                    if (STRAND) {
                        thread.epoch = FastTag{};
                        thread.accum = FastTag{};
                    }
                    break;
                  case MicroOp::OpEnd:
                    ++res.ops;
                    break;
                  default:
                    // OpBegin/RoleData/RoleHead only drive log and
                    // plugin metadata, unobservable on this path.
                    break;
                }
            }
        }
        (void)kind;
        res.critical_path = critical;
        res.events += view.events;
        return res;
    }

    /** Generic path: the engine's own inline handlers over the
        columns, slots handed to the engine in artifact order. */
    static TimingResult
    runGeneric(const CompiledTraceView &view, const TimingConfig &config,
               const CompiledReplayOptions &options, PersistLog *log_out)
    {
        PersistTimingEngine engine(config);

        // Pre-intern the artifact's slot tables. The engine's map is
        // empty, so insertion order is slot order — the identity
        // check below turns "the artifact's numbering matches the
        // engine's" from an assumption into an invariant.
        for (std::uint64_t i = 0; i < view.track_slots; ++i) {
            const std::uint32_t slot =
                engine.trackSlot(view.track_keys[i]);
            PERSIM_REQUIRE(slot == i,
                           "corrupt compiled trace: tracking key table "
                           "entry " << i << " interned to slot "
                               << slot
                               << " (duplicate key in the artifact?)");
        }
        if (!engine.unified_) {
            for (std::uint64_t i = 0; i < view.atomic_slots; ++i) {
                const std::uint32_t slot =
                    engine.atomicSlot(view.atomic_keys[i]);
                PERSIM_REQUIRE(slot == i,
                               "corrupt compiled trace: atomic key "
                               "table entry " << i
                                   << " interned to slot " << slot
                                   << " (duplicate key in the "
                                      "artifact?)");
            }
        }

        const std::uint32_t jobs = options.jobs > 0
            ? options.jobs
            : TaskPool::defaultWorkers();
        TaskPool *pool = options.pool;
        std::unique_ptr<TaskPool> owned;
        if (pool == nullptr && jobs > 1 && engine.config_.record_log) {
            owned = std::make_unique<TaskPool>(jobs);
            pool = owned.get();
        }
        const bool parallel_log =
            engine.config_.record_log && jobs > 1 && pool != nullptr;
        engine.defer_log_ = parallel_log;

        std::uint64_t i = 0;
        for (std::uint64_t r = 0; r < view.runs; ++r) {
            const std::uint64_t end = i + view.run_len[r];
            for (; i < end; ++i) {
                PersistTimingEngine::ThreadState &thread =
                    engine.threadState(view.thread[i]);
                switch (view.kind[i]) {
                  case MicroOp::Piece:
                    engine.handlePieceAt(
                        view.tslot[i], view.aslot[i], view.seq[i],
                        view.thread[i], thread, view.addr[i],
                        view.size[i], view.value[i],
                        (view.flags[i] & compiled_flag_write) != 0);
                    break;
                  case MicroOp::Barrier:
                    engine.handleBarrierEvent(view.seq[i],
                                              view.thread[i], thread);
                    break;
                  case MicroOp::Flush:
                    engine.handleFlushEvent(
                        (view.flags[i] & compiled_flag_write) != 0,
                        view.seq[i], view.thread[i], thread,
                        view.addr[i],
                        view.tslot[i] != compiled_no_slot
                            ? view.tslot[i]
                            : view.aslot[i]);
                    break;
                  case MicroOp::FenceOp:
                    engine.handleFenceEvent(
                        (view.flags[i] & compiled_flag_write) != 0,
                        view.thread[i], thread);
                    break;
                  case MicroOp::Strand:
                    engine.handleStrandEvent(view.thread[i], thread);
                    break;
                  case MicroOp::OpBegin:
                    thread.op = view.value[i];
                    thread.role = PersistRole::None;
                    break;
                  case MicroOp::OpEnd:
                    ++engine.result_.ops;
                    thread.op = no_operation;
                    thread.role = PersistRole::None;
                    break;
                  case MicroOp::RoleData:
                    thread.role = PersistRole::Data;
                    break;
                  case MicroOp::RoleHead:
                    thread.role = PersistRole::Head;
                    break;
                  default:
                    break;
                }
            }
        }
        engine.result_.events += view.events;
        engine.onFinish();

        if (parallel_log) {
            // Same deferred materialization as segment_replay.cc:
            // record construction fans out after the serial pass.
            const auto &deferred = engine.deferred_;
            PersistLog &log = engine.log_;
            log.resize(deferred.size());
            const std::size_t per = deferred.size() / (4ULL * jobs) + 1;
            const std::size_t chunks =
                (deferred.size() + per - 1) / per;
            pool->parallelFor(chunks, [&](std::size_t c) {
                const std::size_t begin = c * per;
                const std::size_t end_r =
                    std::min(begin + per, deferred.size());
                for (std::size_t k = begin; k < end_r; ++k)
                    log[k] = engine.materializeRecord(deferred[k]);
            });
            engine.deferred_.clear();
            engine.deferred_.shrink_to_fit();
            engine.defer_log_ = false;
        }

        if (log_out != nullptr)
            *log_out = engine.takeLog();
        return engine.result();
    }
};

TimingResult
compiledReplay(const CompiledTraceView &view, const TimingConfig &config,
               const CompiledReplayOptions &options, PersistLog *log_out,
               CompiledReplayStats *stats)
{
    const std::uint64_t want_fp = compiledSpecFingerprint(config);
    PERSIM_REQUIRE(view.spec_fp == want_fp,
                   "compiled trace was built under a different compile "
                   "spec (artifact 0x"
                       << std::hex << view.spec_fp << ", config 0x"
                       << want_fp
                       << "): recompile it for this configuration");

    // Per-op validation (piece slots/sizes, thread bounds) happened
    // when the artifact was loaded (CompiledTraceHandle) or is
    // guaranteed by the compiler; repeating the O(n) scan here would
    // cost ~20% of a fast-path replay.
    const std::uint32_t thread_count = view.thread_count;
    const bool fast = compiledFastEligible(config) && log_out == nullptr;

    const auto start = std::chrono::steady_clock::now();
    TimingResult result;
    if (fast) {
        const unsigned shift =
            log2Exact(config.model.atomic_granularity);
        switch (config.model.kind) {
          case ModelKind::Strict:
            result = CompiledReplayer::runFast<true, false>(
                view, shift, thread_count);
            break;
          case ModelKind::Strand:
            result = CompiledReplayer::runFast<false, true>(
                view, shift, thread_count);
            break;
          default:
            result = CompiledReplayer::runFast<false, false>(
                view, shift, thread_count);
            break;
        }
    } else {
        result = CompiledReplayer::runGeneric(view, config, options,
                                              log_out);
    }
    if (stats != nullptr) {
        stats->fast_path = fast;
        stats->micro_ops = view.micro_ops;
        stats->exec_seconds = secondsSince(start);
    }
    return result;
}

CompiledTraceHandle
CompiledTraceHandle::fromMemory(CompiledTrace trace)
{
    CompiledTraceHandle handle;
    handle.owned_ = std::make_unique<CompiledTrace>(std::move(trace));
    handle.view_ = handle.owned_->view();
    (void)validateForReplay(handle.view_);
    return handle;
}

CompiledTraceHandle
CompiledTraceHandle::fromFile(const std::string &path)
{
    CompiledTraceHandle handle;
    handle.map_ =
        std::make_unique<MmapCompiledTrace>(path, kMaxMicroOpKind);
    handle.view_ = handle.map_->view();
    (void)validateForReplay(handle.view_);
    return handle;
}

CompiledTraceHandle
loadOrCompileTrace(const TraceEvent *events, std::size_t count,
                   const TimingConfig &config,
                   const std::string &cache_dir, const std::string &tag,
                   std::uint32_t jobs, TaskPool *pool, bool *cache_hit)
{
    PERSIM_REQUIRE(!cache_dir.empty(),
                   "loadOrCompileTrace needs a cache directory");
    const std::uint64_t source_hash =
        fnv1a64(events, count * sizeof(TraceEvent));
    const std::uint64_t spec_fp = compiledSpecFingerprint(config);
    const std::string name = tag.empty() ? hex16(source_hash) : tag;
    const std::string path =
        cache_dir + "/" + name + "." + hex16(spec_fp) + ".ctc";

    if (cache_hit != nullptr)
        *cache_hit = false;
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
        try {
            CompiledTraceHandle handle =
                CompiledTraceHandle::fromFile(path);
            if (handle.view().source_hash == source_hash &&
                handle.view().spec_fp == spec_fp) {
                if (cache_hit != nullptr)
                    *cache_hit = true;
                return handle;
            }
            // Stale: compiled from different trace contents (or for
            // another spec under a caller-chosen tag). Fall through
            // and recompile — never execute the stale micro-ops.
        } catch (const Error &) {
            // Truncated or corrupt artifact: recompile in place.
        }
    }

    std::filesystem::create_directories(cache_dir, ec);
    const CompiledTrace trace =
        compileTrace(events, count, config, jobs, pool);
    writeCompiledTrace(path, trace);
    // Serve the freshly written artifact through the same mmap path a
    // warm run would take, which also round-trip-validates the write.
    return CompiledTraceHandle::fromFile(path);
}

} // namespace persim
