/**
 * @file
 * Compiled-trace replay: execute a persisted micro-op artifact
 * (memtrace/compiled_trace.hh) through the timing engine with zero
 * per-run prep (DESIGN.md Section 17).
 *
 * Interpreted replay spends a large share of every run re-deriving
 * facts that depend only on the trace and the model configuration:
 * event decode, the cache-line piece split, the conflict-scope
 * filter, and the block-key hash probes. compileTrace() runs that
 * pass once (in parallel, via the shared segment compiler) and
 * renumbers the segment-local slots into one global first-touch
 * order, producing a CompiledTrace whose columns the executor reads
 * straight out of an mmap on every later run.
 *
 * Execution has two paths, both bit-identical to interpreted replay:
 *
 *  - a *fast* path for the paper's hot configurations (strict /
 *    epoch / strand, Levels clock, unified granularity, all-address
 *    scope, load tracking, no log / deps / races / plugins / window /
 *    mutant): a templated loop over 24-byte src-free tags in private
 *    banks. Nothing observable in these configurations reads
 *    Tag::src, validity is equivalent to t > 0, and the dependence
 *    summary always dominates the block's pending time, which
 *    collapses the same-block serialization rule and reduces the
 *    coalescing test to a closed form on the rare tmax == last_t
 *    path (the full derivation is in DESIGN.md Section 17);
 *  - a *generic* path for everything else (px86, stochastic clock,
 *    record_log/record_deps, race detection, plugins, windows,
 *    mutants, BPFS-style scopes): the engine's own inline handlers
 *    driven by the run-length dispatch index, with every slot
 *    pre-resolved — the engine is handed its slot tables up front in
 *    the artifact's first-touch order, so identical slot numbering
 *    (and therefore bit-identical results) is enforced, not hoped
 *    for.
 *
 * loadOrCompileTrace() adds the cache discipline: artifacts are
 * keyed by source-trace content hash and compile-spec fingerprint,
 * and a cached file whose stored hash does not match the trace that
 * is about to be replayed is recompiled in place — a stale artifact
 * is never silently executed.
 */

#ifndef PERSIM_PERSISTENCY_COMPILED_REPLAY_HH
#define PERSIM_PERSISTENCY_COMPILED_REPLAY_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/task_pool.hh"
#include "memtrace/compiled_trace.hh"
#include "memtrace/sink.hh"
#include "persistency/timing_engine.hh"

namespace persim {

/**
 * Fingerprint of the compile-relevant slice of @p config (shifts,
 * unified/scope/race flags, px86) plus the artifact ABI version.
 * Two configs with equal fingerprints compile any trace to identical
 * micro-op programs, so one artifact serves all of strict / epoch /
 * strand at equal granularities.
 */
std::uint64_t compiledSpecFingerprint(const TimingConfig &config);

/**
 * True when compiledReplay would execute @p config on the fast
 * template path rather than through the engine handlers.
 */
bool compiledFastEligible(const TimingConfig &config);

/**
 * Compile @p count events into a global-slot compiled trace for
 * @p config. Segments compile in parallel on @p pool (or a transient
 * pool of @p jobs workers); the slot renumbering and column append
 * are serial. The result carries the source hash of the event bytes
 * and the spec fingerprint of @p config.
 */
CompiledTrace compileTrace(const TraceEvent *events, std::size_t count,
                           const TimingConfig &config,
                           std::uint32_t jobs = 1,
                           TaskPool *pool = nullptr);

/** Knobs for compiledReplay. */
struct CompiledReplayOptions
{
    /** Deferred-log materialization workers (fast path is serial). */
    std::uint32_t jobs = 1;

    /** Pool for the above; nullptr creates a transient one. */
    TaskPool *pool = nullptr;
};

/** Optional instrumentation of one compiledReplay call. */
struct CompiledReplayStats
{
    bool fast_path = false;     //!< Took the template executor.
    std::uint64_t micro_ops = 0;
    double exec_seconds = 0.0;
};

/**
 * Execute @p view under @p config. Fatals if the view's spec
 * fingerprint does not match @p config — an artifact compiled under
 * a different scope/granularity must never be replayed silently.
 * Bit-identical to interpreted replay of the source trace for every
 * model and configuration.
 *
 * @p view must come from compileTrace() or a CompiledTraceHandle:
 * the per-op replay invariants (piece slots and sizes, thread
 * bounds) are validated once when an artifact is loaded, not on
 * every call, so the executors index their state unchecked.
 */
TimingResult compiledReplay(const CompiledTraceView &view,
                            const TimingConfig &config,
                            const CompiledReplayOptions &options = {},
                            PersistLog *log_out = nullptr,
                            CompiledReplayStats *stats = nullptr);

/**
 * Owner of a compiled trace's storage: either an open mapping of a
 * .ctc artifact or an in-memory CompiledTrace. Movable; the view is
 * valid while the handle lives.
 */
class CompiledTraceHandle
{
  public:
    CompiledTraceHandle() = default;

    /** Adopt an in-memory compiled trace. */
    static CompiledTraceHandle fromMemory(CompiledTrace trace);

    /** Map (and fully validate) a .ctc artifact. */
    static CompiledTraceHandle fromFile(const std::string &path);

    const CompiledTraceView &view() const { return view_; }

    /** True when backed by an mmap rather than owned vectors. */
    bool mapped() const { return map_ != nullptr; }

    bool valid() const { return map_ != nullptr || owned_ != nullptr; }

  private:
    std::unique_ptr<MmapCompiledTrace> map_;
    std::unique_ptr<CompiledTrace> owned_;
    CompiledTraceView view_;
};

/**
 * Cached compile: look for
 * `<cache_dir>/<tag or source-hash hex>.<spec-fp hex>.ctc`, verify
 * its stored source hash against the events about to be replayed and
 * its spec fingerprint against @p config, and return the mapping on
 * a match. On a miss, a validation failure, or a stale hash (the
 * file was compiled from different trace contents — possible when a
 * caller-supplied @p tag names a regenerated trace), recompile and
 * rewrite the artifact. @p cache_dir is created if absent.
 * @p cache_hit, when non-null, reports whether the mapping came from
 * a pre-existing valid artifact.
 */
CompiledTraceHandle loadOrCompileTrace(const TraceEvent *events,
                                       std::size_t count,
                                       const TimingConfig &config,
                                       const std::string &cache_dir,
                                       const std::string &tag = {},
                                       std::uint32_t jobs = 1,
                                       TaskPool *pool = nullptr,
                                       bool *cache_hit = nullptr);

} // namespace persim

#endif // PERSIM_PERSISTENCY_COMPILED_REPLAY_HH
