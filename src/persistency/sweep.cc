#include "persistency/sweep.hh"

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "common/error.hh"
#include "common/task_pool.hh"
#include "memtrace/trace_io.hh"
#include "persistency/compiled_replay.hh"

namespace persim {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

/** The config bank of one sweep: one per (model, knob) pair. */
std::vector<TimingConfig>
buildConfigs(const std::vector<ModelConfig> &models,
             const std::vector<std::uint64_t> &granularities,
             GranularityKnob knob)
{
    std::vector<TimingConfig> configs;
    configs.reserve(models.size() * granularities.size());
    for (const auto &base : models) {
        for (const auto gran : granularities) {
            ModelConfig model = base;
            if (knob == GranularityKnob::AtomicPersist) {
                model.atomic_granularity = gran;
            } else {
                model.tracking_granularity = gran;
            }
            TimingConfig config;
            config.model = model;
            configs.push_back(config);
        }
    }
    return configs;
}

/** The engine bank of one sweep: one engine per config. */
std::vector<std::unique_ptr<PersistTimingEngine>>
buildEngines(const std::vector<TimingConfig> &configs)
{
    std::vector<std::unique_ptr<PersistTimingEngine>> engines;
    engines.reserve(configs.size());
    for (const TimingConfig &config : configs)
        engines.push_back(std::make_unique<PersistTimingEngine>(config));
    return engines;
}

/**
 * Compiled-path sweep body shared by the in-memory and file entry
 * points: one compile + execute per config, serial or fanned out on a
 * TaskPool. Configs differing only in model kind share one artifact
 * in the cache (the spec fingerprint ignores the kind except Px86).
 */
std::vector<TimingResult>
runCompiled(const TraceEvent *events, std::size_t count,
            const std::vector<TimingConfig> &configs,
            const SweepOptions &options,
            std::vector<double> &wall_seconds)
{
    std::vector<TimingResult> results(configs.size());
    auto run = [&](std::size_t i) {
        const auto start = SteadyClock::now();
        if (!options.compile_cache.empty()) {
            const CompiledTraceHandle handle = loadOrCompileTrace(
                events, count, configs[i], options.compile_cache);
            results[i] = compiledReplay(handle.view(), configs[i]);
        } else {
            const CompiledTrace compiled =
                compileTrace(events, count, configs[i]);
            results[i] = compiledReplay(compiled.view(), configs[i]);
        }
        wall_seconds[i] = secondsSince(start);
    };
    if (options.jobs != 1) {
        TaskPool pool(options.jobs);
        pool.parallelFor(configs.size(), run);
    } else {
        for (std::size_t i = 0; i < configs.size(); ++i)
            run(i);
    }
    return results;
}

/** Gather per-config results back into per-model series. */
std::vector<SweepSeries>
collectSeries(const std::vector<TimingResult> &results,
              const std::vector<ModelConfig> &models,
              const std::vector<std::uint64_t> &granularities,
              const std::vector<double> &wall_seconds)
{
    std::vector<SweepSeries> series;
    series.reserve(models.size());
    std::size_t index = 0;
    for (const auto &base : models) {
        SweepSeries entry;
        entry.model = base;
        entry.points.reserve(granularities.size());
        for (const auto gran : granularities) {
            SweepPoint point;
            point.value = gran;
            point.result = results[index];
            point.wall_seconds = wall_seconds[index];
            entry.points.push_back(point);
            ++index;
        }
        series.push_back(std::move(entry));
    }
    return series;
}

/** As above, reading the results out of an engine bank. */
std::vector<SweepSeries>
collectSeries(const std::vector<std::unique_ptr<PersistTimingEngine>>
                  &engines,
              const std::vector<ModelConfig> &models,
              const std::vector<std::uint64_t> &granularities,
              const std::vector<double> &wall_seconds)
{
    std::vector<TimingResult> results;
    results.reserve(engines.size());
    for (const auto &engine : engines)
        results.push_back(engine->result());
    return collectSeries(results, models, granularities, wall_seconds);
}

} // namespace

std::vector<SweepSeries>
granularitySweep(const InMemoryTrace &trace,
                 const std::vector<ModelConfig> &models,
                 const std::vector<std::uint64_t> &granularities,
                 GranularityKnob knob, const SweepOptions &options)
{
    PERSIM_REQUIRE(!models.empty() && !granularities.empty(),
                   "sweep needs at least one model and one value");

    const auto configs = buildConfigs(models, granularities, knob);

    if (options.compiled) {
        std::vector<double> wall_seconds(configs.size(), 0.0);
        const auto results =
            runCompiled(trace.events().data(), trace.events().size(),
                        configs, options, wall_seconds);
        return collectSeries(results, models, granularities,
                             wall_seconds);
    }

    auto engines = buildEngines(configs);
    std::vector<double> wall_seconds(engines.size(), 0.0);

    if (options.jobs == 1) {
        // Serial baseline: one pass through all engines.
        FanoutSink fanout;
        for (const auto &engine : engines)
            fanout.addSink(engine.get());
        const auto start = SteadyClock::now();
        trace.replay(fanout);
        const double pass = secondsSince(start);
        for (double &wall : wall_seconds)
            wall = pass;
    } else {
        // One independent replay per config. Engines share only the
        // read-only trace, so this is a pure fan-out.
        TaskPool pool(options.jobs);
        pool.parallelFor(engines.size(), [&](std::size_t i) {
            const auto start = SteadyClock::now();
            trace.replay(*engines[i]);
            wall_seconds[i] = secondsSince(start);
        });
    }

    return collectSeries(engines, models, granularities, wall_seconds);
}

std::vector<SweepSeries>
granularitySweepFile(const std::string &path,
                     const std::vector<ModelConfig> &models,
                     const std::vector<std::uint64_t> &granularities,
                     GranularityKnob knob, const SweepOptions &options)
{
    PERSIM_REQUIRE(!models.empty() && !granularities.empty(),
                   "sweep needs at least one model and one value");
    PERSIM_REQUIRE(options.chunk_events >= 1,
                   "streaming sweep needs a positive chunk size");

    const auto configs = buildConfigs(models, granularities, knob);

    if (options.compiled) {
        // The compiler needs the whole event span: map the file (the
        // compiled sweep subsumes --mmap) and run the shared body.
        MmapTraceReader reader(path);
        const auto view = reader.events();
        std::vector<double> wall_seconds(configs.size(), 0.0);
        const auto results = runCompiled(view.data(), view.size(),
                                         configs, options, wall_seconds);
        return collectSeries(results, models, granularities,
                             wall_seconds);
    }

    auto engines = buildEngines(configs);
    std::vector<double> wall_seconds(engines.size(), 0.0);

    if (options.mmap) {
        // Zero-copy path: every engine replays straight out of the
        // shared read-only mapping, one full-span batch each.
        MmapTraceReader reader(path);
        const auto view = reader.events();
        auto run = [&](std::size_t i) {
            const auto start = SteadyClock::now();
            engines[i]->onBatch(view.data(), view.size());
            engines[i]->onFinish();
            wall_seconds[i] = secondsSince(start);
        };
        if (options.jobs != 1) {
            TaskPool pool(options.jobs);
            pool.parallelFor(engines.size(), run);
        } else {
            for (std::size_t i = 0; i < engines.size(); ++i)
                run(i);
        }
        return collectSeries(engines, models, granularities,
                             wall_seconds);
    }

    // Feed one chunk to engine i, accumulating its analysis time.
    std::vector<TraceEvent> chunk(
        static_cast<std::size_t>(options.chunk_events));
    std::size_t chunk_size = 0;
    auto feed = [&](std::size_t i) {
        const auto start = SteadyClock::now();
        engines[i]->onBatch(chunk.data(), chunk_size);
        wall_seconds[i] += secondsSince(start);
    };
    auto finish = [&](std::size_t i) {
        const auto start = SteadyClock::now();
        engines[i]->onFinish();
        wall_seconds[i] += secondsSince(start);
    };

    TraceFileReader reader(path);
    std::unique_ptr<TaskPool> pool;
    if (options.jobs != 1)
        pool = std::make_unique<TaskPool>(options.jobs);

    while (true) {
        // Refill the chunk with bulk reads (readBatch may return
        // fewer than asked; keep going until the chunk is full or the
        // trace ends, so chunk boundaries stay identical to the
        // previous per-event refill and tests comparing streaming to
        // in-memory results see the same grouping).
        chunk_size = 0;
        while (chunk_size < chunk.size()) {
            const std::size_t got = reader.readBatch(
                chunk.data() + chunk_size, chunk.size() - chunk_size);
            if (got == 0)
                break;
            chunk_size += got;
        }
        if (chunk_size == 0)
            break;
        if (pool) {
            pool->parallelFor(engines.size(), feed);
        } else {
            for (std::size_t i = 0; i < engines.size(); ++i)
                feed(i);
        }
    }

    if (pool) {
        pool->parallelFor(engines.size(), finish);
    } else {
        for (std::size_t i = 0; i < engines.size(); ++i)
            finish(i);
    }

    return collectSeries(engines, models, granularities, wall_seconds);
}

std::vector<LatencyPoint>
latencyCurve(std::uint64_t ops, double critical_path,
             double instruction_rate,
             const std::vector<double> &latencies_ns)
{
    PERSIM_REQUIRE(instruction_rate > 0.0,
                   "instruction rate must be positive");
    std::vector<LatencyPoint> curve;
    curve.reserve(latencies_ns.size());
    for (const double latency : latencies_ns) {
        PERSIM_REQUIRE(latency > 0.0, "latency must be positive");
        LatencyPoint point;
        point.latency_ns = latency;
        const double persist_rate = critical_path > 0.0
            ? static_cast<double>(ops) * 1e9 / (critical_path * latency)
            : instruction_rate;
        point.persist_bound = persist_rate < instruction_rate;
        point.achievable_rate =
            point.persist_bound ? persist_rate : instruction_rate;
        curve.push_back(point);
    }
    return curve;
}

std::vector<double>
logLatencyGrid(double lo_ns, double hi_ns, unsigned points_per_decade)
{
    PERSIM_REQUIRE(lo_ns > 0.0 && hi_ns > lo_ns,
                   "grid needs 0 < lo < hi");
    PERSIM_REQUIRE(points_per_decade >= 1, "need at least one point");
    const double lo_exp = std::log10(lo_ns);
    const double hi_exp = std::log10(hi_ns);
    // Index the grid by integer step count: accumulating `e += step`
    // in floating point can fall just past hi_exp and drop the final
    // point for some points_per_decade.
    const auto steps = static_cast<std::uint64_t>(
        std::floor((hi_exp - lo_exp) * points_per_decade + 1e-6));
    std::vector<double> grid;
    grid.reserve(steps + 1);
    for (std::uint64_t i = 0; i <= steps; ++i)
        grid.push_back(std::pow(
            10.0, lo_exp + static_cast<double>(i) / points_per_decade));
    return grid;
}

double
breakEvenLatencyNs(std::uint64_t ops, double critical_path,
                   double instruction_rate)
{
    PERSIM_REQUIRE(instruction_rate > 0.0,
                   "instruction rate must be positive");
    if (critical_path <= 0.0)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(ops) * 1e9 /
        (critical_path * instruction_rate);
}

} // namespace persim
