#include "persistency/sweep.hh"

#include <cmath>
#include <limits>
#include <memory>

#include "common/error.hh"

namespace persim {

std::vector<SweepSeries>
granularitySweep(const InMemoryTrace &trace,
                 const std::vector<ModelConfig> &models,
                 const std::vector<std::uint64_t> &granularities,
                 GranularityKnob knob)
{
    PERSIM_REQUIRE(!models.empty() && !granularities.empty(),
                   "sweep needs at least one model and one value");

    std::vector<std::unique_ptr<PersistTimingEngine>> engines;
    FanoutSink fanout;
    for (const auto &base : models) {
        for (const auto gran : granularities) {
            ModelConfig model = base;
            if (knob == GranularityKnob::AtomicPersist) {
                model.atomic_granularity = gran;
            } else {
                model.tracking_granularity = gran;
            }
            TimingConfig config;
            config.model = model;
            engines.push_back(
                std::make_unique<PersistTimingEngine>(config));
            fanout.addSink(engines.back().get());
        }
    }
    trace.replay(fanout);

    std::vector<SweepSeries> series;
    std::size_t index = 0;
    for (const auto &base : models) {
        SweepSeries entry;
        entry.model = base;
        for (const auto gran : granularities) {
            entry.points.push_back(
                SweepPoint{gran, engines[index]->result()});
            ++index;
        }
        series.push_back(std::move(entry));
    }
    return series;
}

std::vector<LatencyPoint>
latencyCurve(std::uint64_t ops, double critical_path,
             double instruction_rate,
             const std::vector<double> &latencies_ns)
{
    PERSIM_REQUIRE(instruction_rate > 0.0,
                   "instruction rate must be positive");
    std::vector<LatencyPoint> curve;
    curve.reserve(latencies_ns.size());
    for (const double latency : latencies_ns) {
        PERSIM_REQUIRE(latency > 0.0, "latency must be positive");
        LatencyPoint point;
        point.latency_ns = latency;
        const double persist_rate = critical_path > 0.0
            ? static_cast<double>(ops) * 1e9 / (critical_path * latency)
            : instruction_rate;
        point.persist_bound = persist_rate < instruction_rate;
        point.achievable_rate =
            point.persist_bound ? persist_rate : instruction_rate;
        curve.push_back(point);
    }
    return curve;
}

std::vector<double>
logLatencyGrid(double lo_ns, double hi_ns, unsigned points_per_decade)
{
    PERSIM_REQUIRE(lo_ns > 0.0 && hi_ns > lo_ns,
                   "grid needs 0 < lo < hi");
    PERSIM_REQUIRE(points_per_decade >= 1, "need at least one point");
    std::vector<double> grid;
    const double step = 1.0 / points_per_decade;
    const double lo_exp = std::log10(lo_ns);
    const double hi_exp = std::log10(hi_ns);
    for (double e = lo_exp; e <= hi_exp + 1e-9; e += step)
        grid.push_back(std::pow(10.0, e));
    return grid;
}

double
breakEvenLatencyNs(std::uint64_t ops, double critical_path,
                   double instruction_rate)
{
    PERSIM_REQUIRE(instruction_rate > 0.0,
                   "instruction rate must be positive");
    if (critical_path <= 0.0)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(ops) * 1e9 /
        (critical_path * instruction_rate);
}

} // namespace persim
