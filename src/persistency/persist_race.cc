#include "persistency/persist_race.hh"

#include <sstream>

#include "common/bitops.hh"
#include "persistency/timing_engine.hh"

namespace persim {

const char *
raceKindName(PersistRaceDetector::RaceKind kind)
{
    switch (kind) {
      case PersistRaceDetector::RaceKind::UnorderedPersist:
        return "unordered_persist";
      case PersistRaceDetector::RaceKind::DirtyRead:
        return "dirty_read";
    }
    return "unknown";
}

PersistRaceDetector::PersistRaceDetector(Options options)
    : options_(options)
{
}

void
PersistRaceDetector::onAttach(const TimingConfig &config)
{
    track_shift_ = log2Exact(config.model.tracking_granularity);
    atomic_shift_ = log2Exact(config.model.atomic_granularity);
    px86_ = config.model.kind == ModelKind::Px86;
}

PersistRaceDetector::ThreadShadow &
PersistRaceDetector::shadowState(ThreadId tid)
{
    if (tid >= threads_.size())
        threads_.resize(tid + 1);
    return threads_[tid];
}

void
PersistRaceDetector::recordRace(const Race &race)
{
    if (race.kind == RaceKind::UnorderedPersist)
        ++unordered_;
    else
        ++dirty_reads_;
    if (samples_.size() < options_.max_samples)
        samples_.push_back(race);
}

void
PersistRaceDetector::commitPending()
{
    if (!pending_)
        return;
    pending_ = false;
    const ThreadShadow &state = shadowState(pending_tid_);
    // Mirrors the engine's recordScTag: the block's SC tag becomes
    // the accessing thread's own latest persist or inherited shadow,
    // whichever completes later (shadow wins ties). Evaluated now —
    // after the access's own persist, before any other state moved —
    // exactly when the engine evaluated it.
    const ScTag &best =
        state.own.t > state.shadow.t ? state.own : state.shadow;
    if (best.src != invalid_persist &&
        best.t > sc_tag_[pending_slot_].t) {
        sc_tag_[pending_slot_] = best;
        sc_writer_[pending_slot_] = pending_tid_;
    }
}

void
PersistRaceDetector::onAccess(const AccessInfo &info)
{
    commitPending();

    // Rule 1: inherit the block's SC tag when a foreign thread wrote
    // it later than anything we already carry.
    bool inserted = false;
    const std::uint32_t slot =
        sc_index_.findOrInsert(info.addr >> track_shift_, inserted);
    if (inserted) {
        sc_tag_.push_back(ScTag{});
        sc_writer_.push_back(invalid_thread);
    }
    ThreadShadow &state = shadowState(info.thread);
    if (sc_writer_[slot] != invalid_thread &&
        sc_writer_[slot] != info.thread &&
        sc_tag_[slot].t > state.shadow.t)
        state.shadow = sc_tag_[slot];
    pending_ = true;
    pending_slot_ = slot;
    pending_tid_ = info.thread;

    // Rule 2: conflicting access to a foreign thread's dirty line.
    if (!px86_ || !info.persistent)
        return;
    const std::uint32_t lslot = line_index_.findOrInsert(
        info.addr >> atomic_shift_, inserted);
    if (inserted) {
        line_owner_.push_back(invalid_thread);
        line_store_seq_.push_back(0);
        line_reported_.push_back(0);
    }
    const ThreadId owner = line_owner_[lslot];
    if (owner != invalid_thread && owner != info.thread) {
        const std::uint64_t bit = 1ULL << (info.thread & 63);
        if ((line_reported_[lslot] & bit) == 0) {
            line_reported_[lslot] |= bit;
            Race race;
            race.kind = RaceKind::DirtyRead;
            race.seq = info.seq;
            race.addr = (info.addr >> atomic_shift_) << atomic_shift_;
            race.thread = info.thread;
            race.other = owner;
            recordRace(race);
        }
    }
    if (info.is_write) {
        if (owner != info.thread)
            line_reported_[lslot] = 0;
        line_owner_[lslot] = info.thread;
        line_store_seq_[lslot] = info.seq;
    }
}

void
PersistRaceDetector::onPersistIssue(const PersistInfo &info)
{
    ThreadShadow &state = shadowState(info.thread);
    // Every persist in this persist's constraint cone completes no
    // later than race_bound, so an SC-preceding foreign persist past
    // the bound is provably unordered with it.
    if (state.shadow.src != invalid_persist &&
        state.shadow.t > info.race_bound) {
        Race race;
        race.kind = RaceKind::UnorderedPersist;
        race.seq = info.seq;
        race.addr = info.addr;
        race.thread = info.thread;
        race.persist = info.id;
        race.foreign = state.shadow.src;
        recordRace(race);
    }
    if (info.time > state.own.t) {
        state.own.t = info.time;
        state.own.src = info.id;
    }
}

void
PersistRaceDetector::onFlush(const FlushInfo &info)
{
    // A flush's persists update the flushing thread's `own` before
    // the engine re-reads any SC tag, so flush the deferred commit
    // first (it must see the pre-flush state).
    commitPending();
    if (info.line_base == invalid_addr)
        return;
    const std::uint32_t lslot =
        line_index_.find(info.line_base >> atomic_shift_);
    if (lslot == FlatIndexMap::no_slot)
        return;
    line_owner_[lslot] = invalid_thread;
    line_reported_[lslot] = 0;
}

void
PersistRaceDetector::onTraceEnd(const TimingResult &result)
{
    (void)result;
    commitPending();
}

void
PersistRaceDetector::reset()
{
    sc_index_.clear();
    sc_tag_.clear();
    sc_writer_.clear();
    threads_.clear();
    pending_ = false;
    line_index_.clear();
    line_owner_.clear();
    line_store_seq_.clear();
    line_reported_.clear();
    unordered_ = 0;
    dirty_reads_ = 0;
    samples_.clear();
}

std::string
PersistRaceDetector::format() const
{
    std::ostringstream out;
    out << "persist races: " << total() << " (unordered_persist="
        << unordered_ << ", dirty_read=" << dirty_reads_ << ")\n";
    for (const Race &race : samples_) {
        out << "  [" << raceKindName(race.kind) << "] seq="
            << race.seq << " thread=" << race.thread;
        if (race.kind == RaceKind::DirtyRead)
            out << " line=0x" << std::hex << race.addr << std::dec
                << " owner=" << race.other;
        else
            out << " addr=0x" << std::hex << race.addr << std::dec
                << " persist=" << race.persist << " foreign="
                << race.foreign;
        out << "\n";
    }
    return out.str();
}

} // namespace persim
