/**
 * @file
 * Intra-trace parallel replay: segment-partitioned timing analysis
 * with a deterministic sequential stitch (DESIGN.md Section 12).
 *
 * The trace is split into K contiguous segments. A parallel *prep*
 * pass compiles each segment — independently, on the shared TaskPool
 * — into a dense micro-op program: accesses are pre-split into
 * <=8-byte pieces, out-of-scope pieces are filtered per the engine
 * configuration, uncompiled event kinds collapse into an event count,
 * and every piece's tracking/atomic block key is interned into a
 * segment-local slot table. None of this depends on engine entry
 * state, so segments compile in any order on any worker.
 *
 * A sequential *stitch* pass then executes the compiled programs in
 * segment order on one PersistTimingEngine: it translates each
 * segment's local slots to global engine slots (one hash probe per
 * distinct block per segment instead of one per piece) and drives the
 * engine's own piece handlers. Because every timing decision — tag
 * merges, coalescing, persist-id assignment, stochastic clock draws,
 * log staging — runs serially in global trace order on one engine,
 * the result is bit-identical to plain serial replay for every model
 * and configuration, including record_log/record_deps/detect_races
 * and the stochastic clock. The parallel win is bounded by the
 * decode/split/intern share of serial replay cost (see EXPERIMENTS.md
 * for the measured split); exact-parallel execution of the timing
 * recurrence itself is impossible beyond thread-count parallelism
 * because every persist threads through its thread's dependence
 * accumulator (DESIGN.md Section 12 walks the rejected designs).
 */

#ifndef PERSIM_PERSISTENCY_SEGMENT_REPLAY_HH
#define PERSIM_PERSISTENCY_SEGMENT_REPLAY_HH

#include <cstddef>
#include <cstdint>

#include "common/task_pool.hh"
#include "memtrace/sink.hh"
#include "persistency/timing_engine.hh"

namespace persim {

/** Knobs for segmentReplay. */
struct SegmentReplayOptions
{
    /** Prep workers (0 = one per hardware thread, 1 = inline). */
    std::uint32_t jobs = 1;

    /**
     * Events per segment; 0 picks automatically (a few segments per
     * worker, with a floor so tiny traces are not over-split). Tests
     * force small values to exercise many segment boundaries.
     */
    std::uint64_t segment_events = 0;

    /**
     * Pool to compile on; nullptr creates a transient pool of `jobs`
     * workers. Sharing the bench-wide pool lets intra-trace prep and
     * cross-series parallelism draw from one set of OS threads
     * (parallelFor is nest-safe).
     */
    TaskPool *pool = nullptr;
};

/** Optional instrumentation of one segmentReplay call. */
struct SegmentReplayStats
{
    std::uint32_t segments = 0;      //!< Segments the trace split into.
    std::uint32_t jobs = 0;          //!< Prep workers actually used.
    std::uint64_t micro_ops = 0;     //!< Compiled micro-ops executed.
    double prep_seconds = 0.0;       //!< Wall time of the parallel prep.
    double stitch_seconds = 0.0;     //!< Wall time of the serial stitch.
};

/**
 * Replay @p count events through a PersistTimingEngine configured by
 * @p config using the segment-parallel path. Bit-identical to
 * constructing the engine and streaming the events through it
 * serially. @p log_out, when non-null, receives the persist log
 * (config.record_log implied by record_deps as usual). @p stats,
 * when non-null, is filled with phase timings.
 */
TimingResult segmentReplay(const TraceEvent *events, std::size_t count,
                           const TimingConfig &config,
                           const SegmentReplayOptions &options = {},
                           PersistLog *log_out = nullptr,
                           SegmentReplayStats *stats = nullptr);

/** Convenience overload over an in-memory trace. */
TimingResult segmentReplay(const InMemoryTrace &trace,
                           const TimingConfig &config,
                           const SegmentReplayOptions &options = {},
                           PersistLog *log_out = nullptr,
                           SegmentReplayStats *stats = nullptr);

} // namespace persim

#endif // PERSIM_PERSISTENCY_SEGMENT_REPLAY_HH
