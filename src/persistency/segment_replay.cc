#include "persistency/segment_replay.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "common/error.hh"
#include "common/flat_map.hh"

namespace persim {
namespace {

static_assert(kMaxEventKind ==
                  static_cast<std::uint8_t>(EventKind::FullFence),
              "EventKind grew: teach compileSegment about the new "
              "kinds, then update this assertion");

/** Local-slot sentinel: this op has no slot of that bank. */
constexpr std::uint32_t no_local = ~0u;

/**
 * One compiled micro-op. Pieces carry their pre-split address range
 * and pre-masked value plus segment-local slot ids; control ops carry
 * only what the serial dispatch switch reads. 40 bytes, POD.
 */
struct MicroOp
{
    enum Kind : std::uint8_t {
        Piece,    //!< One <=8-byte access piece (tslot resolved).
        Barrier,  //!< PersistBarrier / PersistSync.
        Strand,   //!< NewStrand.
        Flush,    //!< clflush/clflushopt/clwb (is_write = strong).
        FenceOp,  //!< sfence / mfence.
        OpBegin,  //!< Marker OpBegin (operation id in value).
        OpEnd,    //!< Marker OpEnd.
        RoleData, //!< Marker RoleData.
        RoleHead, //!< Marker RoleHead.
    };

    Addr addr = 0;
    std::uint64_t value = 0;
    SeqNum seq = 0;
    std::uint32_t tslot = no_local; //!< Segment-local tracking slot.
    std::uint32_t aslot = no_local; //!< Segment-local atomic slot.
    ThreadId thread = 0;
    std::uint8_t kind = Piece;
    std::uint8_t size = 0;
    std::uint8_t is_write = 0;
};

/** Compiled form of one trace segment. */
struct SegmentProgram
{
    std::vector<MicroOp> ops;
    /** Interned block keys, indexed by local slot id. */
    std::vector<std::uint64_t> track_keys;
    std::vector<std::uint64_t> atomic_keys; //!< Non-unified only.
    /** Raw events consumed (including uncompiled kinds). */
    std::uint64_t events = 0;
};

/** Engine-config facts the compiler needs; entry-state independent. */
struct CompileSpec
{
    unsigned track_shift = 3;
    unsigned atomic_shift = 3;
    bool unified = false;
    bool all_scope = true;
    bool detect_races = false;
    bool px86 = false; //!< Flush/fence ops act (and intern slots).
};

/**
 * Compile @p count events into a micro-op program. Mirrors
 * PersistTimingEngine::process()/handlePiece() up to (but not
 * including) the first read of engine state: the piece split, the
 * scope filter, and the block-key computation are pure functions of
 * the event and the configuration.
 */
void
compileSegment(const TraceEvent *events, std::size_t count,
               const CompileSpec &spec, SegmentProgram &out)
{
    FlatIndexMap track_local;
    FlatIndexMap atomic_local;
    // Start at a quarter of the worst case: scope-filtered configs
    // emit far fewer ops than events, and growth on the POD vector is
    // a cheap memcpy, while a full-size reserve costs real page
    // faults per segment.
    out.ops.reserve(count / 4 + 16);
    out.events = count;

    for (std::size_t i = 0; i < count; ++i) {
        const TraceEvent &event = events[i];
        switch (event.kind) {
          case EventKind::Load:
          case EventKind::Store:
          case EventKind::Rmw: {
            // Same 8-byte-aligned split as process(), so each piece
            // lies within one tracking block and one atomic block.
            Addr addr = event.addr;
            unsigned remaining = event.size;
            while (remaining > 0) {
                const auto room = static_cast<unsigned>(
                    max_access_size - (addr % max_access_size));
                const unsigned chunk = std::min(remaining, room);
                const unsigned shift =
                    static_cast<unsigned>(8 * (addr - event.addr));
                std::uint64_t piece_value = event.value >> shift;
                if (chunk < 8)
                    piece_value &= (1ULL << (8 * chunk)) - 1;

                const bool persistent = isPersistentAddr(addr);
                const bool in_scope = spec.all_scope || persistent;
                if (in_scope || spec.detect_races) {
                    MicroOp op;
                    op.addr = addr;
                    op.value = piece_value;
                    op.seq = event.seq;
                    op.thread = event.thread;
                    op.kind = MicroOp::Piece;
                    op.size = static_cast<std::uint8_t>(chunk);
                    op.is_write = event.isWrite() ? 1 : 0;

                    bool inserted = false;
                    op.tslot = track_local.findOrInsert(
                        addr >> spec.track_shift, inserted);
                    if (inserted)
                        out.track_keys.push_back(addr >> spec.track_shift);
                    // Only persist pieces probe the atomic bank, and
                    // in unified mode it shares the tracking index.
                    if (!spec.unified && op.is_write && persistent) {
                        op.aslot = atomic_local.findOrInsert(
                            addr >> spec.atomic_shift, inserted);
                        if (inserted)
                            out.atomic_keys.push_back(
                                addr >> spec.atomic_shift);
                    }
                    out.ops.push_back(op);
                }
                addr += chunk;
                remaining -= chunk;
            }
            break;
          }
          case EventKind::PersistBarrier:
          case EventKind::PersistSync: {
            MicroOp op;
            op.kind = MicroOp::Barrier;
            op.thread = event.thread;
            // Px86 replays barriers as flushes, which log records
            // carrying the trace position.
            op.seq = event.seq;
            out.ops.push_back(op);
            break;
          }
          case EventKind::CacheFlush:
          case EventKind::CacheFlushOpt:
          case EventKind::CacheWriteBack: {
            // Always compiled (the SC models count flushes too); the
            // slot is interned only when Px86 will act on it.
            MicroOp op;
            op.kind = MicroOp::Flush;
            op.thread = event.thread;
            op.addr = event.addr;
            op.seq = event.seq;
            op.is_write = event.kind == EventKind::CacheFlush ? 1 : 0;
            if (spec.px86) {
                bool inserted = false;
                if (spec.unified) {
                    op.tslot = track_local.findOrInsert(
                        event.addr >> spec.track_shift, inserted);
                    if (inserted)
                        out.track_keys.push_back(
                            event.addr >> spec.track_shift);
                } else {
                    op.aslot = atomic_local.findOrInsert(
                        event.addr >> spec.atomic_shift, inserted);
                    if (inserted)
                        out.atomic_keys.push_back(
                            event.addr >> spec.atomic_shift);
                }
            }
            out.ops.push_back(op);
            break;
          }
          case EventKind::StoreFence:
          case EventKind::FullFence: {
            MicroOp op;
            op.kind = MicroOp::FenceOp;
            op.thread = event.thread;
            // The engine folds both the same way; plugins are told
            // which one fired (is_write = full fence).
            op.is_write = event.kind == EventKind::FullFence ? 1 : 0;
            out.ops.push_back(op);
            break;
          }
          case EventKind::NewStrand: {
            MicroOp op;
            op.kind = MicroOp::Strand;
            op.thread = event.thread;
            out.ops.push_back(op);
            break;
          }
          case EventKind::Marker: {
            MicroOp op;
            op.thread = event.thread;
            switch (event.markerCode()) {
              case MarkerCode::OpBegin:
                op.kind = MicroOp::OpBegin;
                op.value = event.value;
                out.ops.push_back(op);
                break;
              case MarkerCode::OpEnd:
                op.kind = MicroOp::OpEnd;
                out.ops.push_back(op);
                break;
              case MarkerCode::RoleData:
                op.kind = MicroOp::RoleData;
                out.ops.push_back(op);
                break;
              case MarkerCode::RoleHead:
                op.kind = MicroOp::RoleHead;
                out.ops.push_back(op);
                break;
              default:
                break; // Counted, like process()'s default arm.
            }
            break;
          }
          default:
            // PMalloc/PFree/ThreadStart/ThreadEnd/Fence: the serial
            // engine only counts them.
            break;
        }
    }
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

/**
 * Friend of PersistTimingEngine: executes compiled segment programs
 * on one engine in trace order through the engine's own handlers.
 */
class SegmentReplayer
{
  public:
    static TimingResult
    run(const TraceEvent *events, std::size_t count,
        const TimingConfig &config, const SegmentReplayOptions &options,
        PersistLog *log_out, SegmentReplayStats *stats)
    {
        PersistTimingEngine engine(config);

        CompileSpec spec;
        spec.track_shift = engine.track_shift_;
        spec.atomic_shift = engine.atomic_shift_;
        spec.unified = engine.unified_;
        spec.all_scope = engine.all_scope_;
        spec.detect_races = engine.detect_races_;
        spec.px86 = engine.px86_;

        const std::uint32_t jobs = options.jobs > 0
            ? options.jobs : TaskPool::defaultWorkers();

        // Segment size: a few segments per worker (load balance for
        // skewed event mixes) with a floor so tiny traces are not
        // shredded into per-op overheads.
        std::uint64_t seg = options.segment_events;
        if (seg == 0) {
            constexpr std::uint64_t min_segment = 16384;
            seg = std::max<std::uint64_t>(min_segment,
                                          count / (4ULL * jobs + 1));
        }
        const std::size_t segments =
            count == 0 ? 0 : (count + seg - 1) / seg;

        // One pool serves both the segment compile and the deferred
        // log materialization; borrow the caller's when provided.
        TaskPool *pool = options.pool;
        std::unique_ptr<TaskPool> owned;
        if (pool == nullptr && jobs > 1 &&
            (segments > 1 || engine.config_.record_log)) {
            owned = std::make_unique<TaskPool>(jobs);
            pool = owned.get();
        }

        // Defer persist-record materialization (field copies plus
        // dep-set vector builds — most of record_log's cost) out of
        // the serial stitch; it fans out over the pool afterwards.
        const bool parallel_log =
            engine.config_.record_log && jobs > 1 && pool != nullptr;
        engine.defer_log_ = parallel_log;

        std::vector<SegmentProgram> programs(segments);
        const auto compile_one = [&](std::size_t i) {
            const std::size_t begin = i * seg;
            const std::size_t n =
                std::min<std::size_t>(seg, count - begin);
            compileSegment(events + begin, n, spec, programs[i]);
        };

        const auto prep_start = std::chrono::steady_clock::now();
        std::uint32_t used_jobs = 1;
        if (jobs <= 1 || segments <= 1 || pool == nullptr) {
            for (std::size_t i = 0; i < segments; ++i)
                compile_one(i);
        } else {
            used_jobs = pool->workerCount();
            pool->parallelFor(segments, compile_one);
        }
        const double prep_seconds = secondsSince(prep_start);

        // Sequential stitch: translate local slots to global ones and
        // drive the engine's handlers in global order.
        const auto stitch_start = std::chrono::steady_clock::now();
        std::uint64_t micro_ops = 0;
        std::vector<std::uint32_t> tmap;
        std::vector<std::uint32_t> amap;
        for (SegmentProgram &program : programs) {
            tmap.clear();
            tmap.reserve(program.track_keys.size());
            for (const std::uint64_t key : program.track_keys)
                tmap.push_back(engine.trackSlot(key));
            amap.clear();
            amap.reserve(program.atomic_keys.size());
            for (const std::uint64_t key : program.atomic_keys)
                amap.push_back(engine.atomicSlot(key));

            micro_ops += program.ops.size();
            for (const MicroOp &op : program.ops) {
                PersistTimingEngine::ThreadState &thread =
                    engine.threadState(op.thread);
                switch (op.kind) {
                  case MicroOp::Piece:
                    engine.handlePieceAt(
                        tmap[op.tslot],
                        op.aslot == no_local
                            ? PersistTimingEngine::no_slot_hint
                            : amap[op.aslot],
                        op.seq, op.thread, thread, op.addr, op.size,
                        op.value, op.is_write != 0);
                    break;
                  case MicroOp::Barrier:
                    engine.handleBarrierEvent(op.seq, op.thread,
                                              thread);
                    break;
                  case MicroOp::Flush:
                    engine.handleFlushEvent(
                        op.is_write != 0, op.seq, op.thread, thread,
                        op.addr,
                        op.tslot != no_local ? tmap[op.tslot]
                        : op.aslot != no_local
                            ? amap[op.aslot]
                            : PersistTimingEngine::no_slot_hint);
                    break;
                  case MicroOp::FenceOp:
                    engine.handleFenceEvent(op.is_write != 0,
                                            op.thread, thread);
                    break;
                  case MicroOp::Strand:
                    engine.handleStrandEvent(op.thread, thread);
                    break;
                  case MicroOp::OpBegin:
                    thread.op = op.value;
                    thread.role = PersistRole::None;
                    break;
                  case MicroOp::OpEnd:
                    ++engine.result_.ops;
                    thread.op = no_operation;
                    thread.role = PersistRole::None;
                    break;
                  case MicroOp::RoleData:
                    thread.role = PersistRole::Data;
                    break;
                  case MicroOp::RoleHead:
                    thread.role = PersistRole::Head;
                    break;
                  default:
                    break;
                }
            }
            engine.result_.events += program.events;
            // Programs are consumed in order; release each one's ops
            // as soon as it is stitched to bound peak memory.
            program = SegmentProgram{};
        }
        engine.onFinish();
        const double stitch_seconds = secondsSince(stitch_start);

        if (parallel_log) {
            // onFinish flushed the staged tail, so deferred_ now holds
            // every record in final log order; build the PersistRecords
            // in parallel over disjoint chunks. materializeRecord only
            // reads the post-replay dep-set pool, so this is race-free.
            const auto &deferred = engine.deferred_;
            PersistLog &log = engine.log_;
            log.resize(deferred.size());
            const std::size_t per =
                deferred.size() / (4ULL * jobs) + 1;
            const std::size_t chunks =
                (deferred.size() + per - 1) / per;
            pool->parallelFor(chunks, [&](std::size_t c) {
                const std::size_t begin = c * per;
                const std::size_t end =
                    std::min(begin + per, deferred.size());
                for (std::size_t i = begin; i < end; ++i)
                    log[i] = engine.materializeRecord(deferred[i]);
            });
            engine.deferred_.clear();
            engine.deferred_.shrink_to_fit();
            engine.defer_log_ = false;
        }

        if (stats != nullptr) {
            stats->segments = static_cast<std::uint32_t>(segments);
            stats->jobs = used_jobs;
            stats->micro_ops = micro_ops;
            stats->prep_seconds = prep_seconds;
            stats->stitch_seconds = stitch_seconds;
        }
        if (log_out != nullptr)
            *log_out = engine.takeLog();
        return engine.result();
    }
};

TimingResult
segmentReplay(const TraceEvent *events, std::size_t count,
              const TimingConfig &config,
              const SegmentReplayOptions &options, PersistLog *log_out,
              SegmentReplayStats *stats)
{
    PERSIM_REQUIRE(events != nullptr || count == 0,
                   "segmentReplay needs a valid event range");
    return SegmentReplayer::run(events, count, config, options, log_out,
                                stats);
}

TimingResult
segmentReplay(const InMemoryTrace &trace, const TimingConfig &config,
              const SegmentReplayOptions &options, PersistLog *log_out,
              SegmentReplayStats *stats)
{
    return segmentReplay(trace.events().data(), trace.events().size(),
                         config, options, log_out, stats);
}

} // namespace persim
