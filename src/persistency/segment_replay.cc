#include "persistency/segment_replay.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "common/error.hh"
#include "persistency/segment_compile.hh"

namespace persim {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

/**
 * Friend of PersistTimingEngine: executes compiled segment programs
 * on one engine in trace order through the engine's own handlers.
 */
class SegmentReplayer
{
  public:
    static TimingResult
    run(const TraceEvent *events, std::size_t count,
        const TimingConfig &config, const SegmentReplayOptions &options,
        PersistLog *log_out, SegmentReplayStats *stats)
    {
        PersistTimingEngine engine(config);

        CompileSpec spec;
        spec.track_shift = engine.track_shift_;
        spec.atomic_shift = engine.atomic_shift_;
        spec.unified = engine.unified_;
        spec.all_scope = engine.all_scope_;
        spec.detect_races = engine.detect_races_;
        spec.px86 = engine.px86_;

        const std::uint32_t jobs = options.jobs > 0
            ? options.jobs : TaskPool::defaultWorkers();

        // Segment size: a few segments per worker (load balance for
        // skewed event mixes) with a floor so tiny traces are not
        // shredded into per-op overheads.
        std::uint64_t seg = options.segment_events;
        if (seg == 0) {
            constexpr std::uint64_t min_segment = 16384;
            seg = std::max<std::uint64_t>(min_segment,
                                          count / (4ULL * jobs + 1));
        }
        const std::size_t segments =
            count == 0 ? 0 : (count + seg - 1) / seg;

        // One pool serves both the segment compile and the deferred
        // log materialization; borrow the caller's when provided.
        TaskPool *pool = options.pool;
        std::unique_ptr<TaskPool> owned;
        if (pool == nullptr && jobs > 1 &&
            (segments > 1 || engine.config_.record_log)) {
            owned = std::make_unique<TaskPool>(jobs);
            pool = owned.get();
        }

        // Defer persist-record materialization (field copies plus
        // dep-set vector builds — most of record_log's cost) out of
        // the serial stitch; it fans out over the pool afterwards.
        const bool parallel_log =
            engine.config_.record_log && jobs > 1 && pool != nullptr;
        engine.defer_log_ = parallel_log;

        std::vector<SegmentProgram> programs(segments);
        const auto compile_one = [&](std::size_t i) {
            const std::size_t begin = i * seg;
            const std::size_t n =
                std::min<std::size_t>(seg, count - begin);
            compileSegment(events + begin, n, spec, programs[i]);
        };

        const auto prep_start = std::chrono::steady_clock::now();
        std::uint32_t used_jobs = 1;
        if (jobs <= 1 || segments <= 1 || pool == nullptr) {
            for (std::size_t i = 0; i < segments; ++i)
                compile_one(i);
        } else {
            used_jobs = pool->workerCount();
            pool->parallelFor(segments, compile_one);
        }
        const double prep_seconds = secondsSince(prep_start);

        // Sequential stitch: translate local slots to global ones and
        // drive the engine's handlers in global order.
        const auto stitch_start = std::chrono::steady_clock::now();
        std::uint64_t micro_ops = 0;
        std::vector<std::uint32_t> tmap;
        std::vector<std::uint32_t> amap;
        for (SegmentProgram &program : programs) {
            tmap.clear();
            tmap.reserve(program.track_keys.size());
            for (const std::uint64_t key : program.track_keys)
                tmap.push_back(engine.trackSlot(key));
            amap.clear();
            amap.reserve(program.atomic_keys.size());
            for (const std::uint64_t key : program.atomic_keys)
                amap.push_back(engine.atomicSlot(key));

            micro_ops += program.ops.size();
            for (const MicroOp &op : program.ops) {
                PersistTimingEngine::ThreadState &thread =
                    engine.threadState(op.thread);
                switch (op.kind) {
                  case MicroOp::Piece:
                    engine.handlePieceAt(
                        tmap[op.tslot],
                        op.aslot == no_local
                            ? PersistTimingEngine::no_slot_hint
                            : amap[op.aslot],
                        op.seq, op.thread, thread, op.addr, op.size,
                        op.value, op.is_write != 0);
                    break;
                  case MicroOp::Barrier:
                    engine.handleBarrierEvent(op.seq, op.thread,
                                              thread);
                    break;
                  case MicroOp::Flush:
                    engine.handleFlushEvent(
                        op.is_write != 0, op.seq, op.thread, thread,
                        op.addr,
                        op.tslot != no_local ? tmap[op.tslot]
                        : op.aslot != no_local
                            ? amap[op.aslot]
                            : PersistTimingEngine::no_slot_hint);
                    break;
                  case MicroOp::FenceOp:
                    engine.handleFenceEvent(op.is_write != 0,
                                            op.thread, thread);
                    break;
                  case MicroOp::Strand:
                    engine.handleStrandEvent(op.thread, thread);
                    break;
                  case MicroOp::OpBegin:
                    thread.op = op.value;
                    thread.role = PersistRole::None;
                    break;
                  case MicroOp::OpEnd:
                    ++engine.result_.ops;
                    thread.op = no_operation;
                    thread.role = PersistRole::None;
                    break;
                  case MicroOp::RoleData:
                    thread.role = PersistRole::Data;
                    break;
                  case MicroOp::RoleHead:
                    thread.role = PersistRole::Head;
                    break;
                  default:
                    break;
                }
            }
            engine.result_.events += program.events;
            // Programs are consumed in order; release each one's ops
            // as soon as it is stitched to bound peak memory.
            program = SegmentProgram{};
        }
        engine.onFinish();
        const double stitch_seconds = secondsSince(stitch_start);

        if (parallel_log) {
            // onFinish flushed the staged tail, so deferred_ now holds
            // every record in final log order; build the PersistRecords
            // in parallel over disjoint chunks. materializeRecord only
            // reads the post-replay dep-set pool, so this is race-free.
            const auto &deferred = engine.deferred_;
            PersistLog &log = engine.log_;
            log.resize(deferred.size());
            const std::size_t per =
                deferred.size() / (4ULL * jobs) + 1;
            const std::size_t chunks =
                (deferred.size() + per - 1) / per;
            pool->parallelFor(chunks, [&](std::size_t c) {
                const std::size_t begin = c * per;
                const std::size_t end =
                    std::min(begin + per, deferred.size());
                for (std::size_t i = begin; i < end; ++i)
                    log[i] = engine.materializeRecord(deferred[i]);
            });
            engine.deferred_.clear();
            engine.deferred_.shrink_to_fit();
            engine.defer_log_ = false;
        }

        if (stats != nullptr) {
            stats->segments = static_cast<std::uint32_t>(segments);
            stats->jobs = used_jobs;
            stats->micro_ops = micro_ops;
            stats->prep_seconds = prep_seconds;
            stats->stitch_seconds = stitch_seconds;
        }
        if (log_out != nullptr)
            *log_out = engine.takeLog();
        return engine.result();
    }
};

TimingResult
segmentReplay(const TraceEvent *events, std::size_t count,
              const TimingConfig &config,
              const SegmentReplayOptions &options, PersistLog *log_out,
              SegmentReplayStats *stats)
{
    PERSIM_REQUIRE(events != nullptr || count == 0,
                   "segmentReplay needs a valid event range");
    return SegmentReplayer::run(events, count, config, options, log_out,
                                stats);
}

TimingResult
segmentReplay(const InMemoryTrace &trace, const TimingConfig &config,
              const SegmentReplayOptions &options, PersistLog *log_out,
              SegmentReplayStats *stats)
{
    return segmentReplay(trace.events().data(), trace.events().size(),
                         config, options, log_out, stats);
}

} // namespace persim
