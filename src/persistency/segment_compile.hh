/**
 * @file
 * The segment compiler: decode + cache-line split + scope filter +
 * slot interning as a pure function of (events, CompileSpec).
 *
 * Shared by two consumers with very different lifetimes:
 *
 *  - segment_replay.cc compiles segments transiently on the TaskPool
 *    and stitches them through one engine immediately (DESIGN.md
 *    Section 12);
 *  - compiled_replay.cc compiles a whole trace once, renumbers the
 *    segment-local slots to global ones, and persists the result as
 *    an on-disk compiled-trace artifact (memtrace/compiled_trace.hh,
 *    DESIGN.md Section 17) that later replays skip this pass for.
 *
 * Keeping one decoder keeps the two paths bit-identical by
 * construction: there is no second implementation of the split/
 * filter/intern rules to drift.
 */

#ifndef PERSIM_PERSISTENCY_SEGMENT_COMPILE_HH
#define PERSIM_PERSISTENCY_SEGMENT_COMPILE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "memtrace/event.hh"

namespace persim {

static_assert(kMaxEventKind ==
                  static_cast<std::uint8_t>(EventKind::FullFence),
              "EventKind grew: teach compileSegment about the new "
              "kinds, then update this assertion");

/** Local-slot sentinel: this op has no slot of that bank. */
constexpr std::uint32_t no_local = ~0u;

/**
 * One compiled micro-op. Pieces carry their pre-split address range
 * and pre-masked value plus segment-local slot ids; control ops carry
 * only what the serial dispatch switch reads. 40 bytes, POD.
 */
struct MicroOp
{
    enum Kind : std::uint8_t {
        Piece,    //!< One <=8-byte access piece (tslot resolved).
        Barrier,  //!< PersistBarrier / PersistSync.
        Strand,   //!< NewStrand.
        Flush,    //!< clflush/clflushopt/clwb (is_write = strong).
        FenceOp,  //!< sfence / mfence.
        OpBegin,  //!< Marker OpBegin (operation id in value).
        OpEnd,    //!< Marker OpEnd.
        RoleData, //!< Marker RoleData.
        RoleHead, //!< Marker RoleHead.
    };

    Addr addr = 0;
    std::uint64_t value = 0;
    SeqNum seq = 0;
    std::uint32_t tslot = no_local; //!< Segment-local tracking slot.
    std::uint32_t aslot = no_local; //!< Segment-local atomic slot.
    ThreadId thread = 0;
    std::uint8_t kind = Piece;
    std::uint8_t size = 0;
    std::uint8_t is_write = 0;
};

/** The largest MicroOp::Kind value (for artifact validation). */
constexpr std::uint8_t kMaxMicroOpKind = MicroOp::RoleHead;

/** Compiled form of one trace segment. */
struct SegmentProgram
{
    std::vector<MicroOp> ops;
    /** Interned block keys, indexed by local slot id. */
    std::vector<std::uint64_t> track_keys;
    std::vector<std::uint64_t> atomic_keys; //!< Non-unified only.
    /** Raw events consumed (including uncompiled kinds). */
    std::uint64_t events = 0;
};

/** Engine-config facts the compiler needs; entry-state independent. */
struct CompileSpec
{
    unsigned track_shift = 3;
    unsigned atomic_shift = 3;
    bool unified = false;
    bool all_scope = true;
    bool detect_races = false;
    bool px86 = false; //!< Flush/fence ops act (and intern slots).
};

/**
 * Compile @p count events into a micro-op program. Mirrors
 * PersistTimingEngine::process()/handlePiece() up to (but not
 * including) the first read of engine state: the piece split, the
 * scope filter, and the block-key computation are pure functions of
 * the event and the configuration.
 */
inline void
compileSegment(const TraceEvent *events, std::size_t count,
               const CompileSpec &spec, SegmentProgram &out)
{
    FlatIndexMap track_local;
    FlatIndexMap atomic_local;
    // Start at a quarter of the worst case: scope-filtered configs
    // emit far fewer ops than events, and growth on the POD vector is
    // a cheap memcpy, while a full-size reserve costs real page
    // faults per segment.
    out.ops.reserve(count / 4 + 16);
    out.events = count;

    for (std::size_t i = 0; i < count; ++i) {
        const TraceEvent &event = events[i];
        switch (event.kind) {
          case EventKind::Load:
          case EventKind::Store:
          case EventKind::Rmw: {
            // Same 8-byte-aligned split as process(), so each piece
            // lies within one tracking block and one atomic block.
            Addr addr = event.addr;
            unsigned remaining = event.size;
            while (remaining > 0) {
                const auto room = static_cast<unsigned>(
                    max_access_size - (addr % max_access_size));
                const unsigned chunk = std::min(remaining, room);
                const unsigned shift =
                    static_cast<unsigned>(8 * (addr - event.addr));
                std::uint64_t piece_value = event.value >> shift;
                if (chunk < 8)
                    piece_value &= (1ULL << (8 * chunk)) - 1;

                const bool persistent = isPersistentAddr(addr);
                const bool in_scope = spec.all_scope || persistent;
                if (in_scope || spec.detect_races) {
                    MicroOp op;
                    op.addr = addr;
                    op.value = piece_value;
                    op.seq = event.seq;
                    op.thread = event.thread;
                    op.kind = MicroOp::Piece;
                    op.size = static_cast<std::uint8_t>(chunk);
                    op.is_write = event.isWrite() ? 1 : 0;

                    bool inserted = false;
                    op.tslot = track_local.findOrInsert(
                        addr >> spec.track_shift, inserted);
                    if (inserted)
                        out.track_keys.push_back(addr >> spec.track_shift);
                    // Only persist pieces probe the atomic bank, and
                    // in unified mode it shares the tracking index.
                    if (!spec.unified && op.is_write && persistent) {
                        op.aslot = atomic_local.findOrInsert(
                            addr >> spec.atomic_shift, inserted);
                        if (inserted)
                            out.atomic_keys.push_back(
                                addr >> spec.atomic_shift);
                    }
                    out.ops.push_back(op);
                }
                addr += chunk;
                remaining -= chunk;
            }
            break;
          }
          case EventKind::PersistBarrier:
          case EventKind::PersistSync: {
            MicroOp op;
            op.kind = MicroOp::Barrier;
            op.thread = event.thread;
            // Px86 replays barriers as flushes, which log records
            // carrying the trace position.
            op.seq = event.seq;
            out.ops.push_back(op);
            break;
          }
          case EventKind::CacheFlush:
          case EventKind::CacheFlushOpt:
          case EventKind::CacheWriteBack: {
            // Always compiled (the SC models count flushes too); the
            // slot is interned only when Px86 will act on it.
            MicroOp op;
            op.kind = MicroOp::Flush;
            op.thread = event.thread;
            op.addr = event.addr;
            op.seq = event.seq;
            op.is_write = event.kind == EventKind::CacheFlush ? 1 : 0;
            if (spec.px86) {
                bool inserted = false;
                if (spec.unified) {
                    op.tslot = track_local.findOrInsert(
                        event.addr >> spec.track_shift, inserted);
                    if (inserted)
                        out.track_keys.push_back(
                            event.addr >> spec.track_shift);
                } else {
                    op.aslot = atomic_local.findOrInsert(
                        event.addr >> spec.atomic_shift, inserted);
                    if (inserted)
                        out.atomic_keys.push_back(
                            event.addr >> spec.atomic_shift);
                }
            }
            out.ops.push_back(op);
            break;
          }
          case EventKind::StoreFence:
          case EventKind::FullFence: {
            MicroOp op;
            op.kind = MicroOp::FenceOp;
            op.thread = event.thread;
            // The engine folds both the same way; plugins are told
            // which one fired (is_write = full fence).
            op.is_write = event.kind == EventKind::FullFence ? 1 : 0;
            out.ops.push_back(op);
            break;
          }
          case EventKind::NewStrand: {
            MicroOp op;
            op.kind = MicroOp::Strand;
            op.thread = event.thread;
            out.ops.push_back(op);
            break;
          }
          case EventKind::Marker: {
            MicroOp op;
            op.thread = event.thread;
            switch (event.markerCode()) {
              case MarkerCode::OpBegin:
                op.kind = MicroOp::OpBegin;
                op.value = event.value;
                out.ops.push_back(op);
                break;
              case MarkerCode::OpEnd:
                op.kind = MicroOp::OpEnd;
                out.ops.push_back(op);
                break;
              case MarkerCode::RoleData:
                op.kind = MicroOp::RoleData;
                out.ops.push_back(op);
                break;
              case MarkerCode::RoleHead:
                op.kind = MicroOp::RoleHead;
                out.ops.push_back(op);
                break;
              default:
                break; // Counted, like process()'s default arm.
            }
            break;
          }
          default:
            // PMalloc/PFree/ThreadStart/ThreadEnd/Fence: the serial
            // engine only counts them.
            break;
        }
    }
}

} // namespace persim

#endif // PERSIM_PERSISTENCY_SEGMENT_COMPILE_HH
